"""Shard transport A/B: shared-memory ring vs pickled-pipe payload carriage.

The executor's ``probe_transport`` dispatches a packet list through the full
data plane — flow-key interning, chunking, ring writes, worker-side reads —
but the workers *drain* instead of scanning, so the measurement isolates the
transport from the matcher.  Two services are probed with the same packets:

* **shm** — the default geometry: every payload rides the shared-memory
  ring, zero pickling either way;
* **pipe** — ``ring_slot_bytes=1`` forces every payload down the spill
  path, which pickles it into the control-pipe message exactly like the
  pre-ring executor did.

The headline is ``shm_vs_pipe_speedup`` in payload-bytes/sec; the recorded
target is 3x.  ``cpu_count`` sits next to it because a 1-core container
serialises the dispatcher against the draining workers and squeezes the
gap — ``cpu_limited`` is set there so a regression gate can tell a slow
transport from a small machine.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_transport.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_transport.py --smoke    # CI smoke

or through pytest (smoke-sized, asserts the artifact structure and gate):

    PYTHONPATH=src python -m pytest benchmarks/bench_transport.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import Dict, Optional, Sequence

from repro.backend import get_backend
from repro.rulesets import generate_snort_like_ruleset
from repro.streaming import ParallelScanService
from repro.traffic import TrafficGenerator

DEFAULT_OUTPUT = (
    pathlib.Path(__file__).parent / "results" / "BENCH_transport_smoke.json"
)

BENCH_SEED = 2010
NUM_SHARDS = 4
WORKERS = 2
SPEEDUP_TARGET = 3.0

FULL_FLOWS = 256
FULL_SEGMENTS_PER_FLOW = 16
FULL_SEGMENT_BYTES = 1024

SMOKE_FLOWS = 32
SMOKE_SEGMENTS_PER_FLOW = 8
SMOKE_SEGMENT_BYTES = 1024


def build_packets(flows: int, segments: int, segment_bytes: int):
    """Interleaved flows over a tiny ruleset — the transport never looks at
    the patterns, the ruleset only seeds realistic payload bytes."""
    ruleset = generate_snort_like_ruleset(20, seed=BENCH_SEED)
    generator = TrafficGenerator(ruleset, seed=BENCH_SEED + 1)
    return ruleset, TrafficGenerator.interleave(
        generator.flows(flows, num_packets=segments, segment_bytes=segment_bytes)
    )


def probe(service: ParallelScanService, packets, repeats: int) -> Dict:
    """Best-of-``repeats`` transport-only dispatch of ``packets``."""
    payload_bytes = sum(len(packet.payload) for packet in packets)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        drained = service.probe_transport(packets)
        best = min(best, time.perf_counter() - start)
        assert drained == payload_bytes, "worker drained fewer bytes than sent"
    return {
        "seconds": best,
        "payload_mb_per_s": payload_bytes / best / 1e6,
        "transport_stats": service.transport_stats.as_dict(),
    }


def run_sweep(smoke: bool = False, repeats: Optional[int] = None) -> Dict:
    flows = SMOKE_FLOWS if smoke else FULL_FLOWS
    segments = SMOKE_SEGMENTS_PER_FLOW if smoke else FULL_SEGMENTS_PER_FLOW
    segment_bytes = SMOKE_SEGMENT_BYTES if smoke else FULL_SEGMENT_BYTES
    repeats = repeats if repeats is not None else 3

    ruleset, packets = build_packets(flows, segments, segment_bytes)
    program = get_backend("dense").compile(ruleset.patterns)
    payload_bytes = sum(len(packet.payload) for packet in packets)

    with ParallelScanService(program, num_shards=NUM_SHARDS, workers=WORKERS) as shm:
        shm_probe = probe(shm, packets, repeats)
    with ParallelScanService(
        program, num_shards=NUM_SHARDS, workers=WORKERS, ring_slot_bytes=1
    ) as pipe:
        pipe_probe = probe(pipe, packets, repeats)

    assert shm_probe["transport_stats"]["spilled_segments"] == 0
    assert pipe_probe["transport_stats"]["ring_segments"] == 0

    speedup = shm_probe["payload_mb_per_s"] / pipe_probe["payload_mb_per_s"]
    cpu_count = os.cpu_count() or 1
    return {
        "generated_by": "benchmarks/bench_transport.py",
        "mode": "smoke" if smoke else "full",
        "seed": BENCH_SEED,
        "num_shards": NUM_SHARDS,
        "workers": WORKERS,
        "repeats": repeats,
        "cpu_count": cpu_count,
        "packets": len(packets),
        "payload_bytes": payload_bytes,
        "segment_bytes": segment_bytes,
        "shm": shm_probe,
        "pipe": pipe_probe,
        "shm_vs_pipe_speedup": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "meets_speedup_target": speedup >= SPEEDUP_TARGET,
        # on a 1-core runner the dispatcher and the draining workers share
        # one core, so the pickle cost partially hides behind scheduling —
        # the gate accepts either the target or an honest cpu_limited flag
        "cpu_limited": cpu_count <= WORKERS,
    }


def format_report(report: Dict) -> str:
    lines = [
        f"shard transport A/B ({report['mode']}): {report['packets']} packets, "
        f"{report['payload_bytes']} payload bytes, {report['workers']} workers, "
        f"cpu_count={report['cpu_count']}"
    ]
    for name in ("shm", "pipe"):
        entry = report[name]
        stats = entry["transport_stats"]
        lines.append(
            f"{name:>6s}: {entry['payload_mb_per_s']:>10.2f} MB/s "
            f"(ring={stats['ring_segments']}, spilled={stats['spilled_segments']}, "
            f"stalls={stats['backpressure_stalls']}, chunks={stats['chunks']})"
        )
    lines.append(
        f"shm vs pipe: {report['shm_vs_pipe_speedup']:.2f}x "
        f"(target {report['speedup_target']}x"
        + (", CPU-LIMITED: workers share cores)" if report["cpu_limited"] else ")")
    )
    return "\n".join(lines)


def write_report(report: Dict, output: pathlib.Path) -> pathlib.Path:
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return output


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI smoke runs")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    report = run_sweep(smoke=args.smoke, repeats=args.repeats)
    path = write_report(report, args.output)
    print(format_report(report))
    print(f"wrote {path}")
    if not (report["meets_speedup_target"] or report["cpu_limited"]):
        print("REGRESSION: shm transport slower than the target with spare cores",
              file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# pytest entry point (smoke-sized so the full benchmark run stays fast)
# ----------------------------------------------------------------------
def test_transport_ab_smoke(results_dir):
    report = run_sweep(smoke=True)
    path = write_report(report, results_dir / "BENCH_transport_smoke.json")
    assert path.exists()
    assert report["shm"]["payload_mb_per_s"] > 0
    assert report["pipe"]["payload_mb_per_s"] > 0
    # the regression gate: a slow ring is a bug unless the runner is starved
    assert report["meets_speedup_target"] or report["cpu_limited"], (
        f"shm ring only {report['shm_vs_pipe_speedup']:.2f}x over the pickled "
        f"pipe with {report['cpu_count']} cpus"
    )


if __name__ == "__main__":
    sys.exit(main())
