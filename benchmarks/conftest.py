"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper; the expensive
artefacts (the six-ruleset family, compiled accelerator programs) are built
once per session and cached.  Every benchmark also writes its regenerated
table/figure to ``benchmarks/results/`` so the outputs survive the run.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Tuple

import pytest

from repro.automata import AhoCorasickDFA
from repro.core import compile_ruleset
from repro.fpga import CYCLONE_III, STRATIX_III, FPGADevice
from repro.rulesets import RuleSet, generate_paper_rulesets

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Seed used for every benchmark workload (deterministic regeneration).
BENCH_SEED = 2010


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    """Write a named artefact into benchmarks/results/ and echo it."""

    def _write(name: str, text: str) -> pathlib.Path:
        path = results_dir / name
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n[{name}]\n{text}\n")
        return path

    return _write


@pytest.fixture(scope="session")
def paper_family() -> Dict[int, RuleSet]:
    """The six ruleset sizes evaluated in the paper (Figure 6 / Table II)."""
    return generate_paper_rulesets(seed=BENCH_SEED)


_PROGRAM_CACHE: Dict[Tuple[str, int], object] = {}
_DFA_CACHE: Dict[int, AhoCorasickDFA] = {}


@pytest.fixture(scope="session")
def compiled_program(paper_family):
    """Cache of compile_ruleset(family[size], device) results."""

    def _get(size: int, device: FPGADevice):
        key = (device.name, size)
        if key not in _PROGRAM_CACHE:
            _PROGRAM_CACHE[key] = compile_ruleset(paper_family[size], device)
        return _PROGRAM_CACHE[key]

    return _get


@pytest.fixture(scope="session")
def original_dfa(paper_family):
    """Cache of the unpartitioned move-function DFA per ruleset size."""

    def _get(size: int) -> AhoCorasickDFA:
        if size not in _DFA_CACHE:
            _DFA_CACHE[size] = AhoCorasickDFA.from_patterns(paper_family[size].patterns)
        return _DFA_CACHE[size]

    return _get


@pytest.fixture(scope="session")
def stratix() -> FPGADevice:
    return STRATIX_III


@pytest.fixture(scope="session")
def cyclone() -> FPGADevice:
    return CYCLONE_III
