"""E5 — Figure 7: power vs throughput on the Cyclone III implementation.

The paper sweeps the accelerator clock and measures power for three ruleset
sizes; the model regenerates the same series from the calibrated static +
dynamic power model and the throughput law.
"""

import pytest

from repro.analysis import PAPER_PEAK_POWER_WATTS, ascii_chart, format_table, power_curves
from repro.fpga import CYCLONE_III, PowerModel

SIZES = (500, 1204, 2588)


def test_fig7_power_vs_throughput_cyclone(benchmark, write_result, paper_family, compiled_program):
    blocks = {
        f"{size} strings": compiled_program(size, CYCLONE_III).blocks_per_group for size in SIZES
    }
    curves = benchmark.pedantic(
        lambda: power_curves(CYCLONE_III, blocks, num_points=12), rounds=3, iterations=1
    )

    sections = []
    for curve in curves:
        sections.append(
            format_table(curve.points, title=f"Figure 7 — {curve.label} "
                                             f"({curve.blocks_per_group} block(s) per group)")
        )
        sections.append(ascii_chart(curve.points, "power_watts", "throughput_gbps", label=curve.label))
    write_result("fig7_power_cyclone3.txt", "\n\n".join(sections))

    model = PowerModel(CYCLONE_III)
    assert model.peak_power_watts() == pytest.approx(
        PAPER_PEAK_POWER_WATTS["Cyclone III"], rel=0.05
    )
    # the figure's shape: all curves share the same power axis (same clock
    # sweep), smaller rulesets reach higher throughput at the same power
    tops = {curve.label: curve.points[-1] for curve in curves}
    assert tops["500 strings"]["throughput_gbps"] >= tops["1204 strings"]["throughput_gbps"]
    assert tops["1204 strings"]["throughput_gbps"] >= tops["2588 strings"]["throughput_gbps"]
    powers = {point["power_watts"] for point in tops.values()}
    assert max(powers) - min(powers) < 0.01
    # power is monotonically increasing along every curve
    for curve in curves:
        watts = [point["power_watts"] for point in curve.points]
        assert watts == sorted(watts)
