"""Backend sweep: throughput / compile time / memory for every registered backend.

Sweeps all matcher backends over a set of payload sizes and writes the
machine-readable ``BENCH_backends.json`` so the performance trajectory of the
scan hot path is tracked run over run (CI uploads the smoke-mode artifact on
every push).  The headline number is the compiled dense-table fast path
against the interpreted DTP scan: ``dense_vs_dtp_speedup_largest`` must stay
comfortably above 3x.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_backends.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_backends.py --smoke    # CI smoke

or through pytest (smoke-sized, asserts the artifact structure):

    PYTHONPATH=src python -m pytest benchmarks/bench_backends.py -q
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.backend import backend_names, get_backend
from repro.rulesets import generate_snort_like_ruleset
from repro.traffic import TrafficGenerator, TrafficProfile

DEFAULT_OUTPUT = pathlib.Path(__file__).parent / "results" / "BENCH_backends.json"

BENCH_SEED = 2010
FULL_RULESET_SIZE = 500
FULL_PAYLOAD_SIZES = (4_096, 65_536, 524_288)
SMOKE_RULESET_SIZE = 40
SMOKE_PAYLOAD_SIZES = (2_048,)

#: 324-bit words — the paper's state-machine memory unit (Section IV.A).
WORD_BITS = 324


def build_payload(ruleset, size: int, seed: int = BENCH_SEED) -> bytes:
    """Deterministic synthetic traffic bytes for one payload size."""
    generator = TrafficGenerator(
        ruleset,
        TrafficProfile(mean_payload_bytes=1400, attack_probability=0.3),
        seed=seed,
    )
    data = bytearray()
    while len(data) < size:
        data += generator.packet().payload
    return bytes(data[:size])


def memory_estimate_bytes(program) -> Optional[int]:
    """Best-effort memory footprint of a compiled program."""
    for attribute in ("memory_bytes", "total_memory_bytes"):
        estimator = getattr(program, attribute, None)
        if estimator is not None:
            return int(estimator())
    return None


def bench_backend(
    name: str, ruleset, payloads: Dict[int, bytes], repeats: int
) -> Dict:
    backend = get_backend(name)
    compile_start = time.perf_counter()
    program = backend.compile(ruleset.patterns)
    compile_seconds = time.perf_counter() - compile_start

    memory = memory_estimate_bytes(program)
    sweeps: List[Dict] = []
    for size, payload in payloads.items():
        best = float("inf")
        matches = 0
        for _ in range(repeats):
            start = time.perf_counter()
            matches = len(program.match(payload))
            best = min(best, time.perf_counter() - start)
        sweeps.append(
            {
                "payload_bytes": size,
                "seconds": best,
                "mb_per_s": size / best / 1e6,
                "matches": matches,
            }
        )
    return {
        "compile_seconds": compile_seconds,
        "memory_bytes": memory,
        "memory_words_324": None if memory is None else -(-memory * 8 // WORD_BITS),
        "sweeps": sweeps,
    }


def run_sweep(
    smoke: bool = False,
    backends: Optional[Sequence[str]] = None,
    repeats: Optional[int] = None,
) -> Dict:
    ruleset_size = SMOKE_RULESET_SIZE if smoke else FULL_RULESET_SIZE
    payload_sizes = SMOKE_PAYLOAD_SIZES if smoke else FULL_PAYLOAD_SIZES
    repeats = repeats if repeats is not None else (3 if smoke else 2)
    names = list(backends) if backends else backend_names()

    ruleset = generate_snort_like_ruleset(ruleset_size, seed=BENCH_SEED)
    payloads = {size: build_payload(ruleset, size) for size in payload_sizes}

    results = {name: bench_backend(name, ruleset, payloads, repeats) for name in names}

    report = {
        "generated_by": "benchmarks/bench_backends.py",
        "mode": "smoke" if smoke else "full",
        "seed": BENCH_SEED,
        "ruleset_size": ruleset_size,
        "payload_sizes": list(payload_sizes),
        "repeats": repeats,
        "backends": results,
    }
    if "dense" in results and "dtp" in results:
        dense_largest = results["dense"]["sweeps"][-1]
        dtp_largest = results["dtp"]["sweeps"][-1]
        report["dense_vs_dtp_speedup_largest"] = (
            dtp_largest["seconds"] / dense_largest["seconds"]
        )
    return report


def format_report(report: Dict) -> str:
    lines = [
        f"backend sweep ({report['mode']}): {report['ruleset_size']} strings, "
        f"payloads {report['payload_sizes']}"
    ]
    header = f"{'backend':10s} {'compile_ms':>10s} {'mem_bytes':>10s} " + " ".join(
        f"{size // 1024}KiB MB/s".rjust(12) for size in report["payload_sizes"]
    )
    lines.append(header)
    for name, entry in report["backends"].items():
        memory = entry["memory_bytes"]
        lines.append(
            f"{name:10s} {entry['compile_seconds'] * 1e3:10.1f} "
            f"{'-' if memory is None else memory:>10} "
            + " ".join(f"{sweep['mb_per_s']:12.2f}" for sweep in entry["sweeps"])
        )
    speedup = report.get("dense_vs_dtp_speedup_largest")
    if speedup is not None:
        lines.append(f"dense vs dtp speedup on largest payload: {speedup:.2f}x")
    return "\n".join(lines)


def write_report(report: Dict, output: pathlib.Path) -> pathlib.Path:
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return output


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny ruleset/payloads for CI smoke runs")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--backends", nargs="*", default=None,
                        help="subset of backends (default: all registered)")
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    report = run_sweep(smoke=args.smoke, backends=args.backends, repeats=args.repeats)
    path = write_report(report, args.output)
    print(format_report(report))
    print(f"wrote {path}")
    return 0


# ----------------------------------------------------------------------
# pytest entry point (smoke-sized so the full benchmark run stays fast)
# ----------------------------------------------------------------------
def test_backend_sweep_smoke(results_dir):
    report = run_sweep(smoke=True)
    path = write_report(report, results_dir / "BENCH_backends_smoke.json")
    assert path.exists()
    assert set(report["backends"]) == set(backend_names())
    for entry in report["backends"].values():
        assert entry["sweeps"], "every backend must record at least one sweep"
        for sweep in entry["sweeps"]:
            assert sweep["mb_per_s"] > 0
    # every backend reports the identical match count on the same payload
    counts = {
        name: [sweep["matches"] for sweep in entry["sweeps"]]
        for name, entry in report["backends"].items()
    }
    assert len({tuple(v) for v in counts.values()}) == 1, counts
    # the compiled fast path must beat the interpreted DTP scan
    assert report["dense_vs_dtp_speedup_largest"] > 1.0


if __name__ == "__main__":
    sys.exit(main())
