"""E9 — throughput scaling: the Table II "Speed" column and Section V.C.

Sweeps the number of blocks a ruleset occupies on both devices and checks the
16 x fmax x (total blocks // blocks-per-group) law, including the exact
throughput ladder quoted in the paper.
"""

import pytest

from repro.analysis import format_table
from repro.fpga import (
    CYCLONE_III,
    STRATIX_III,
    accelerator_throughput_gbps,
    block_throughput_gbps,
)

PAPER_LADDER = {
    ("Stratix III", 1): 44.2,
    ("Stratix III", 2): 22.1,
    ("Stratix III", 3): 14.7,
    ("Stratix III", 6): 7.4,
    ("Cyclone III", 1): 14.9,
    ("Cyclone III", 2): 7.5,
    ("Cyclone III", 4): 3.7,
}


def test_throughput_scaling_ladder(benchmark, write_result):
    def sweep():
        rows = []
        for device in (CYCLONE_III, STRATIX_III):
            for blocks_per_group in range(1, device.num_matching_blocks + 1):
                gbps = accelerator_throughput_gbps(
                    device.memory_fmax_mhz, device.num_matching_blocks, blocks_per_group
                )
                rows.append(
                    {
                        "device": device.family,
                        "blocks_per_group": blocks_per_group,
                        "packet_groups": device.num_matching_blocks // blocks_per_group,
                        "block_gbps": round(block_throughput_gbps(device.memory_fmax_mhz), 2),
                        "total_gbps": round(gbps, 1),
                        "paper_gbps": PAPER_LADDER.get((device.family, blocks_per_group), "-"),
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=10, iterations=1)
    write_result("throughput_scaling.txt",
                 format_table(rows, title="Throughput vs blocks-per-group (16 x fmax law)"))

    by_key = {(row["device"], row["blocks_per_group"]): row["total_gbps"] for row in rows}
    for key, expected in PAPER_LADDER.items():
        assert by_key[key] == pytest.approx(expected, abs=0.1)

    # the OC-768 / OC-192 headlines of the abstract
    assert by_key[("Stratix III", 1)] > 40.0
    assert by_key[("Cyclone III", 1)] > 10.0
