"""Pcap replay sweep: capture decode throughput and replay overhead per backend.

An interleaved multi-packet flow workload is exported as a pcap via the
capture subsystem, then scanned two ways per backend: directly in memory
(the baseline every PR so far measured) and as a full replay — read the
container, decode every frame down to its TCP/UDP payload, scan.  The
machine-readable ``BENCH_pcap.json`` records:

* container decode + frame decode throughput in MB/s (payload bytes per
  second of ``load_packets``, per container format);
* per-backend in-memory vs replay scan throughput and the replay's relative
  cost (``replay_vs_memory``, the fraction of in-memory throughput the
  end-to-end replay path retains);
* whether the replayed event stream was byte-identical to the in-memory
  scan — the correctness contract the subsystem makes
  (``events_identical_everywhere``).

Run standalone:

    PYTHONPATH=src python benchmarks/bench_pcap_replay.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_pcap_replay.py --smoke    # CI smoke

or through pytest (smoke-sized, asserts the artifact structure):

    PYTHONPATH=src python -m pytest benchmarks/bench_pcap_replay.py -q
"""

from __future__ import annotations

import argparse
import io
import json
import pathlib
import sys
import time
from typing import Dict, Optional, Sequence

from repro.backend import get_backend
from repro.capture import load_packets, read_capture, write_packets
from repro.core import compile_ruleset
from repro.fpga import STRATIX_III
from repro.rulesets import generate_snort_like_ruleset
from repro.streaming import ScanService
from repro.traffic import TrafficGenerator
from repro.traffic.packet import Packet

DEFAULT_OUTPUT = pathlib.Path(__file__).parent / "results" / "BENCH_pcap.json"

BENCH_SEED = 2010
NUM_SHARDS = 4
BACKENDS = ("dtp", "dense", "ac")

FULL_RULESET_SIZE = 200
FULL_FLOWS = 256
FULL_SEGMENTS_PER_FLOW = 8
FULL_SEGMENT_BYTES = 512
FULL_REPEATS = 3

SMOKE_RULESET_SIZE = 40
SMOKE_FLOWS = 8
SMOKE_SEGMENTS_PER_FLOW = 4
SMOKE_SEGMENT_BYTES = 256
SMOKE_REPEATS = 1


def build_workload(ruleset, flow_count: int, segments: int, segment_bytes: int):
    """Deterministic interleaved flows, re-id'd in arrival order (the id
    convention a capture replay uses, so event streams are comparable)."""
    generator = TrafficGenerator(ruleset, seed=BENCH_SEED + 1)
    flows = generator.flows(
        flow_count,
        num_packets=segments,
        split_patterns=1,
        segment_bytes=segment_bytes,
    )
    packets = TrafficGenerator.interleave(flows)
    return [
        Packet(packet.payload, packet.header, index)
        for index, packet in enumerate(packets)
    ]


def best_of(repeats: int, action):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = action()
        best = min(best, time.perf_counter() - start)
    return best, value


def bench_decode(capture_blob: bytes, payload_bytes: int, fmt: str, repeats: int) -> Dict:
    seconds, (packets, stats) = best_of(
        repeats, lambda: load_packets(io.BytesIO(capture_blob))
    )
    assert stats.skipped_total == 0
    read_seconds, _ = best_of(repeats, lambda: read_capture(io.BytesIO(capture_blob)))
    return {
        "format": fmt,
        "capture_bytes": len(capture_blob),
        "frames": stats.frames,
        "payload_bytes": payload_bytes,
        "container_read_mb_per_s": len(capture_blob) / read_seconds / 1e6,
        "decode_mb_per_s": payload_bytes / seconds / 1e6,
        "decode_seconds": seconds,
    }


def bench_backend(backend: str, ruleset, packets, capture_blob: bytes, repeats: int) -> Dict:
    if backend == "dtp":
        program = compile_ruleset(ruleset, STRATIX_III)
    else:
        program = get_backend(backend).compile(ruleset.patterns)
    payload_bytes = sum(len(packet.payload) for packet in packets)

    memory_seconds, memory_result = best_of(
        repeats, lambda: ScanService(program, num_shards=NUM_SHARDS).scan(packets)
    )

    def replay():
        loaded, _ = load_packets(io.BytesIO(capture_blob))
        return ScanService(program, num_shards=NUM_SHARDS).scan(loaded)

    replay_seconds, replay_result = best_of(repeats, replay)
    return {
        "backend": backend,
        "events": len(memory_result.events),
        "memory_mb_per_s": payload_bytes / memory_seconds / 1e6,
        "replay_mb_per_s": payload_bytes / replay_seconds / 1e6,
        "replay_vs_memory": memory_seconds / replay_seconds,
        "events_identical": replay_result.events == memory_result.events,
    }


def run_sweep(smoke: bool = False, repeats: Optional[int] = None) -> Dict:
    ruleset_size = SMOKE_RULESET_SIZE if smoke else FULL_RULESET_SIZE
    flows = SMOKE_FLOWS if smoke else FULL_FLOWS
    segments = SMOKE_SEGMENTS_PER_FLOW if smoke else FULL_SEGMENTS_PER_FLOW
    segment_bytes = SMOKE_SEGMENT_BYTES if smoke else FULL_SEGMENT_BYTES
    repeats = repeats if repeats is not None else (SMOKE_REPEATS if smoke else FULL_REPEATS)

    ruleset = generate_snort_like_ruleset(ruleset_size, seed=BENCH_SEED)
    packets = build_workload(ruleset, flows, segments, segment_bytes)
    payload_bytes = sum(len(packet.payload) for packet in packets)

    captures: Dict[str, bytes] = {}
    for fmt in ("pcap", "pcapng"):
        buffer = io.BytesIO()
        write_packets(buffer, packets, fmt=fmt)
        captures[fmt] = buffer.getvalue()

    decode = [
        bench_decode(captures[fmt], payload_bytes, fmt, repeats)
        for fmt in ("pcap", "pcapng")
    ]
    backends = [
        bench_backend(backend, ruleset, packets, captures["pcap"], repeats)
        for backend in BACKENDS
    ]

    return {
        "generated_by": "benchmarks/bench_pcap_replay.py",
        "mode": "smoke" if smoke else "full",
        "seed": BENCH_SEED,
        "ruleset_size": ruleset_size,
        "num_shards": NUM_SHARDS,
        "flows": flows,
        "segments_per_flow": segments,
        "segment_bytes": segment_bytes,
        "packets": len(packets),
        "payload_bytes": payload_bytes,
        "repeats": repeats,
        "decode": decode,
        "backends": backends,
        "events_identical_everywhere": all(
            entry["events_identical"] for entry in backends
        ),
    }


def format_report(report: Dict) -> str:
    lines = [
        f"pcap replay sweep ({report['mode']}): {report['ruleset_size']} strings, "
        f"{report['packets']} packets, {report['payload_bytes']} payload bytes"
    ]
    for entry in report["decode"]:
        lines.append(
            f"  {entry['format']:<7s} container {entry['container_read_mb_per_s']:>9.1f} MB/s"
            f"   frame decode {entry['decode_mb_per_s']:>8.2f} MB/s"
        )
    lines.append(
        f"{'backend':>10s} {'memory MB/s':>12s} {'replay MB/s':>12s} {'replay/mem':>11s}"
    )
    for entry in report["backends"]:
        lines.append(
            f"{entry['backend']:>10s} {entry['memory_mb_per_s']:>12.2f} "
            f"{entry['replay_mb_per_s']:>12.2f} {entry['replay_vs_memory']:>10.2f}x"
        )
    lines.append(
        "replayed event streams byte-identical: "
        + ("yes" if report["events_identical_everywhere"] else "NO — BUG")
    )
    return "\n".join(lines)


def write_report(report: Dict, output: pathlib.Path) -> pathlib.Path:
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return output


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI smoke runs")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    report = run_sweep(smoke=args.smoke, repeats=args.repeats)
    path = write_report(report, args.output)
    print(format_report(report))
    print(f"wrote {path}")
    return 0


# ----------------------------------------------------------------------
# pytest entry point (smoke-sized so the full benchmark run stays fast)
# ----------------------------------------------------------------------
def test_pcap_replay_sweep_smoke(results_dir):
    report = run_sweep(smoke=True)
    path = write_report(report, results_dir / "BENCH_pcap_smoke.json")
    assert path.exists()
    assert report["events_identical_everywhere"], (
        "replayed event streams must be byte-identical to the in-memory scan"
    )
    for entry in report["decode"]:
        assert entry["decode_mb_per_s"] > 0
        assert entry["frames"] == report["packets"]
    for entry in report["backends"]:
        assert entry["events"] > 0
        assert entry["memory_mb_per_s"] > 0 and entry["replay_mb_per_s"] > 0


if __name__ == "__main__":
    sys.exit(main())
