"""E6 — Figure 8: power vs throughput on the Stratix III implementation."""

import pytest

from repro.analysis import PAPER_PEAK_POWER_WATTS, ascii_chart, format_table, power_curves
from repro.fpga import STRATIX_III, PowerModel

SIZES = (634, 1603, 2588, 6275)


def test_fig8_power_vs_throughput_stratix(benchmark, write_result, paper_family, compiled_program):
    blocks = {
        f"{size} strings": compiled_program(size, STRATIX_III).blocks_per_group for size in SIZES
    }
    curves = benchmark.pedantic(
        lambda: power_curves(STRATIX_III, blocks, num_points=12), rounds=3, iterations=1
    )

    sections = []
    for curve in curves:
        sections.append(
            format_table(curve.points, title=f"Figure 8 — {curve.label} "
                                             f"({curve.blocks_per_group} block(s) per group)")
        )
        sections.append(ascii_chart(curve.points, "power_watts", "throughput_gbps", label=curve.label))
    write_result("fig8_power_stratix3.txt", "\n\n".join(sections))

    model = PowerModel(STRATIX_III)
    assert model.peak_power_watts() == pytest.approx(
        PAPER_PEAK_POWER_WATTS["Stratix III"], rel=0.05
    )
    tops = [curve.points[-1]["throughput_gbps"] for curve in curves]
    # ordered by ruleset size: smaller rulesets sustain at least the
    # throughput of larger ones at the peak clock
    assert all(earlier >= later for earlier, later in zip(tops, tops[1:]))
    # the 634-string configuration reaches the paper's 40+ Gbps headline
    assert tops[0] > 40.0
    # Stratix III burns more power than Cyclone III at its operating point
    assert model.peak_power_watts() > PAPER_PEAK_POWER_WATTS["Cyclone III"]
