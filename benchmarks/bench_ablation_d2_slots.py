"""Ablation — number of depth-2 default slots per character.

Section III.B: "We found through testing of strings used in the Snort ruleset
that 4 was the optimum value."  The ablation sweeps the slot count and reports
the average stored pointers and the resulting lookup-table cost, showing the
diminishing returns beyond ~4 slots.
"""

from repro.analysis import format_table
from repro.core import DTPAutomaton, build_default_transition_table

SLOT_COUNTS = (0, 1, 2, 3, 4, 6, 8)


def test_ablation_depth2_slot_count(benchmark, write_result, paper_family, original_dfa):
    dfa = original_dfa(1204)

    def sweep():
        rows = []
        for slots in SLOT_COUNTS:
            table = build_default_transition_table(dfa, d2_slots=slots)
            dtp = DTPAutomaton(dfa, defaults=table)
            rows.append(
                {
                    "d2_slots": slots,
                    "defaults_d2": table.num_d2,
                    "avg_stored_pointers": round(dtp.average_stored_pointers(), 3),
                    "stored_pointers": dtp.stored_pointer_count(),
                    "max_pointers": dtp.max_pointers_per_state(),
                    "lookup_entry_bits": 1 + 8 * slots + 16,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result("ablation_d2_slots.txt",
                 format_table(rows, title="Ablation — depth-2 default slots per character"))

    by_slots = {row["d2_slots"]: row for row in rows}
    # more slots never hurt the pointer count
    ordered = [by_slots[s]["avg_stored_pointers"] for s in SLOT_COUNTS]
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))
    # the paper's operating point: 4 slots capture the bulk of the benefit —
    # going from 0 to 4 slots saves far more than going from 4 to 8
    saving_to_4 = by_slots[0]["avg_stored_pointers"] - by_slots[4]["avg_stored_pointers"]
    saving_beyond_4 = by_slots[4]["avg_stored_pointers"] - by_slots[8]["avg_stored_pointers"]
    assert saving_to_4 > 4 * saving_beyond_4
