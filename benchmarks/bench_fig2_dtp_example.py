"""E1 — Figure 2: the worked example (strings he, she, his, hers).

Reproduces the average stored-pointer counts as depth-1, depth-2 and depth-3
default transition pointers are introduced, and benchmarks how long building
the compressed automaton takes.
"""

from repro.analysis import format_comparison
from repro.automata import AhoCorasickDFA
from repro.core import DTPAutomaton

PATTERNS = [b"he", b"she", b"his", b"hers"]

#: values read off Figure 2 of the paper
PAPER_AVERAGES = {"original": 2.5, "after_d1": 1.1, "after_d1_d2": 0.5, "after_d1_d2_d3": 0.1}


def test_fig2_dtp_example(benchmark, write_result):
    def build():
        dfa = AhoCorasickDFA.from_patterns(PATTERNS)
        return DTPAutomaton(dfa)

    dtp = benchmark.pedantic(build, rounds=5, iterations=1)
    averages = {key: round(value, 2) for key, value in dtp.staged_counts().averages().items()}

    text = format_comparison(averages, PAPER_AVERAGES, title="Figure 2 — average pointers per state")
    write_result("fig2_dtp_example.txt", text)

    # machine-checked anchors (see EXPERIMENTS.md for the 2.6-vs-2.5 note)
    assert averages["after_d1"] == PAPER_AVERAGES["after_d1"]
    assert averages["after_d1_d2"] == PAPER_AVERAGES["after_d1_d2"]
    assert averages["after_d1_d2_d3"] == PAPER_AVERAGES["after_d1_d2_d3"]
