"""Software matching-speed comparison (context for the hardware design).

Not a figure of the paper, but it grounds its motivation: a pure-software
multi-pattern scan is orders of magnitude away from line rate, and the
failure-function automaton's speed depends on the input, which is exactly
what the guaranteed-rate hardware design removes.

Every registered :mod:`repro.backend` backend is benchmarked through the
unified protocol (``bench_backends.py`` adds the payload-size sweep and the
machine-readable artifact); the goto/failure NFA rides along as the one
matcher deliberately outside the protocol.
"""

import pytest

from repro.automata import AhoCorasickNFA
from repro.backend import backend_names, get_backend
from repro.traffic import TrafficGenerator, TrafficProfile

PAYLOAD_BYTES = 40_000


def _payload(ruleset, seed=5):
    generator = TrafficGenerator(
        ruleset, TrafficProfile(mean_payload_bytes=1400, attack_probability=0.3), seed=seed
    )
    data = bytearray()
    while len(data) < PAYLOAD_BYTES:
        data += generator.packet().payload
    return bytes(data[:PAYLOAD_BYTES])


@pytest.fixture(scope="module")
def workload(paper_family):
    ruleset = paper_family[500]
    return ruleset, _payload(ruleset)


@pytest.mark.parametrize("backend_name", backend_names())
def test_software_backend_scan(benchmark, workload, backend_name):
    ruleset, payload = workload
    program = get_backend(backend_name).compile(ruleset.patterns)
    result = benchmark(program.match, payload)
    assert isinstance(result, list)


def test_software_nfa_scan(benchmark, workload):
    ruleset, payload = workload
    nfa = AhoCorasickNFA.from_patterns(ruleset.patterns)
    result = benchmark(nfa.match, payload)
    assert isinstance(result, list)


def test_software_matchers_agree(workload):
    ruleset, payload = workload
    expected = None
    for backend_name in backend_names():
        program = get_backend(backend_name).compile(ruleset.patterns)
        matches = sorted(program.match(payload))
        if expected is None:
            expected = matches
        assert matches == expected, backend_name
    assert sorted(AhoCorasickNFA.from_patterns(ruleset.patterns).match(payload)) == expected
