"""Software matching-speed comparison (context for the hardware design).

Not a figure of the paper, but it grounds its motivation: a pure-software
multi-pattern scan is orders of magnitude away from line rate, and the
failure-function automaton's speed depends on the input, which is exactly
what the guaranteed-rate hardware design removes.
"""

import pytest

from repro.automata import AhoCorasickDFA, AhoCorasickNFA, WuManber
from repro.core import DTPAutomaton
from repro.traffic import TrafficGenerator, TrafficProfile

PAYLOAD_BYTES = 40_000


def _payload(ruleset, seed=5):
    generator = TrafficGenerator(
        ruleset, TrafficProfile(mean_payload_bytes=1400, attack_probability=0.3), seed=seed
    )
    data = bytearray()
    while len(data) < PAYLOAD_BYTES:
        data += generator.packet().payload
    return bytes(data[:PAYLOAD_BYTES])


@pytest.fixture(scope="module")
def workload(paper_family):
    ruleset = paper_family[500]
    return ruleset, _payload(ruleset)


def test_software_dfa_scan(benchmark, workload):
    ruleset, payload = workload
    dfa = AhoCorasickDFA.from_patterns(ruleset.patterns)
    result = benchmark(dfa.match, payload)
    assert isinstance(result, list)


def test_software_nfa_scan(benchmark, workload):
    ruleset, payload = workload
    nfa = AhoCorasickNFA.from_patterns(ruleset.patterns)
    result = benchmark(nfa.match, payload)
    assert isinstance(result, list)


def test_software_dtp_scan(benchmark, workload):
    ruleset, payload = workload
    dtp = DTPAutomaton.from_ruleset(ruleset)
    result = benchmark(dtp.match, payload)
    assert isinstance(result, list)


def test_software_wu_manber_scan(benchmark, workload):
    ruleset, payload = workload
    matcher = WuManber(ruleset.patterns)
    result = benchmark(matcher.match, payload)
    assert isinstance(result, list)


def test_software_matchers_agree(workload):
    ruleset, payload = workload
    expected = sorted(AhoCorasickDFA.from_patterns(ruleset.patterns).match(payload))
    assert sorted(DTPAutomaton.from_ruleset(ruleset).match(payload)) == expected
    assert sorted(WuManber(ruleset.patterns).match(payload)) == expected
