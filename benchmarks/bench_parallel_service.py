"""Parallel shard executor sweep: serial ScanService vs 1/2/4-worker scaling.

Interleaved multi-packet flows are scanned through the serial
:class:`repro.streaming.ScanService` and through
:class:`repro.streaming.ParallelScanService` at several worker counts, over a
sweep of traffic sizes and over two backends (the paper's dtp program and the
software dense automaton).  The machine-readable ``BENCH_parallel.json``
records throughput, the speedup of every worker count against the serial
walk, and — because the two front-ends promise byte-identical reports —
whether the event streams actually matched.

The headline number is ``speedup_at_4_workers_largest``: with ≥4 usable cores
it is expected comfortably above 1.5x (the scan is pure CPU and shards share
nothing).  The report stores ``cpu_count`` next to it because the number is
meaningless without it — on a 1-core container the 4-worker run measures
pure executor overhead, not scaling, and ``cpu_limited`` is set so a
regression gate can tell the two situations apart.

The ``transport`` section is the per-stage breakdown for the shared-memory
shard transport: ``probe_transport`` pushes the largest workload through the
full data plane (interning, chunking, ring writes, worker reads) with the
scan replaced by a drain, so dividing by the measured parallel scan time
says what fraction of the wall clock the transport itself costs.  On a
CPU-starved runner the speedup headline above is meaningless, but this
fraction still is — a transport under ~half the total proves the scan, not
the byte carriage, dominates.

The ``hot_path`` section answers a different question: how much does the
streaming service layer (flow table, sharding, event objects) cost on top of
the raw backend?  It times the dense backend scanning the same segments bare
— ``program.scan(payload)`` per packet, no flow state — and divides by the
serial service throughput on the largest sweep point.  With the batched
``scan_batch`` hot path the ratio sits near 1.0; the recorded target is a
conservative 2.0.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_parallel_service.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_parallel_service.py --smoke    # CI smoke

or through pytest (smoke-sized, asserts the artifact structure):

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_service.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.backend import get_backend
from repro.core import compile_ruleset
from repro.fpga import STRATIX_III
from repro.rulesets import generate_snort_like_ruleset
from repro.streaming import ParallelScanService, ScanService
from repro.traffic import TrafficGenerator

DEFAULT_OUTPUT = pathlib.Path(__file__).parent / "results" / "BENCH_parallel.json"

BENCH_SEED = 2010
NUM_SHARDS = 4
WORKER_COUNTS = (1, 2, 4)
SPEEDUP_TARGET = 1.5
BACKENDS = ("dtp", "dense")
HOT_PATH_BACKEND = "dense"
HOT_PATH_TARGET_RATIO = 2.0

FULL_RULESET_SIZE = 200
FULL_FLOW_COUNTS = (64, 256, 1024)
FULL_SEGMENTS_PER_FLOW = 8
FULL_SEGMENT_BYTES = 512

SMOKE_RULESET_SIZE = 40
SMOKE_FLOW_COUNTS = (8,)
SMOKE_SEGMENTS_PER_FLOW = 4
SMOKE_SEGMENT_BYTES = 256


def build_workload(ruleset, flow_count: int, segments: int, segment_bytes: int):
    """Deterministic interleaved flows, each with one boundary-split pattern."""
    generator = TrafficGenerator(ruleset, seed=BENCH_SEED + flow_count)
    flows = generator.flows(
        flow_count,
        num_packets=segments,
        split_patterns=1,
        segment_bytes=segment_bytes,
    )
    return TrafficGenerator.interleave(flows)


def compile_backends(ruleset) -> Dict[str, object]:
    """The two programs under test: the paper's dtp pipeline compile and the
    software dense automaton (the fastest pure-python backend)."""
    return {
        "dtp": compile_ruleset(ruleset, STRATIX_III),
        "dense": get_backend("dense").compile(ruleset.patterns),
    }


def timed_scan(service, packets):
    """Scan one batch on a fresh service; return (seconds, sorted events)."""
    start = time.perf_counter()
    result = service.scan(packets)
    return time.perf_counter() - start, result.events


def raw_backend_mb_per_s(program, packets, repeats: int) -> float:
    """Throughput of the bare backend over the same segments: one
    ``program.scan`` per packet, no flow table, no service machinery."""
    payload_bytes = sum(len(packet.payload) for packet in packets)
    payloads = [packet.payload for packet in packets]
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for payload in payloads:
            program.scan(payload)
        best = min(best, time.perf_counter() - start)
    return payload_bytes / best / 1e6


def bench_point(program, packets, repeats: int, worker_counts: Sequence[int]) -> Dict:
    payload_bytes = sum(len(packet.payload) for packet in packets)

    serial_best = float("inf")
    serial_events = None
    for _ in range(repeats):
        seconds, serial_events = timed_scan(
            ScanService(program, num_shards=NUM_SHARDS), packets
        )
        serial_best = min(serial_best, seconds)

    point = {
        "flows": len({event.flow for event in serial_events}) or None,
        "packets": len(packets),
        "payload_bytes": payload_bytes,
        "events": len(serial_events),
        "serial": {
            "seconds": serial_best,
            "mb_per_s": payload_bytes / serial_best / 1e6,
        },
        "workers": {},
    }
    for workers in worker_counts:
        best = float("inf")
        identical = True
        for _ in range(repeats):
            with ParallelScanService(
                program, num_shards=NUM_SHARDS, workers=workers
            ) as service:
                seconds, events = timed_scan(service, packets)
            best = min(best, seconds)
            identical = identical and events == serial_events
        point["workers"][str(workers)] = {
            "seconds": best,
            "mb_per_s": payload_bytes / best / 1e6,
            "speedup_vs_serial": serial_best / best,
            "events_identical": identical,
        }
    return point


def run_sweep(smoke: bool = False, repeats: Optional[int] = None) -> Dict:
    ruleset_size = SMOKE_RULESET_SIZE if smoke else FULL_RULESET_SIZE
    flow_counts = SMOKE_FLOW_COUNTS if smoke else FULL_FLOW_COUNTS
    segments = SMOKE_SEGMENTS_PER_FLOW if smoke else FULL_SEGMENTS_PER_FLOW
    segment_bytes = SMOKE_SEGMENT_BYTES if smoke else FULL_SEGMENT_BYTES
    repeats = repeats if repeats is not None else 2  # best-of, noise-resistant

    ruleset = generate_snort_like_ruleset(ruleset_size, seed=BENCH_SEED)
    programs = compile_backends(ruleset)

    workloads = {
        flow_count: build_workload(ruleset, flow_count, segments, segment_bytes)
        for flow_count in flow_counts
    }
    sweeps: Dict[str, List[Dict]] = {}
    for name in BACKENDS:
        sweeps[name] = [
            bench_point(programs[name], workloads[flow_count], repeats, WORKER_COUNTS)
            for flow_count in flow_counts
        ]

    # hot-path gate: the serial service vs the bare backend, largest workload
    largest_packets = workloads[flow_counts[-1]]
    raw_mb = raw_backend_mb_per_s(programs[HOT_PATH_BACKEND], largest_packets, repeats)
    service_mb = sweeps[HOT_PATH_BACKEND][-1]["serial"]["mb_per_s"]
    hot_path_ratio = raw_mb / service_mb

    # per-stage breakdown: transport-only dispatch vs the full parallel scan
    max_workers = WORKER_COUNTS[-1]
    transport_best = float("inf")
    with ParallelScanService(
        programs[HOT_PATH_BACKEND], num_shards=NUM_SHARDS, workers=max_workers
    ) as probe_service:
        for _ in range(repeats):
            start = time.perf_counter()
            probe_service.probe_transport(largest_packets)
            transport_best = min(transport_best, time.perf_counter() - start)
        transport_counters = probe_service.transport_stats.as_dict()
    parallel_best = sweeps[HOT_PATH_BACKEND][-1]["workers"][str(max_workers)]["seconds"]
    transport_fraction = transport_best / parallel_best

    cpu_count = os.cpu_count() or 1
    largest = sweeps["dtp"][-1]
    headline = largest["workers"][str(WORKER_COUNTS[-1])]["speedup_vs_serial"]
    report = {
        "generated_by": "benchmarks/bench_parallel_service.py",
        "mode": "smoke" if smoke else "full",
        "seed": BENCH_SEED,
        "ruleset_size": ruleset_size,
        "num_shards": NUM_SHARDS,
        "worker_counts": list(WORKER_COUNTS),
        "segments_per_flow": segments,
        "segment_bytes": segment_bytes,
        "repeats": repeats,
        "cpu_count": cpu_count,
        "backends": list(BACKENDS),
        "sweeps": sweeps,
        "speedup_at_4_workers_largest": headline,
        "speedup_target": SPEEDUP_TARGET,
        "meets_speedup_target": headline >= SPEEDUP_TARGET,
        "cpu_limited": cpu_count < WORKER_COUNTS[-1],
        "transport": {
            "carrier": "shared-memory ring",
            "backend": HOT_PATH_BACKEND,
            "workers": max_workers,
            "flows": flow_counts[-1],
            "transport_only_seconds": transport_best,
            "parallel_scan_seconds": parallel_best,
            "fraction_of_scan": transport_fraction,
            "not_dominant": transport_fraction < 0.5,
            "counters": transport_counters,
        },
        "hot_path": {
            "backend": HOT_PATH_BACKEND,
            "flows": flow_counts[-1],
            "raw_backend_mb_per_s": raw_mb,
            "serial_service_mb_per_s": service_mb,
            "raw_vs_service_ratio": hot_path_ratio,
            "target_max_ratio": HOT_PATH_TARGET_RATIO,
            "within_target": hot_path_ratio <= HOT_PATH_TARGET_RATIO,
        },
        "events_identical_everywhere": all(
            entry["events_identical"]
            for points in sweeps.values()
            for point in points
            for entry in point["workers"].values()
        ),
    }
    return report


def format_report(report: Dict) -> str:
    lines = [
        f"parallel executor sweep ({report['mode']}): {report['ruleset_size']} strings, "
        f"{report['num_shards']} shards, cpu_count={report['cpu_count']}"
    ]
    header = f"{'backend':>8s} {'payload':>10s} {'serial MB/s':>12s}" + "".join(
        f"{f'{workers}w MB/s':>12s}{f'{workers}w x':>8s}"
        for workers in report["worker_counts"]
    )
    lines.append(header)
    for backend in report["backends"]:
        for point in report["sweeps"][backend]:
            row = (
                f"{backend:>8s} {point['payload_bytes']:>10d} "
                f"{point['serial']['mb_per_s']:>12.2f}"
            )
            for workers in report["worker_counts"]:
                entry = point["workers"][str(workers)]
                row += f"{entry['mb_per_s']:>12.2f}{entry['speedup_vs_serial']:>8.2f}"
            lines.append(row)
    lines.append(
        f"speedup at {report['worker_counts'][-1]} workers on largest payload: "
        f"{report['speedup_at_4_workers_largest']:.2f}x "
        f"(target {report['speedup_target']}x"
        + (", CPU-LIMITED: fewer cores than workers)" if report["cpu_limited"] else ")")
    )
    transport = report["transport"]
    lines.append(
        f"transport ({transport['carrier']}, {transport['workers']} workers): "
        f"{transport['transport_only_seconds'] * 1e3:.1f} ms of "
        f"{transport['parallel_scan_seconds'] * 1e3:.1f} ms scan — "
        f"{transport['fraction_of_scan']:.0%} of wall clock"
        + ("" if transport["not_dominant"] else " (DOMINANT)")
    )
    hot = report["hot_path"]
    lines.append(
        f"hot path ({hot['backend']}, {hot['flows']} flows): raw backend "
        f"{hot['raw_backend_mb_per_s']:.2f} MB/s vs serial service "
        f"{hot['serial_service_mb_per_s']:.2f} MB/s — ratio "
        f"{hot['raw_vs_service_ratio']:.2f}x (target ≤ {hot['target_max_ratio']}x"
        + (")" if hot["within_target"] else ", EXCEEDED)")
    )
    lines.append(
        "event streams byte-identical: "
        + ("yes" if report["events_identical_everywhere"] else "NO — BUG")
    )
    return "\n".join(lines)


def write_report(report: Dict, output: pathlib.Path) -> pathlib.Path:
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return output


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI smoke runs")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    report = run_sweep(smoke=args.smoke, repeats=args.repeats)
    path = write_report(report, args.output)
    print(format_report(report))
    print(f"wrote {path}")
    return 0


# ----------------------------------------------------------------------
# pytest entry point (smoke-sized so the full benchmark run stays fast)
# ----------------------------------------------------------------------
def test_parallel_service_sweep_smoke(results_dir):
    report = run_sweep(smoke=True)
    path = write_report(report, results_dir / "BENCH_parallel_smoke.json")
    assert path.exists()
    assert report["events_identical_everywhere"], (
        "parallel event streams must be byte-identical to the serial service"
    )
    for backend in report["backends"]:
        for point in report["sweeps"][backend]:
            assert point["serial"]["mb_per_s"] > 0
            for entry in point["workers"].values():
                assert entry["mb_per_s"] > 0
    assert "speedup_at_4_workers_largest" in report
    assert report["transport"]["transport_only_seconds"] > 0
    assert report["transport"]["counters"]["ring_segments"] > 0
    assert report["transport"]["not_dominant"], (
        "the shared-memory transport should be a minority of the scan wall "
        f"clock, measured {report['transport']['fraction_of_scan']:.0%}"
    )
    assert report["hot_path"]["raw_backend_mb_per_s"] > 0
    assert report["hot_path"]["serial_service_mb_per_s"] > 0
    # scaling is hardware-dependent (CI containers are often 1-2 cores), so
    # the smoke gate checks correctness and structure, not the speedup itself;
    # the hot-path ratio is gated with a generous threshold by
    # bench_streaming_flows.py --smoke instead


if __name__ == "__main__":
    sys.exit(main())
