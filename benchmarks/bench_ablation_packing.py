"""Ablation — the 15-state-type packed memory layout of Figure 3.

Compares the paper's packed layout (states share 324-bit words according to
their pointer count) against the naive layout that stores one state per word,
quantifying why the type system exists.
"""

from repro.analysis import format_table
from repro.core import DTPAutomaton, pack_state_machine
from repro.core.state_types import WORD_BITS
from repro.fpga import STRATIX_III


def test_ablation_packed_vs_one_state_per_word(benchmark, write_result, paper_family):
    dtp = DTPAutomaton.from_ruleset(paper_family[634], max_stored_pointers=13)

    packed = benchmark.pedantic(lambda: pack_state_machine(dtp), rounds=3, iterations=1)

    naive_words = dtp.num_states  # one 324-bit word per state
    rows = [
        {
            "layout": "15 state types (Figure 3)",
            "words": packed.num_words,
            "bits": packed.memory_bits(),
            "slot_utilisation": round(packed.slot_utilisation(), 3),
            "fits_one_stratix_block": packed.num_words <= STRATIX_III.state_machine_words,
        },
        {
            "layout": "one state per word (naive)",
            "words": naive_words,
            "bits": naive_words * WORD_BITS,
            "slot_utilisation": round(packed.used_slots() / (naive_words * 9), 3),
            "fits_one_stratix_block": naive_words <= STRATIX_III.state_machine_words,
        },
    ]
    write_result("ablation_packing.txt",
                 format_table(rows, title="Ablation — packed layout vs one state per word"))

    # the packed layout is what makes the 634-string ruleset fit a single block
    assert packed.num_words <= STRATIX_III.state_machine_words
    assert naive_words > STRATIX_III.state_machine_words
    assert packed.num_words * 3 < naive_words
    assert packed.slot_utilisation() > 0.97
