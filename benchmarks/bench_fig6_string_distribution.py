"""E2 — Figure 6: string-length distribution of the six ruleset sizes.

The figure's claim is that every reduced ruleset keeps the character
distribution of the full 6,275-string set (peak between 4 and 13 bytes);
the benchmark regenerates the per-bucket histograms and checks the shape.
"""

from repro.analysis import format_histogram, format_table
from repro.rulesets import generate_paper_rulesets

SIZES = (500, 634, 1204, 1603, 2588, 6275)


def test_fig6_length_distribution(benchmark, write_result):
    family = benchmark.pedantic(lambda: generate_paper_rulesets(seed=2010), rounds=1, iterations=1)

    sections = []
    rows = []
    for size in SIZES:
        ruleset = family[size]
        histogram = ruleset.bucketed_histogram()
        sections.append(format_histogram(histogram, title=f"Figure 6 — {size} strings"))
        rows.append({"strings": size, "characters": ruleset.total_characters, **histogram})

        # shape checks: the 5-9 and 10-14 buckets dominate, exactly as in the figure
        peak_bucket = max(histogram, key=histogram.get)
        assert peak_bucket in ("5-9", "10-14")
        assert histogram["50+"] > 0
        assert histogram["1-4"] <= histogram[peak_bucket]

    # reduction preserves the distribution: bucket shares within 2 percentage
    # points of the full ruleset's shares
    full = family[6275].bucketed_histogram()
    for size in SIZES[:-1]:
        small = family[size].bucketed_histogram()
        for bucket in full:
            assert abs(small[bucket] / size - full[bucket] / 6275) < 0.02

    text = format_table(rows, title="Figure 6 — strings per length bucket") + "\n\n" + "\n\n".join(sections)
    write_result("fig6_string_distribution.txt", text)
