"""E13 — streaming flow scan: throughput vs concurrent-flow count.

Not a paper artefact: this measures the flow-scan subsystem layered on top of
the compiled automaton.  Interleaved multi-packet flows (each carrying one
pattern deliberately split across a segment boundary) are pushed through a
sharded :class:`repro.streaming.ScanService`, sweeping the number of
concurrent flows.  Reported per point: scan throughput, cross-segment
detection rate, and flow-table behaviour — including an over-capacity point
where LRU eviction kicks in.
"""

import time

from repro.analysis import format_table
from repro.core import compile_ruleset
from repro.fpga import STRATIX_III
from repro.rulesets import generate_snort_like_ruleset
from repro.streaming import ScanService, StreamScanner
from repro.traffic import TrafficGenerator

BENCH_SEED = 2010
RULESET_SIZE = 200
SEGMENTS_PER_FLOW = 4
SEGMENT_BYTES = 128
NUM_SHARDS = 4

#: (concurrent flows, per-shard flow-table capacity); the last point forces
#: LRU eviction by giving the table room for only half the flows.
SWEEP = ((16, 4096), (64, 4096), (256, 4096), (512, 4096), (512, 64))


def test_streaming_flow_scaling(benchmark, write_result):
    ruleset = generate_snort_like_ruleset(RULESET_SIZE, seed=BENCH_SEED)
    program = compile_ruleset(ruleset, STRATIX_III)
    sid_of = program.string_number_to_sid()

    # pre-generate every workload so the timed region is scanning only
    workloads = {}
    for flow_count, capacity in SWEEP:
        generator = TrafficGenerator(ruleset, seed=BENCH_SEED + flow_count + capacity)
        flows = generator.flows(
            flow_count,
            num_packets=SEGMENTS_PER_FLOW,
            split_patterns=1,
            segment_bytes=SEGMENT_BYTES,
        )
        workloads[(flow_count, capacity)] = (
            flows,
            TrafficGenerator.interleave(flows),
        )

    def sweep():
        rows = []
        for flow_count, capacity in SWEEP:
            flows, packets = workloads[(flow_count, capacity)]
            service = ScanService(
                program, num_shards=NUM_SHARDS, flow_capacity_per_shard=capacity
            )
            start = time.perf_counter()
            result = service.scan(packets)
            elapsed = time.perf_counter() - start

            detected = 0
            events_by_flow = result.events_by_flow()
            for flow in flows:
                key = StreamScanner.flow_key(flow.packets[0])
                streamed = {
                    sid_of[event.string_number]
                    for event in events_by_flow.get(key, ())
                }
                detected += all(sid in streamed for sid in flow.split_sids)
            rows.append(
                {
                    "flows": flow_count,
                    "capacity/shard": capacity,
                    "packets": result.packets,
                    "kbytes": round(result.bytes_scanned / 1024, 1),
                    "mbit_per_s": round(result.bytes_scanned * 8 / elapsed / 1e6, 2),
                    "events": len(result.events),
                    "cross_segment": service.cross_segment_matches,
                    "split_detected": f"{detected}/{flow_count}",
                    "active_flows": service.active_flows,
                    "evicted": service.evicted_flows,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    write_result(
        "streaming_flow_scaling.txt",
        format_table(rows, title="Streaming scan throughput vs concurrent flows"),
    )

    by_key = {(row["flows"], row["capacity/shard"]): row for row in rows}
    # with ample flow-table capacity every split pattern is caught statefully
    for flow_count, capacity in SWEEP[:-1]:
        row = by_key[(flow_count, capacity)]
        assert row["split_detected"] == f"{flow_count}/{flow_count}"
        assert row["evicted"] == 0
        assert row["cross_segment"] >= flow_count
    # the over-capacity point must actually exercise LRU eviction
    assert by_key[(512, 64)]["evicted"] > 0
    assert by_key[(512, 64)]["active_flows"] <= NUM_SHARDS * 64
