"""E13 — streaming flow scan: throughput vs concurrent-flow count.

Not a paper artefact: this measures the flow-scan subsystem layered on top of
the compiled automaton.  Interleaved multi-packet flows (each carrying one
pattern deliberately split across a segment boundary) are pushed through a
sharded :class:`repro.streaming.ScanService`, sweeping the number of
concurrent flows.  Reported per point: scan throughput, cross-segment
detection rate, and flow-table behaviour — including an over-capacity point
where LRU eviction kicks in.

Standalone ``--smoke`` mode is the CI throughput-regression gate for the
batched streaming hot path: it times the dense backend scanning the workload
bare (``program.scan`` per segment, no flow state) and the full sharded
:class:`ScanService` over the identical segments, writes
``BENCH_streaming_smoke.json`` with the service-vs-raw-backend ratio, and
exits non-zero if the service falls past a deliberately generous threshold —
CI containers are noisy, so the gate only catches a real return of the
per-packet-overhead regime, not run-to-run jitter.

    PYTHONPATH=src python benchmarks/bench_streaming_flows.py --smoke
"""

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, Optional, Sequence

from repro.analysis import format_table
from repro.backend import get_backend
from repro.core import compile_ruleset
from repro.fpga import STRATIX_III
from repro.rulesets import generate_snort_like_ruleset
from repro.streaming import ScanService, StreamScanner
from repro.traffic import TrafficGenerator

DEFAULT_SMOKE_OUTPUT = (
    pathlib.Path(__file__).parent / "results" / "BENCH_streaming_smoke.json"
)

BENCH_SEED = 2010
RULESET_SIZE = 200
SEGMENTS_PER_FLOW = 4
SEGMENT_BYTES = 128
NUM_SHARDS = 4

#: (concurrent flows, per-shard flow-table capacity); the last point forces
#: LRU eviction by giving the table room for only half the flows.
SWEEP = ((16, 4096), (64, 4096), (256, 4096), (512, 4096), (512, 64))

SMOKE_RULESET_SIZE = 40
SMOKE_FLOWS = 32
SMOKE_SEGMENTS_PER_FLOW = 4
SMOKE_SEGMENT_BYTES = 256
SMOKE_REPEATS = 3
#: service may be at most this many times slower than the raw backend before
#: the smoke gate fails; the batched hot path sits near 1.0x, the old
#: per-packet loop sat near 6x, so 3.0 has headroom for CI noise on both
#: sides.
SMOKE_MAX_RATIO = 3.0
#: rules in the confirm-stage gate's ruleset (positional windows + negation
#: on every rule, patterns absent from the traffic: a pure no-hit workload)
SMOKE_CONFIRM_RULES = 16


def _confirm_rule_lines(count: int):
    """Synthesize confirm-heavy rules whose contents never occur in the
    smoke traffic: every rule carries an anchored window and a negated
    relative content, so the IDS runs the full two-stage pipeline with the
    prefilter reporting nothing — the hot path the gate protects."""
    lines = []
    for index in range(count):
        positive = f"|F0 {index:02X} C3 5A|"
        negated = f"|E1 {index:02X} 99|"
        lines.append(
            "alert ip any any -> any any "
            f'(content:"{positive}"; offset:0; depth:400; '
            f'content:!"{negated}"; distance:0; within:64; '
            f"sid:{9000 + index};)"
        )
    return lines


def run_smoke(repeats: int = SMOKE_REPEATS) -> Dict:
    """Raw dense backend vs full ScanService on identical segments."""
    ruleset = generate_snort_like_ruleset(SMOKE_RULESET_SIZE, seed=BENCH_SEED)
    program = get_backend("dense").compile(ruleset.patterns)
    generator = TrafficGenerator(ruleset, seed=BENCH_SEED + SMOKE_FLOWS)
    flows = generator.flows(
        SMOKE_FLOWS,
        num_packets=SMOKE_SEGMENTS_PER_FLOW,
        split_patterns=1,
        segment_bytes=SMOKE_SEGMENT_BYTES,
    )
    packets = TrafficGenerator.interleave(flows)
    payloads = [packet.payload for packet in packets]
    payload_bytes = sum(len(payload) for payload in payloads)

    from repro.ids import IntrusionDetectionSystem
    from repro.rulesets import parse_rules

    confirm_specs = parse_rules(_confirm_rule_lines(SMOKE_CONFIRM_RULES))

    raw_best = float("inf")
    service_best = float("inf")
    ids_best = float("inf")
    cross_segment = 0
    prefilter_hits = 0
    confirm_alerts = 0
    for _ in range(repeats):
        start = time.perf_counter()
        for payload in payloads:
            program.scan(payload)
        raw_best = min(raw_best, time.perf_counter() - start)

        service = ScanService(program, num_shards=NUM_SHARDS)
        start = time.perf_counter()
        service.scan(packets)
        service_best = min(service_best, time.perf_counter() - start)
        cross_segment = service.cross_segment_matches

        # the full two-stage pipeline over the same segments: the confirm
        # rules never hit, so this times prefilter + per-packet candidacy
        # gating + end-of-flow negation finalization on the no-hit path
        ids = IntrusionDetectionSystem.from_specs(confirm_specs, backend="dense")
        start = time.perf_counter()
        alerts = ids.scan_flow(packets) + ids.finish()
        ids_best = min(ids_best, time.perf_counter() - start)
        prefilter_hits = ids.stats.content_matches
        confirm_alerts = len(alerts)

    raw_mb = payload_bytes / raw_best / 1e6
    service_mb = payload_bytes / service_best / 1e6
    ids_mb = payload_bytes / ids_best / 1e6
    ratio = raw_mb / service_mb
    ids_ratio = raw_mb / ids_mb
    return {
        "generated_by": "benchmarks/bench_streaming_flows.py --smoke",
        "seed": BENCH_SEED,
        "backend": "dense",
        "ruleset_size": SMOKE_RULESET_SIZE,
        "flows": SMOKE_FLOWS,
        "segments_per_flow": SMOKE_SEGMENTS_PER_FLOW,
        "segment_bytes": SMOKE_SEGMENT_BYTES,
        "num_shards": NUM_SHARDS,
        "repeats": repeats,
        "payload_bytes": payload_bytes,
        "cross_segment_matches": cross_segment,
        "raw_backend_mb_per_s": raw_mb,
        "service_mb_per_s": service_mb,
        "service_vs_raw_backend_ratio": ratio,
        "confirm_rules": SMOKE_CONFIRM_RULES,
        "confirm_prefilter_hits": prefilter_hits,
        "confirm_alerts": confirm_alerts,
        "ids_confirm_mb_per_s": ids_mb,
        "ids_confirm_vs_raw_backend_ratio": ids_ratio,
        "max_ratio": SMOKE_MAX_RATIO,
        "within_threshold": ratio <= SMOKE_MAX_RATIO
        and ids_ratio <= SMOKE_MAX_RATIO,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="hot-path regression smoke: raw backend vs service")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_SMOKE_OUTPUT)
    parser.add_argument("--repeats", type=int, default=SMOKE_REPEATS)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("the full sweep runs under pytest-benchmark; use --smoke here")

    report = run_smoke(repeats=args.repeats)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(
        f"streaming hot-path smoke: raw {report['raw_backend_mb_per_s']:.2f} MB/s, "
        f"service {report['service_mb_per_s']:.2f} MB/s, ratio "
        f"{report['service_vs_raw_backend_ratio']:.2f}x "
        f"(max {report['max_ratio']}x)"
    )
    print(
        f"confirm-stage no-hit smoke: ids {report['ids_confirm_mb_per_s']:.2f} "
        f"MB/s over {report['confirm_rules']} windowed+negated rules, ratio "
        f"{report['ids_confirm_vs_raw_backend_ratio']:.2f}x "
        f"(max {report['max_ratio']}x, {report['confirm_prefilter_hits']} "
        f"prefilter hits, {report['confirm_alerts']} alerts)"
    )
    print(f"wrote {args.output}")
    if not report["within_threshold"]:
        print("REGRESSION: service throughput fell past the hot-path threshold",
              file=sys.stderr)
        return 1
    return 0


def test_streaming_smoke_gate(results_dir):
    """The CI gate's report must be structurally sound and within threshold
    on a quiet machine; ratio near 1.0 is the batched hot path working."""
    report = run_smoke()
    path = results_dir / "BENCH_streaming_smoke.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    assert report["raw_backend_mb_per_s"] > 0
    assert report["service_mb_per_s"] > 0
    assert report["cross_segment_matches"] > 0
    # the confirm ruleset is built to never hit: all its cost is hot path
    assert report["confirm_prefilter_hits"] == 0
    assert report["confirm_alerts"] == 0
    assert report["within_threshold"], (
        f"service is {report['service_vs_raw_backend_ratio']:.2f}x and the "
        f"confirm-stage ids {report['ids_confirm_vs_raw_backend_ratio']:.2f}x "
        f"slower than the raw backend (max {report['max_ratio']}x)"
    )


def test_streaming_flow_scaling(benchmark, write_result):
    ruleset = generate_snort_like_ruleset(RULESET_SIZE, seed=BENCH_SEED)
    program = compile_ruleset(ruleset, STRATIX_III)
    sid_of = program.string_number_to_sid()

    # pre-generate every workload so the timed region is scanning only
    workloads = {}
    for flow_count, capacity in SWEEP:
        generator = TrafficGenerator(ruleset, seed=BENCH_SEED + flow_count + capacity)
        flows = generator.flows(
            flow_count,
            num_packets=SEGMENTS_PER_FLOW,
            split_patterns=1,
            segment_bytes=SEGMENT_BYTES,
        )
        workloads[(flow_count, capacity)] = (
            flows,
            TrafficGenerator.interleave(flows),
        )

    def sweep():
        rows = []
        for flow_count, capacity in SWEEP:
            flows, packets = workloads[(flow_count, capacity)]
            service = ScanService(
                program, num_shards=NUM_SHARDS, flow_capacity_per_shard=capacity
            )
            start = time.perf_counter()
            result = service.scan(packets)
            elapsed = time.perf_counter() - start

            detected = 0
            events_by_flow = result.events_by_flow()
            for flow in flows:
                key = StreamScanner.flow_key(flow.packets[0])
                streamed = {
                    sid_of[event.string_number]
                    for event in events_by_flow.get(key, ())
                }
                detected += all(sid in streamed for sid in flow.split_sids)
            rows.append(
                {
                    "flows": flow_count,
                    "capacity/shard": capacity,
                    "packets": result.packets,
                    "kbytes": round(result.bytes_scanned / 1024, 1),
                    "mbit_per_s": round(result.bytes_scanned * 8 / elapsed / 1e6, 2),
                    "events": len(result.events),
                    "cross_segment": service.cross_segment_matches,
                    "split_detected": f"{detected}/{flow_count}",
                    "active_flows": service.active_flows,
                    "evicted": service.evicted_flows,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    write_result(
        "streaming_flow_scaling.txt",
        format_table(rows, title="Streaming scan throughput vs concurrent flows"),
    )

    by_key = {(row["flows"], row["capacity/shard"]): row for row in rows}
    # with ample flow-table capacity every split pattern is caught statefully
    for flow_count, capacity in SWEEP[:-1]:
        row = by_key[(flow_count, capacity)]
        assert row["split_detected"] == f"{flow_count}/{flow_count}"
        assert row["evicted"] == 0
        assert row["cross_segment"] >= flow_count
    # the over-capacity point must actually exercise LRU eviction
    assert by_key[(512, 64)]["evicted"] > 0
    assert by_key[(512, 64)]["active_flows"] <= NUM_SHARDS * 64


if __name__ == "__main__":
    sys.exit(main())
