"""E14 — TCP reassembly: normalization cost and detection recovery.

Not a paper artefact: this measures the :mod:`repro.proto` reassembly layer
that sits between packet capture and the scan column.  Flows carrying
deliberately split patterns are mangled on the wire (segment reordering,
retransmission, overlap re-splitting — the classic IDS evasion repertoire)
and pushed through :class:`repro.proto.TcpReassembler` before a sharded
:class:`repro.streaming.ScanService`.

Standalone ``--smoke`` mode is the CI regression gate for the reassembly
path: it times the service scanning the clean in-order segments (the
baseline the reassembler must reconstruct) against reassemble-then-scan over
the mangled wire, checks that the match set is byte-for-byte recovered while
a direct scan of the mangled wire demonstrably loses matches, writes
``BENCH_reassembly_smoke.json``, and exits non-zero when the normalization
overhead falls past a deliberately generous threshold — CI containers are
noisy, so the gate only catches a real slowdown of the ordering hot path,
not run-to-run jitter.

    PYTHONPATH=src python benchmarks/bench_reassembly.py --smoke
"""

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, Optional, Sequence

from repro.backend import get_backend
from repro.proto import reassemble_packets
from repro.rulesets import generate_snort_like_ruleset
from repro.streaming import ScanService
from repro.traffic import MANGLE_MODES, TrafficGenerator

DEFAULT_SMOKE_OUTPUT = (
    pathlib.Path(__file__).parent / "results" / "BENCH_reassembly_smoke.json"
)

BENCH_SEED = 2010
NUM_SHARDS = 4

SMOKE_RULESET_SIZE = 40
SMOKE_FLOWS = 33  # divisible by len(MANGLE_MODES): equal flows per mode
SMOKE_SEGMENTS_PER_FLOW = 4
SMOKE_SEGMENT_BYTES = 256
SMOKE_REPEATS = 3
#: reassemble-then-scan may be at most this many times slower than scanning
#: the clean in-order segments; the in-order fast path of the reassembler
#: sits well under 2x, so 4.0 has headroom for CI noise on both sides.
SMOKE_MAX_RATIO = 4.0


def _event_key(match):
    """Stream matches are flow-absolute, so identical streams must yield
    identical keys regardless of how the wire re-segmented them.  The flow
    key drops the protocol field because ``mangle`` forces ``tcp`` onto
    flows the generator may have drawn as ``udp``."""
    flow = match.flow
    return (
        flow.src_ip,
        flow.dst_ip,
        flow.src_port,
        flow.dst_port,
        match.string_number,
        match.end_offset,
        match.lowered,
    )


def run_smoke(repeats: int = SMOKE_REPEATS) -> Dict:
    """Clean in-order scan vs reassemble-then-scan over mangled wire."""
    ruleset = generate_snort_like_ruleset(SMOKE_RULESET_SIZE, seed=BENCH_SEED)
    program = get_backend("dense").compile(ruleset.patterns)
    generator = TrafficGenerator(ruleset, seed=BENCH_SEED + SMOKE_FLOWS)
    flows = generator.flows(
        SMOKE_FLOWS,
        num_packets=SMOKE_SEGMENTS_PER_FLOW,
        split_patterns=1,
        segment_bytes=SMOKE_SEGMENT_BYTES,
    )
    clean = TrafficGenerator.interleave(flows)
    payload_bytes = sum(len(packet.payload) for packet in clean)

    modes = MANGLE_MODES
    mangled_flows = [
        generator.mangle(flow, mode=modes[index % len(modes)])
        for index, flow in enumerate(flows)
    ]
    wire = TrafficGenerator.interleave(mangled_flows)

    clean_best = float("inf")
    mangled_best = float("inf")
    clean_events = set()
    recovered_events = set()
    evaded_events = set()
    stats = None
    for _ in range(repeats):
        service = ScanService(program, num_shards=NUM_SHARDS)
        start = time.perf_counter()
        result = service.scan(clean)
        clean_best = min(clean_best, time.perf_counter() - start)
        clean_events = {_event_key(match) for match in result.events}

        service = ScanService(program, num_shards=NUM_SHARDS)
        start = time.perf_counter()
        ordered, stats = reassemble_packets(wire)
        result = service.scan(ordered)
        mangled_best = min(mangled_best, time.perf_counter() - start)
        recovered_events = {_event_key(match) for match in result.events}

        # the evasion the subsystem exists to close: the same wire scanned
        # in arrival order loses the matches the mangling tore apart
        service = ScanService(program, num_shards=NUM_SHARDS)
        evaded_events = {_event_key(match) for match in service.scan(wire).events}

    clean_mb = payload_bytes / clean_best / 1e6
    mangled_mb = payload_bytes / mangled_best / 1e6
    ratio = clean_mb / mangled_mb
    return {
        "generated_by": "benchmarks/bench_reassembly.py --smoke",
        "seed": BENCH_SEED,
        "backend": "dense",
        "ruleset_size": SMOKE_RULESET_SIZE,
        "flows": SMOKE_FLOWS,
        "segments_per_flow": SMOKE_SEGMENTS_PER_FLOW,
        "segment_bytes": SMOKE_SEGMENT_BYTES,
        "num_shards": NUM_SHARDS,
        "repeats": repeats,
        "payload_bytes": payload_bytes,
        "mangle_modes": list(modes),
        "wire_segments": stats.segments_in,
        "reordered_segments": stats.reordered,
        "retransmitted_segments": stats.retransmits,
        "clean_events": len(clean_events),
        "recovered_events": len(recovered_events),
        "events_without_reassembly": len(evaded_events),
        "match_set_recovered": recovered_events == clean_events,
        "evasion_demonstrated": len(evaded_events) < len(clean_events),
        "clean_scan_mb_per_s": clean_mb,
        "reassemble_scan_mb_per_s": mangled_mb,
        "reassembly_vs_clean_ratio": ratio,
        "max_ratio": SMOKE_MAX_RATIO,
        "within_threshold": ratio <= SMOKE_MAX_RATIO
        and recovered_events == clean_events,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reassembly regression smoke: clean scan vs "
                             "reassemble-then-scan over mangled wire")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_SMOKE_OUTPUT)
    parser.add_argument("--repeats", type=int, default=SMOKE_REPEATS)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("the full sweep runs under pytest-benchmark; use --smoke here")

    report = run_smoke(repeats=args.repeats)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(
        f"reassembly smoke: clean {report['clean_scan_mb_per_s']:.2f} MB/s, "
        f"reassemble+scan {report['reassemble_scan_mb_per_s']:.2f} MB/s, ratio "
        f"{report['reassembly_vs_clean_ratio']:.2f}x (max {report['max_ratio']}x)"
    )
    print(
        f"detection: {report['recovered_events']}/{report['clean_events']} "
        f"matches recovered from mangled wire "
        f"({report['events_without_reassembly']} without reassembly; "
        f"{report['reordered_segments']} reordered, "
        f"{report['retransmitted_segments']} retransmitted segments)"
    )
    print(f"wrote {args.output}")
    if not report["within_threshold"]:
        print("REGRESSION: reassembly path fell past the normalization threshold",
              file=sys.stderr)
        return 1
    return 0


def test_reassembly_smoke_gate(results_dir):
    """The CI gate's report must be structurally sound and within threshold
    on a quiet machine; full match-set recovery is the subsystem working."""
    report = run_smoke()
    path = results_dir / "BENCH_reassembly_smoke.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    assert report["clean_scan_mb_per_s"] > 0
    assert report["reassemble_scan_mb_per_s"] > 0
    assert report["reordered_segments"] > 0
    assert report["retransmitted_segments"] > 0
    assert report["match_set_recovered"]
    assert report["evasion_demonstrated"]
    assert report["within_threshold"], (
        f"reassemble-then-scan is {report['reassembly_vs_clean_ratio']:.2f}x "
        f"slower than the clean in-order scan (max {report['max_ratio']}x)"
    )


if __name__ == "__main__":
    sys.exit(main())
