"""Session facade overhead: declarative dispatch vs direct composition.

The promise of :mod:`repro.api` is that the facade adds *configuration*,
never cost: a :class:`repro.api.Session` built from a
:class:`~repro.api.PipelineConfig` drives the identical
:class:`repro.streaming.ScanService` a caller would construct by hand.  This
benchmark measures that claim over a sweep of workload sizes: the same
interleaved-flow traffic is scanned through a hand-wired ``ScanService`` and
through ``Session.scan()`` (construction excluded on both sides — the
dispatch path is what the facade could plausibly slow down), and
``BENCH_api.json`` records the per-point overhead plus whether the event
streams matched.

The headline number is ``overhead_at_largest``: the facade must stay within
5 % of direct composition on the largest payload (the gate
``tests``/CI enforce structurally; the JSON carries the measured ratio).
One-time costs — config parsing, lazy compilation — are reported separately
as ``session_setup_seconds`` for context.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_api_overhead.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_api_overhead.py --smoke    # CI smoke

or through pytest (smoke-sized, asserts the artifact structure):

    PYTHONPATH=src python -m pytest benchmarks/bench_api_overhead.py -q
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.api import EngineSpec, PipelineConfig, RulesSpec, Session, SourceSpec
from repro.core import compile_ruleset
from repro.fpga import STRATIX_III
from repro.rulesets import generate_snort_like_ruleset
from repro.streaming import ScanService
from repro.traffic import TrafficGenerator

DEFAULT_OUTPUT = pathlib.Path(__file__).parent / "results" / "BENCH_api.json"

BENCH_SEED = 2010
NUM_SHARDS = 4
OVERHEAD_TARGET = 0.05  # the facade must stay within 5% on the largest payload

FULL_RULESET_SIZE = 200
FULL_FLOW_COUNTS = (64, 256, 1024)
FULL_SEGMENTS_PER_FLOW = 8
FULL_SEGMENT_BYTES = 512

SMOKE_RULESET_SIZE = 40
SMOKE_FLOW_COUNTS = (8,)
SMOKE_SEGMENTS_PER_FLOW = 4
SMOKE_SEGMENT_BYTES = 256


def build_config(ruleset_size: int, flow_count: int, segments: int,
                 segment_bytes: int) -> PipelineConfig:
    return PipelineConfig(
        mode="stream",
        source=SourceSpec(
            kind="generator",
            flows=flow_count,
            packets_per_flow=segments,
            split_patterns=1,
            segment_bytes=segment_bytes,
            seed=BENCH_SEED + flow_count,
        ),
        rules=RulesSpec(kind="synthetic", size=ruleset_size, seed=BENCH_SEED),
        engine=EngineSpec(backend="dtp", shards=NUM_SHARDS),
    )


def bench_point(config: PipelineConfig, ruleset, repeats: int) -> Dict:
    """Best-of-``repeats`` scan seconds for direct vs Session dispatch.

    Both sides scan on a fresh service per repeat (flow tables are stateful)
    and both get their program compiled outside the timed region, so the
    measurement isolates the dispatch path.
    """
    program = compile_ruleset(ruleset, STRATIX_III)
    generator = TrafficGenerator(ruleset, seed=config.source.seed)
    flows = generator.flows(
        config.source.flows,
        num_packets=config.source.packets_per_flow,
        split_patterns=1,
        segment_bytes=config.source.segment_bytes,
    )
    packets = TrafficGenerator.interleave(flows)
    payload_bytes = sum(len(packet.payload) for packet in packets)

    direct_best = float("inf")
    direct_events = None
    for _ in range(repeats):
        service = ScanService(program, num_shards=NUM_SHARDS)
        start = time.perf_counter()
        direct_events = service.scan(packets).events
        direct_best = min(direct_best, time.perf_counter() - start)

    session_best = float("inf")
    setup_seconds = None
    identical = True
    for _ in range(repeats):
        setup_start = time.perf_counter()
        with Session.from_config(config) as session:
            session.packets  # load the source
            session.service  # build the engine
            if setup_seconds is None:
                setup_seconds = time.perf_counter() - setup_start
            start = time.perf_counter()
            events = session.scan().events
            session_best = min(session_best, time.perf_counter() - start)
        identical = identical and events == direct_events

    overhead = session_best / direct_best - 1.0
    return {
        "flows": config.source.flows,
        "packets": len(packets),
        "payload_bytes": payload_bytes,
        "events": len(direct_events),
        "direct": {
            "seconds": direct_best,
            "mb_per_s": payload_bytes / direct_best / 1e6,
        },
        "session": {
            "seconds": session_best,
            "mb_per_s": payload_bytes / session_best / 1e6,
            "setup_seconds": setup_seconds,
        },
        "overhead": overhead,
        "events_identical": identical,
    }


def run_sweep(smoke: bool = False, repeats: Optional[int] = None) -> Dict:
    ruleset_size = SMOKE_RULESET_SIZE if smoke else FULL_RULESET_SIZE
    flow_counts = SMOKE_FLOW_COUNTS if smoke else FULL_FLOW_COUNTS
    segments = SMOKE_SEGMENTS_PER_FLOW if smoke else FULL_SEGMENTS_PER_FLOW
    segment_bytes = SMOKE_SEGMENT_BYTES if smoke else FULL_SEGMENT_BYTES
    repeats = repeats if repeats is not None else 3  # best-of, noise-resistant

    ruleset = generate_snort_like_ruleset(ruleset_size, seed=BENCH_SEED)
    sweeps: List[Dict] = []
    for flow_count in flow_counts:
        config = build_config(ruleset_size, flow_count, segments, segment_bytes)
        sweeps.append(bench_point(config, ruleset, repeats))

    headline = sweeps[-1]["overhead"]
    return {
        "generated_by": "benchmarks/bench_api_overhead.py",
        "mode": "smoke" if smoke else "full",
        "seed": BENCH_SEED,
        "ruleset_size": ruleset_size,
        "num_shards": NUM_SHARDS,
        "segments_per_flow": segments,
        "segment_bytes": segment_bytes,
        "repeats": repeats,
        "sweeps": sweeps,
        "overhead_at_largest": headline,
        "overhead_target": OVERHEAD_TARGET,
        "meets_overhead_target": headline <= OVERHEAD_TARGET,
        "events_identical_everywhere": all(
            point["events_identical"] for point in sweeps
        ),
    }


def format_report(report: Dict) -> str:
    lines = [
        f"session facade overhead sweep ({report['mode']}): "
        f"{report['ruleset_size']} strings, {report['num_shards']} shards"
    ]
    lines.append(
        f"{'payload':>10s} {'direct MB/s':>12s} {'session MB/s':>13s} {'overhead':>9s}"
    )
    for point in report["sweeps"]:
        lines.append(
            f"{point['payload_bytes']:>10d} {point['direct']['mb_per_s']:>12.2f} "
            f"{point['session']['mb_per_s']:>13.2f} {point['overhead']:>8.2%}"
        )
    lines.append(
        f"overhead on largest payload: {report['overhead_at_largest']:.2%} "
        f"(target ≤ {report['overhead_target']:.0%}, "
        + ("met)" if report["meets_overhead_target"] else "MISSED)")
    )
    lines.append(
        "event streams byte-identical: "
        + ("yes" if report["events_identical_everywhere"] else "NO — BUG")
    )
    return "\n".join(lines)


def write_report(report: Dict, output: pathlib.Path) -> pathlib.Path:
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return output


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI smoke runs")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    report = run_sweep(smoke=args.smoke, repeats=args.repeats)
    path = write_report(report, args.output)
    print(format_report(report))
    print(f"wrote {path}")
    return 0


# ----------------------------------------------------------------------
# pytest entry point (smoke-sized so the full benchmark run stays fast)
# ----------------------------------------------------------------------
def test_api_overhead_sweep_smoke(results_dir):
    report = run_sweep(smoke=True)
    path = write_report(report, results_dir / "BENCH_api_smoke.json")
    assert path.exists()
    assert report["events_identical_everywhere"], (
        "Session events must be byte-identical to direct composition"
    )
    for point in report["sweeps"]:
        assert point["direct"]["mb_per_s"] > 0
        assert point["session"]["mb_per_s"] > 0
    assert "overhead_at_largest" in report
    # the overhead itself is timing-noise-sensitive on shared CI boxes; the
    # committed full-mode BENCH_api.json carries the representative number


if __name__ == "__main__":
    sys.exit(main())
