"""E7 — Table III: comparison against the bitmap and path-compressed AC of
Tuck et al. on a ~19,124-character Snort-like workload."""


from repro.analysis import PAPER_TABLE3_REFERENCE, format_table, table3_rows
from repro.fpga import CYCLONE_III, STRATIX_III
from repro.rulesets import reduce_to_character_count

TARGET_CHARACTERS = 19_124


def test_table3_comparison(benchmark, write_result, paper_family):
    workload = reduce_to_character_count(paper_family[6275], TARGET_CHARACTERS, seed=2010)
    assert TARGET_CHARACTERS <= workload.total_characters <= TARGET_CHARACTERS + 150

    rows = benchmark.pedantic(
        lambda: table3_rows(workload, (CYCLONE_III, STRATIX_III)), rounds=1, iterations=1
    )
    text = format_table([row.as_dict() for row in rows], title="Table III — measured")
    text += "\n\n" + format_table(PAPER_TABLE3_REFERENCE, title="Table III — as reported in the paper")
    write_result("table3_comparison.txt", text)

    ours = min(row.memory_bytes for row in rows if "DTP" in row.approach)
    bitmap_ours = next(r.memory_bytes for r in rows if r.approach.startswith("Bitmap AC (reimpl"))
    path_ours = next(
        r.memory_bytes for r in rows if r.approach.startswith("Path-compressed AC (reimpl")
    )
    bitmap_paper = next(
        r.memory_bytes for r in rows if "Bitmap AC (as reported" in r.approach
    )
    path_paper = next(
        r.memory_bytes for r in rows if "Path-compressed AC (as reported" in r.approach
    )

    # Headline of Table III: the DTP structure is the smallest of the three.
    # Against the figures reported by Tuck et al. the paper claims ~20x and
    # ~8x; our reimplementation of their structures is considerably leaner
    # than their reported numbers (no padding/allocator overhead), so the
    # measured factors are smaller, but the ordering and the large advantage
    # over the as-reported figures must hold.  See EXPERIMENTS.md (E7).
    assert ours * 4 < bitmap_ours
    assert ours < path_ours
    assert ours * 15 < bitmap_paper
    assert ours * 6 < path_paper
    assert path_ours < bitmap_ours  # path compression beats plain bitmaps, as in [13]
