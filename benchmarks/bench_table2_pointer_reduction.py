"""E4 — Table II: reduction in transition pointers, memory and throughput.

One benchmark per device half of the table.  Each regenerates the full set of
columns (original Aho-Corasick statistics, default-pointer counts, average
stored pointers after each compression stage, memory footprint and
throughput) and checks the headline claims:

* pointer reduction of at least 96 % on every ruleset size;
* throughput follows the 16 x fmax x (blocks / blocks-per-group) law;
* memory grows roughly linearly in the number of strings (the paper's
  "memory consumption scales very well" observation).
"""

import json

import pytest

from repro.analysis import (
    PAPER_TABLE2_REFERENCE,
    TABLE2_CYCLONE_SIZES,
    TABLE2_STRATIX_SIZES,
    format_table,
    table2_row,
)
from repro.fpga import CYCLONE_III, STRATIX_III


def _build_rows(sizes, device, paper_family, compiled_program, original_dfa):
    rows = []
    for size in sizes:
        row = table2_row(
            paper_family[size],
            device,
            program=compiled_program(size, device),
            original=original_dfa(size),
        )
        rows.append(row)
    return rows


def _render(rows, device):
    dicts = []
    for row in rows:
        data = row.as_dict()
        reference = PAPER_TABLE2_REFERENCE[device.family].get(row.num_strings, {})
        data["paper_blocks"] = reference.get("blocks", "-")
        data["paper_avg_final"] = reference.get("avg_final", "-")
        data["paper_red_%"] = reference.get("reduction_%", "-")
        data["paper_speed"] = reference.get("speed_gbps", "-")
        dicts.append(data)
    return format_table(dicts, title=f"Table II — {device.family} (measured vs paper)")


def _verified_json(rows, device, compiled_program):
    """Table rows plus a per-ruleset ``verified`` flag from the static
    program verifier — each measured program is *proved* faithful to its
    ruleset (DTP exactness, packing round-trips, match-memory
    completeness), so the table cannot quote numbers for a corrupt
    artifact."""
    from repro.check import verify_program

    records = []
    for row in rows:
        report = verify_program(compiled_program(row.num_strings, device))
        data = row.as_dict()
        data["verified"] = report.ok
        data["verify_errors"] = len(report.errors)
        records.append(data)
    return json.dumps(
        {"device": device.family, "rows": records}, indent=2, default=str
    ) + "\n"


def _check_claims(rows, device):
    for row in rows:
        assert row.reduction_percent > 96.0
        assert row.avg_after_d1 < row.original_avg_pointers
        assert row.avg_after_d1_d2 <= row.avg_after_d1
        assert row.avg_after_d1_d2_d3 <= row.avg_after_d1_d2
        groups = device.num_matching_blocks // row.blocks
        expected_gbps = groups * 16 * device.memory_fmax_mhz / 1000.0
        assert row.throughput_gbps == pytest.approx(expected_gbps, rel=0.01)
    # more strings -> more memory, never more throughput
    ordered = sorted(rows, key=lambda r: r.num_strings)
    for smaller, larger in zip(ordered, ordered[1:]):
        assert larger.memory_bytes > smaller.memory_bytes
        assert larger.throughput_gbps <= smaller.throughput_gbps
    # bytes per string decreases as rulesets grow (Section V.C observation)
    per_string = [row.memory_bytes / row.num_strings for row in ordered]
    assert per_string[-1] <= per_string[0] * 1.25


def test_table2_stratix(benchmark, write_result, paper_family, compiled_program, original_dfa):
    rows = benchmark.pedantic(
        _build_rows,
        args=(TABLE2_STRATIX_SIZES, STRATIX_III, paper_family, compiled_program, original_dfa),
        rounds=1,
        iterations=1,
    )
    write_result("table2_stratix3.txt", _render(rows, STRATIX_III))
    report_json = _verified_json(rows, STRATIX_III, compiled_program)
    write_result("table2_stratix3.json", report_json)
    assert all(row["verified"] for row in json.loads(report_json)["rows"])
    _check_claims(rows, STRATIX_III)


def test_table2_cyclone(benchmark, write_result, paper_family, compiled_program, original_dfa):
    rows = benchmark.pedantic(
        _build_rows,
        args=(TABLE2_CYCLONE_SIZES, CYCLONE_III, paper_family, compiled_program, original_dfa),
        rounds=1,
        iterations=1,
    )
    write_result("table2_cyclone3.txt", _render(rows, CYCLONE_III))
    report_json = _verified_json(rows, CYCLONE_III, compiled_program)
    write_result("table2_cyclone3.json", report_json)
    assert all(row["verified"] for row in json.loads(report_json)["rows"])
    _check_claims(rows, CYCLONE_III)
