"""E3 — Table I: FPGA resource utilisation (logic, M9K blocks, fmax)."""

from repro.analysis import PAPER_TABLE1_REFERENCE, format_table, table1_row
from repro.fpga import CYCLONE_III, STRATIX_III, estimate_resources


def test_table1_resource_utilisation(benchmark, write_result):
    def build():
        return {device.family: estimate_resources(device) for device in (CYCLONE_III, STRATIX_III)}

    estimates = benchmark.pedantic(build, rounds=10, iterations=1)

    rows = []
    for device in (CYCLONE_III, STRATIX_III):
        row = table1_row(device).as_dict()
        reference = PAPER_TABLE1_REFERENCE[device.family]
        row["paper_logic"] = f"{int(reference['logic_used']):,}"
        row["paper_m9k"] = int(reference["m9k_used"])
        row["paper_fmax"] = reference["fmax_mhz"]
        rows.append(row)
    text = format_table(rows, title="Table I — resource utilisation (model vs paper)")
    write_result("table1_resources.txt", text)

    # anchors: the M9K counts of the paper are reproduced exactly, the logic
    # estimate is within 2 %, and both configurations fit their device.
    for device in (CYCLONE_III, STRATIX_III):
        estimate = estimates[device.family]
        reference = PAPER_TABLE1_REFERENCE[device.family]
        assert estimate.m9k_blocks == reference["m9k_used"]
        assert abs(estimate.logic_cells - reference["logic_used"]) / reference["logic_used"] < 0.02
        assert estimate.fits()
