"""E8 — architecture claims of Section IV: one byte per engine per cycle,
guaranteed-rate scanning independent of content, and match scheduling.

Runs the cycle-level hardware model on synthetic traffic and checks the
invariants the throughput law is built on.
"""

import pytest

from repro.analysis import format_table
from repro.fpga import STRATIX_III
from repro.hardware import ENGINES_PER_BLOCK, HardwareAccelerator, StringMatchingBlock
from repro.traffic import Packet, TrafficGenerator, TrafficProfile


def test_block_processes_one_byte_per_engine_cycle(benchmark, write_result, paper_family,
                                                   compiled_program):
    program = compiled_program(634, STRATIX_III)
    payload_length = 512
    packets = [
        Packet(payload=bytes((i * 7 + j) % 256 for j in range(payload_length)), packet_id=i)
        for i in range(ENGINES_PER_BLOCK)
    ]

    def scan():
        block = StringMatchingBlock(program.blocks[0])
        return block, block.scan_packets(packets)

    block, result = benchmark.pedantic(scan, rounds=3, iterations=1)

    rows = [{
        "engines": ENGINES_PER_BLOCK,
        "payload_bytes": payload_length,
        "engine_cycles": result.engine_cycles,
        "bytes_processed": result.bytes_processed,
        "bytes_per_engine_cycle": round(result.bytes_per_engine_cycle, 4),
        "state_reads_per_byte": round(
            block.state_memory.total_reads() / result.bytes_processed, 4
        ),
    }]
    write_result("architecture_cycles.txt",
                 format_table(rows, title="Section IV — one byte per engine per cycle"))

    # the guaranteed-rate claim: exactly one byte per engine per cycle,
    # exactly one state-machine read per byte, never more than 3 reads per
    # port per cycle (checked inside the memory model).
    assert result.engine_cycles == payload_length
    assert result.bytes_per_engine_cycle == pytest.approx(1.0)
    assert block.state_memory.total_reads() == result.bytes_processed
    for stats in block.state_memory.port_stats:
        assert stats.max_reads_in_cycle <= 3


def test_worst_case_input_does_not_slow_scanning(benchmark, paper_family, compiled_program):
    """Adversarial payloads (rule-prefix floods) take exactly as many cycles
    as benign payloads of the same length — the property failure-function
    automata cannot give."""
    program = compiled_program(634, STRATIX_III)
    ruleset = paper_family[634]
    length = 600
    prefix_flood = b"".join(p[: len(p) - 1] for p in ruleset.patterns[:80])
    adversarial = (prefix_flood * (length // max(1, len(prefix_flood)) + 1))[:length]
    benign = bytes(range(256)) * 3
    benign = benign[:length]

    def scan(payload):
        block = StringMatchingBlock(program.blocks[0])
        packets = [Packet(payload=payload, packet_id=i) for i in range(ENGINES_PER_BLOCK)]
        return block.scan_packets(packets)

    adversarial_result = scan(adversarial)
    benign_result = benchmark.pedantic(scan, args=(benign,), rounds=3, iterations=1)
    assert adversarial_result.engine_cycles == benign_result.engine_cycles == length


def test_accelerator_detects_all_injected_attacks(benchmark, paper_family, compiled_program,
                                                  write_result):
    program = compiled_program(634, STRATIX_III)
    accelerator = HardwareAccelerator(program)
    generator = TrafficGenerator(
        paper_family[634],
        TrafficProfile(mean_payload_bytes=256, attack_probability=0.5, max_injected=2),
        seed=7,
    )
    packets = generator.packets(36)

    result = benchmark.pedantic(lambda: accelerator.scan(packets), rounds=1, iterations=1)
    alerts = accelerator.alerts_by_sid(result)
    expected = {sid for packet in packets for sid in packet.injected_sids}
    missed = expected - set(alerts)
    write_result(
        "architecture_detection.txt",
        format_table([{
            "packets": len(packets),
            "injected_rules": len(expected),
            "detected_rules": len(expected) - len(missed),
            "match_events": len(result.events),
            "packet_groups": result.packet_groups,
        }], title="Hardware model — attack detection"),
    )
    assert not missed
