"""The unified matcher backend protocol every scan layer is built on.

The paper's central observation (Kennedy et al., DATE 2010) is that one set
of matching *semantics* — report every ``(end_offset, pattern_id)`` occurrence
of every pattern — can be served by radically different state encodings: the
full move-function DFA, bitmap- or path-compressed failure automata, the
DTP-pruned hardware form, or a software shift-table matcher.  This module
gives the repository one vocabulary for all of them:

* :class:`MatcherBackend` — a named compiler: ``compile(patterns)`` returns a
  :class:`CompiledProgram`.
* :class:`CompiledProgram` — the scan contract every compiled matcher
  honours: per-payload ``match``/``scan``/``scan_packets`` plus the resumable
  ``initial_scan_states`` / ``scan_from`` pair the streaming layer needs.
* :class:`ScanState` — the immutable, JSON-checkpointable resume record
  carried across the segments of one flow.
* a registry (:func:`register_backend` / :func:`get_backend`) mapping the CLI
  names ``ac``, ``dense``, ``bitmap``, ``path``, ``wu-manber`` and ``dtp`` to
  their compilers.

Resumability contract
---------------------
Feeding the segments of one byte stream through consecutive ``scan_from``
calls must be exactly equivalent to one ``match`` over the concatenated
stream; reported end offsets are stream-absolute.  A backend's per-flow state
is a tuple of :class:`ScanState` (one per internal scan unit — a single
automaton uses a 1-tuple, a multi-block accelerator program one per block),
which is what the flow table serialises.  ``scan_from`` also accepts a bare
:class:`ScanState` for single-unit programs and then returns a bare
:class:`ScanState`, preserving the original ``DTPAutomaton`` API.

This module deliberately imports nothing from the rest of the package (the
automata and core layers import *it*), so every backend can conform without
circular imports; the built-in registry entries import their implementations
lazily inside the compile call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

MatchList = List[Tuple[int, int]]  # (end_position, pattern_id)

#: State id of the automaton start state in every backend (trie root).
ROOT_STATE = 0


@dataclass(frozen=True)
class ScanState:
    """Resumable matcher state carried across chunks of one byte stream.

    ``state`` is the backend's current automaton state; ``prev1``/``prev2``
    are the previous two input bytes (the DTP lookup-table defaults compare
    their stored preceding characters against that history; other backends
    maintain them anyway so a checkpoint has one shape everywhere);
    ``offset`` counts the bytes already consumed so resumed matches report
    stream-wide end positions.  ``tail`` is an optional carry buffer used by
    window-based backends (Wu-Manber keeps the last ``max_pattern_len - 1``
    bytes there).  Instances are immutable, so checkpointing a flow is just
    keeping a reference.
    """

    state: int = ROOT_STATE
    prev1: Optional[int] = None
    prev2: Optional[int] = None
    offset: int = 0
    tail: Optional[bytes] = None

    def as_tuple(self) -> Tuple:
        """A plain, JSON-serialisable form for flow-table checkpoints.

        Backends that do not use ``tail`` produce the historical 4-tuple, so
        checkpoints written by older versions restore unchanged.
        """
        if self.tail is None:
            return (self.state, self.prev1, self.prev2, self.offset)
        return (self.state, self.prev1, self.prev2, self.offset, self.tail.hex())

    @classmethod
    def from_tuple(cls, values: Sequence) -> "ScanState":
        """Rebuild from :meth:`as_tuple` output (4- or 5-element form).

        Every numeric field is coerced with ``int(...)``: a checkpoint that
        round-tripped through JSON (or was written by hand) may carry
        float-typed values, and an un-coerced float ``prev1``/``prev2`` would
        silently fail the ``==`` history comparisons the default-transition
        lookup performs.
        """
        if len(values) == 4:
            state, prev1, prev2, offset = values
            tail: Optional[bytes] = None
        else:
            state, prev1, prev2, offset, raw_tail = values
            if raw_tail is None:
                tail = None
            elif isinstance(raw_tail, str):
                tail = bytes.fromhex(raw_tail)
            else:
                tail = bytes(raw_tail)
        return cls(
            state=int(state),
            prev1=None if prev1 is None else int(prev1),
            prev2=None if prev2 is None else int(prev2),
            offset=int(offset),
            tail=tail,
        )


#: A flow's complete resumable state: one :class:`ScanState` per scan unit.
FlowState = Tuple[ScanState, ...]


def advance_history(
    prev1: Optional[int], prev2: Optional[int], chunk: bytes
) -> Tuple[Optional[int], Optional[int]]:
    """The two-byte input history after consuming ``chunk``."""
    if len(chunk) >= 2:
        return chunk[-1], chunk[-2]
    if len(chunk) == 1:
        return chunk[-1], prev1
    return prev1, prev2


@runtime_checkable
class CompiledProgram(Protocol):
    """Structural type of a compiled matcher (see the module docstring)."""

    backend_name: str

    @property
    def patterns(self) -> Tuple[bytes, ...]: ...

    def initial_scan_states(self, offset: int = 0) -> FlowState: ...

    def scan_from(
        self, states: Union[ScanState, Sequence[ScanState]], chunk: bytes
    ) -> Tuple[MatchList, Union[ScanState, FlowState]]: ...

    def scan_chunk(
        self, states: FlowState, chunk: bytes
    ) -> Tuple[MatchList, FlowState]: ...

    def match(self, data: bytes) -> MatchList: ...

    def scan(self, data: bytes) -> MatchList: ...

    def scan_packets(self, payloads: Iterable[bytes]) -> List[MatchList]: ...


class CompiledProgramMixin:
    """Default shims tying a backend's ``_scan_chunk`` to the full protocol.

    A conforming class sets ``backend_name``, exposes ``patterns`` and
    implements ``_scan_chunk(states, chunk) -> (matches, states)`` over the
    canonical tuple-of-:class:`ScanState` form; everything else — the bare
    ``ScanState`` convenience of ``scan_from``, ``scan``, ``scan_packets``
    and (unless overridden) ``match`` — is derived here.
    """

    backend_name: str = "unnamed"

    #: Number of internal scan units (per-flow ScanStates); single automaton.
    scan_units: int = 1

    def initial_scan_states(self, offset: int = 0) -> FlowState:
        """Fresh per-unit scan states for one new flow (or resumed stream)."""
        return tuple(ScanState(offset=offset) for _ in range(self.scan_units))

    def _scan_chunk(
        self, states: FlowState, chunk: bytes
    ) -> Tuple[MatchList, FlowState]:
        raise NotImplementedError

    def scan_from(
        self, states: Union[ScanState, Sequence[ScanState]], chunk: bytes
    ) -> Tuple[MatchList, Union[ScanState, FlowState]]:
        """Scan ``chunk`` resuming from ``states``; return matches + new state.

        The canonical form takes and returns a tuple of per-unit states; a
        bare :class:`ScanState` is accepted (and returned) for single-unit
        programs.  Match end offsets are stream-absolute.
        """
        if isinstance(states, ScanState):
            matches, (next_state,) = self._scan_chunk((states,), chunk)
            return matches, next_state
        matches, next_states = self._scan_chunk(tuple(states), chunk)
        return matches, next_states

    def scan_chunk(
        self, states: FlowState, chunk: bytes
    ) -> Tuple[MatchList, FlowState]:
        """The hot-path form of :meth:`scan_from`: canonical tuple in and out.

        Identical semantics, but without the bare-:class:`ScanState`
        dispatch and defensive ``tuple(...)`` coercion — callers that already
        hold the canonical per-flow tuple (the streaming layer does, for
        every segment) must not pay for the convenience shims per call.
        """
        return self._scan_chunk(states, chunk)

    def scan(self, data: bytes) -> MatchList:
        """Scan one payload from a fresh state (alias of :meth:`match`)."""
        matches, _ = self._scan_chunk(self.initial_scan_states(), data)
        return matches

    def match(self, data: bytes) -> MatchList:
        """Scan one payload; state and history reset at the boundary."""
        return self.scan(data)

    def scan_packets(self, payloads: Iterable[bytes]) -> List[MatchList]:
        """Scan several packets; state resets per packet."""
        return [self.match(payload) for payload in payloads]

    def verify(self, patterns: Optional[Sequence[bytes]] = None):
        """Statically verify this compiled program (no traffic scanned).

        Returns a :class:`repro.check.Report`; ``report.ok`` is False if
        the artifact provably deviates from its patterns.  Imported
        lazily — this module sits below :mod:`repro.check` in the layer
        order.
        """
        from .check import verify_program

        return verify_program(self, patterns=patterns)


@dataclass(frozen=True)
class Backend:
    """A named matcher compiler: ``compile(patterns) -> CompiledProgram``."""

    name: str
    description: str
    factory: Callable[[Tuple[bytes, ...]], Any]

    def compile(self, patterns: Sequence[bytes]) -> Any:
        """Compile ``patterns`` (pattern ids follow the input order)."""
        return self.factory(tuple(bytes(p) for p in patterns))


_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Add (or replace) a backend in the global registry."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a backend by its registry/CLI name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {', '.join(backend_names())}"
        ) from None


def backend_names() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def all_backends() -> List[Backend]:
    """Registered backends, sorted by name."""
    return [_REGISTRY[name] for name in backend_names()]


# ----------------------------------------------------------------------
# built-in backends (factories import lazily to avoid circular imports)
# ----------------------------------------------------------------------
def _compile_ac(patterns: Tuple[bytes, ...]):
    from .automata.aho_corasick import AhoCorasickDFA

    return AhoCorasickDFA.from_patterns(patterns)


def _compile_dense(patterns: Tuple[bytes, ...]):
    from .core.compiled import CompiledDenseProgram

    return CompiledDenseProgram.from_patterns(patterns)


def _compile_bitmap(patterns: Tuple[bytes, ...]):
    from .automata.bitmap_ac import BitmapAhoCorasick

    return BitmapAhoCorasick.from_patterns(patterns)


def _compile_path(patterns: Tuple[bytes, ...]):
    from .automata.path_compressed_ac import PathCompressedAhoCorasick

    return PathCompressedAhoCorasick.from_patterns(patterns)


def _compile_wu_manber(patterns: Tuple[bytes, ...]):
    from .automata.wu_manber import WuManber

    return WuManber(patterns)


def _compile_dtp(patterns: Tuple[bytes, ...]):
    from .core.dtp_automaton import DTPAutomaton

    return DTPAutomaton.from_patterns(patterns)


register_backend(Backend("ac", "full move-function Aho-Corasick DFA", _compile_ac))
register_backend(
    Backend("dense", "compiled dense-table fast path (NumPy flattened DFA)", _compile_dense)
)
register_backend(
    Backend("bitmap", "bitmap-compressed Aho-Corasick (Tuck et al.)", _compile_bitmap)
)
register_backend(
    Backend("path", "path-compressed Aho-Corasick (Tuck et al.)", _compile_path)
)
register_backend(Backend("wu-manber", "Wu-Manber shift-table matcher", _compile_wu_manber))
register_backend(
    Backend("dtp", "default-transition-pruned automaton (the paper's design)", _compile_dtp)
)

__all__ = [
    "MatchList",
    "ROOT_STATE",
    "ScanState",
    "FlowState",
    "advance_history",
    "CompiledProgram",
    "CompiledProgramMixin",
    "Backend",
    "register_backend",
    "get_backend",
    "backend_names",
    "all_backends",
]
