"""Live asyncio ingestion: feed the scan services from sources that never end.

Everything upstream of this module replays *finished* artifacts — in-memory
packet lists, generator traffic, capture files.  A deployed DPI node instead
sits on sockets and growing capture files, serving thousands of concurrent
connections.  This module is that front-end:

* :class:`TcpListenerSource` — an ``asyncio`` TCP listener.  Every accepted
  connection becomes one flow (its real peer/local 5-tuple); every
  ``read()`` becomes one flow segment, so cross-segment matches work
  exactly as they do for replayed traffic.
* :class:`UdpListenerSource` — a datagram endpoint; each datagram is one
  segment of its sender's flow (datagram boundaries are preserved, so
  ingestion is deterministic per sender).
* :class:`PcapTailSource` — an incremental classic-pcap reader built on the
  :mod:`repro.capture` record format: it decodes records as they appear and
  (with ``follow=True``) keeps polling the file for appended records,
  ``tail -f`` style.  Frames that cannot be decoded are skipped and counted,
  mirroring :func:`repro.capture.replay.load_packets`.

:class:`LiveIngestor` drives one source into any scan service front-end
(serial or parallel).  It assigns sequential packet ids in arrival order —
the same contract capture replay makes — and micro-batches segments
(``batch_packets`` cap, flushed early when the wire goes idle for
``batch_idle`` seconds) so the parallel service amortises its dispatch over
real batches.  Scans run in a single worker thread off the event loop: the
listener keeps accepting while a batch scans, and one scan at a time keeps
the event stream identical to scanning the batches back-to-back serially.
Because ids are globally monotone in arrival order and each batch's events
come back canonically sorted (packet id first), the concatenated event
stream is *identical* to scanning the same packets in one offline call —
``serve`` on a finished capture file reproduces ``scan-pcap`` byte for
byte.

Termination is explicit: ``max_packets`` (stop after N segments),
``idle_timeout`` (stop once the source goes quiet), or source exhaustion
(a tail reader with ``follow=False`` stops at end of file).  A socket
source with no limits runs until cancelled — that is the serving loop.
"""

from __future__ import annotations

import asyncio
import struct
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..capture.frames import decode_frame
from ..capture.pcap import CaptureError, PCAP_MAGIC_MICRO, PCAP_MAGIC_NANO
from ..traffic.packet import FiveTuple, Packet
from .scanner import StreamMatch

#: ``emit(header, payload, seq=None, flags=None)`` — how a source hands one
#: flow segment to the ingestor.  Synchronous on purpose: sources call it
#: from protocol callbacks and reader loops; the ingestor's unbounded
#: arrival queue does the buffering.  ``seq``/``flags`` carry on-the-wire
#: TCP sequence state when the source has it (the pcap tail reader does;
#: socket listeners deliver kernel-ordered bytes and leave them ``None``).
EmitFn = Callable[..., None]

#: Ingestor wake-up granularity (seconds): how often flush deadlines, source
#: exhaustion and idle timeouts are checked while the wire is quiet.
_TICK_SECONDS = 0.05


class IngestError(RuntimeError):
    """A live source failed in a way that is not a malformed capture."""


@dataclass
class IngestReport:
    """What one :meth:`LiveIngestor.run` served.

    ``events`` is the concatenated canonical event stream (empty when
    ``collect_events`` was off); ``stop_reason`` is ``"max_packets"``,
    ``"idle_timeout"``, ``"source_exhausted"`` or ``"cancelled"``.
    ``source_stats`` are the source's own counters (connections, datagrams,
    skipped frames, ...).
    """

    packets: int = 0
    payload_bytes: int = 0
    batches: int = 0
    matches: int = 0
    events: List[StreamMatch] = field(default_factory=list)
    stop_reason: str = "cancelled"
    elapsed_seconds: float = 0.0
    source_stats: Dict[str, int] = field(default_factory=dict)


# ----------------------------------------------------------------------
# sources
# ----------------------------------------------------------------------
class TcpListenerSource:
    """Accept TCP connections; each connection is a flow, each read a segment.

    ``port=0`` binds an ephemeral port; :attr:`bound_port` holds the real
    one once :meth:`run` has started listening (await :meth:`ready`).
    ``max_segment`` caps a single read — the flow scanner reassembles
    across segments, so the cap only shapes batching, never detection.
    """

    kind = "tcp"

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, max_segment: int = 2048):
        self.host = host
        self.port = port
        self.max_segment = max_segment
        self.bound_port: Optional[int] = None
        self.connections = 0
        self.segments = 0
        self._ready = asyncio.Event()

    async def ready(self) -> None:
        await self._ready.wait()

    def stats(self) -> Dict[str, int]:
        return {"connections": self.connections, "segments": self.segments}

    async def run(self, emit: EmitFn) -> None:
        server = await asyncio.start_server(
            lambda reader, writer: self._serve_client(reader, writer, emit),
            self.host,
            self.port,
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            async with server:
                await server.serve_forever()
        except asyncio.CancelledError:
            raise

    async def _serve_client(self, reader, writer, emit: EmitFn) -> None:
        peer = writer.get_extra_info("peername")
        local = writer.get_extra_info("sockname")
        header = FiveTuple(
            src_ip=str(peer[0]),
            dst_ip=str(local[0]),
            src_port=int(peer[1]),
            dst_port=int(local[1]),
            protocol="tcp",
        )
        self.connections += 1
        try:
            while True:
                data = await reader.read(self.max_segment)
                if not data:
                    break
                self.segments += 1
                emit(header, data)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - client vanished
                pass


class _UdpProtocol(asyncio.DatagramProtocol):
    def __init__(self, source: "UdpListenerSource", emit: EmitFn):
        self.source = source
        self.emit = emit

    def datagram_received(self, data: bytes, addr) -> None:
        source = self.source
        source.datagrams += 1
        header = FiveTuple(
            src_ip=str(addr[0]),
            dst_ip=source.host,
            src_port=int(addr[1]),
            dst_port=source.bound_port or source.port,
            protocol="udp",
        )
        self.emit(header, data)


class UdpListenerSource:
    """Receive datagrams; each sender is a flow, each datagram a segment."""

    kind = "udp"

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port
        self.bound_port: Optional[int] = None
        self.datagrams = 0
        self._ready = asyncio.Event()

    async def ready(self) -> None:
        await self._ready.wait()

    def stats(self) -> Dict[str, int]:
        return {"datagrams": self.datagrams}

    async def run(self, emit: EmitFn) -> None:
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _UdpProtocol(self, emit), local_addr=(self.host, self.port)
        )
        self.bound_port = transport.get_extra_info("sockname")[1]
        self._ready.set()
        try:
            await asyncio.Event().wait()  # datagrams arrive via the protocol
        finally:
            transport.close()


class PcapTailSource:
    """Incrementally decode a classic pcap file, optionally ``tail -f`` style.

    Reads the 24-byte global header, then consumes 16-byte-headed records as
    they become available.  With ``follow=False`` the source is exhausted at
    end of file (a *complete* record boundary — a half-written record means
    a truncated capture and raises); with ``follow=True`` it polls every
    ``poll_interval`` seconds for appended records until cancelled.  Only
    classic pcap is supported — pcapng's variable-length block structure
    does not tail safely — and the error says so.
    """

    kind = "pcap-tail"

    def __init__(
        self,
        path,
        *,
        follow: bool = False,
        poll_interval: float = 0.2,
        strict: bool = False,
    ):
        self.path = path
        self.follow = follow
        self.poll_interval = poll_interval
        self.strict = strict
        self.records = 0
        self.skipped = 0
        self._ready = asyncio.Event()

    async def ready(self) -> None:
        await self._ready.wait()

    def stats(self) -> Dict[str, int]:
        return {"records": self.records, "skipped_frames": self.skipped}

    async def _read_exact(self, handle, count: int, *, at_boundary: bool) -> Optional[bytes]:
        """Read exactly ``count`` bytes, polling for growth in follow mode.

        Returns ``None`` for a clean end of file (only possible when
        ``at_boundary`` — i.e. no partial record has been consumed).
        """
        chunks: List[bytes] = []
        got = 0
        while got < count:
            data = handle.read(count - got)
            if data:
                chunks.append(data)
                got += len(data)
                continue
            if self.follow:
                await asyncio.sleep(self.poll_interval)
                continue
            if got == 0 and at_boundary:
                return None
            raise CaptureError(
                f"truncated capture: short read in pcap record ({self.path})"
            )
        return b"".join(chunks)

    async def run(self, emit: EmitFn) -> None:
        with open(self.path, "rb") as handle:
            header = await self._read_exact(handle, 24, at_boundary=True)
            self._ready.set()
            if header is None:
                if not self.follow:
                    raise CaptureError(f"empty capture file ({self.path})")
                return  # pragma: no cover - follow mode never returns None here
            (magic,) = struct.unpack("<I", header[:4])
            if magic in (PCAP_MAGIC_MICRO, PCAP_MAGIC_NANO):
                endian = "<"
            else:
                (magic_be,) = struct.unpack(">I", header[:4])
                if magic_be in (PCAP_MAGIC_MICRO, PCAP_MAGIC_NANO):
                    endian = ">"
                else:
                    raise CaptureError(
                        f"not a classic pcap file (magic 0x{magic:08X}); "
                        "tail-follow does not support pcapng"
                    )
            _, _, _, _, _, linktype = struct.unpack(endian + "HHiIII", header[4:])
            while True:
                record_header = await self._read_exact(handle, 16, at_boundary=True)
                if record_header is None:
                    return  # exhausted (follow=False)
                _, _, incl_len, _ = struct.unpack(endian + "IIII", record_header)
                data = await self._read_exact(handle, incl_len, at_boundary=False)
                frame, reason = decode_frame(data, linktype)
                if frame is None:
                    if self.strict:
                        raise CaptureError(
                            f"frame {self.records + self.skipped} cannot be "
                            f"decoded ({reason})"
                        )
                    self.skipped += 1
                    continue
                self.records += 1
                emit(
                    frame.header,
                    frame.payload,
                    frame.seq,
                    frame.flags if frame.seq is not None else None,
                )


# ----------------------------------------------------------------------
# the ingestor
# ----------------------------------------------------------------------
class LiveIngestor:
    """Micro-batching bridge from one live source into a scan service.

    ``service`` is any :class:`~repro.streaming.service.ShardedScanServiceBase`
    front-end.  Batches close at ``batch_packets`` segments or after
    ``batch_idle`` quiet seconds, whichever first; ``on_batch(result,
    packets)`` (if given) observes every flushed batch — the hook streaming
    sinks attach to.  Set ``collect_events=False`` on unbounded serving
    loops so the report does not accumulate events forever.

    ``preprocess`` (if given) maps each closed batch's packets to the
    packets actually scanned — the hook the :mod:`repro.proto` reassembler
    plugs into; it may return fewer packets than it was given (data parked
    behind a sequence hole) or more (a flush released buffered segments).
    ``preprocess_flush`` is called once when serving stops and its packets
    are scanned as a final batch, so nothing buffered is lost.  With a
    preprocessor, the report's ``packets``/``payload_bytes`` count what was
    *scanned* (the preprocessor's output); ``max_packets`` still bounds
    arrivals.
    """

    def __init__(
        self,
        service,
        *,
        batch_packets: int = 256,
        batch_idle: float = 0.05,
        max_packets: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        collect_events: bool = True,
        on_batch: Optional[Callable] = None,
        preprocess: Optional[Callable[[List[Packet]], List[Packet]]] = None,
        preprocess_flush: Optional[Callable[[], List[Packet]]] = None,
    ):
        if batch_packets < 1:
            raise ValueError(f"batch_packets must be >= 1, got {batch_packets}")
        self.service = service
        self.batch_packets = batch_packets
        self.batch_idle = batch_idle
        self.max_packets = max_packets
        self.idle_timeout = idle_timeout
        self.collect_events = collect_events
        self.on_batch = on_batch
        self.preprocess = preprocess
        self.preprocess_flush = preprocess_flush

    def serve(self, source) -> IngestReport:
        """Synchronous wrapper: run the ingestion loop to completion."""
        return asyncio.run(self.run(source))

    async def run(self, source) -> IngestReport:
        queue: asyncio.Queue = asyncio.Queue()

        def emit(
            header: Optional[FiveTuple],
            payload: bytes,
            seq: Optional[int] = None,
            flags: Optional[int] = None,
        ) -> None:
            queue.put_nowait((header, payload, seq, flags))

        report = IngestReport()
        started = time.perf_counter()
        source_task = asyncio.create_task(source.run(emit))
        loop = asyncio.get_running_loop()
        # One thread: the event loop keeps accepting while a batch scans,
        # and strictly serial scans keep the event stream canonical.
        executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-ingest-scan"
        )
        batch: List[Packet] = []
        next_id = 0
        last_arrival = time.monotonic()

        async def scan_batch(todo: List[Packet]) -> None:
            result = await loop.run_in_executor(executor, self.service.scan, todo)
            report.batches += 1
            report.packets += len(todo)
            report.payload_bytes += sum(len(packet.payload) for packet in todo)
            report.matches += len(result.events)
            if self.collect_events:
                report.events.extend(result.events)
            if self.on_batch is not None:
                self.on_batch(result, todo)

        async def flush() -> None:
            nonlocal batch
            todo, batch = batch, []
            if self.preprocess is not None:
                todo = self.preprocess(todo)
            if todo:
                await scan_batch(todo)

        try:
            while True:
                if self.max_packets is not None and next_id >= self.max_packets:
                    report.stop_reason = "max_packets"
                    break
                try:
                    header, payload, seq, flags = await asyncio.wait_for(
                        queue.get(), timeout=_TICK_SECONDS
                    )
                except asyncio.TimeoutError:
                    if batch:
                        await flush()  # the wire went idle: close the batch
                        continue
                    if source_task.done() and queue.empty():
                        report.stop_reason = "source_exhausted"
                        # surface a crashed (not merely finished) source
                        if not source_task.cancelled() and source_task.exception():
                            raise source_task.exception()
                        break
                    if (
                        self.idle_timeout is not None
                        and time.monotonic() - last_arrival >= self.idle_timeout
                    ):
                        report.stop_reason = "idle_timeout"
                        break
                    continue
                last_arrival = time.monotonic()
                batch.append(
                    Packet(
                        payload=payload,
                        header=header,
                        packet_id=next_id,
                        tcp_seq=seq,
                        tcp_flags=flags,
                    )
                )
                next_id += 1
                if len(batch) >= self.batch_packets:
                    await flush()
            if batch:
                await flush()
            if self.preprocess_flush is not None:
                tail = self.preprocess_flush()
                if tail:
                    await scan_batch(tail)
        finally:
            source_task.cancel()
            try:
                await source_task
            except (asyncio.CancelledError, Exception):
                pass
            executor.shutdown(wait=True)
        report.elapsed_seconds = time.perf_counter() - started
        report.source_stats = dict(source.stats())
        return report


__all__ = [
    "EmitFn",
    "IngestError",
    "IngestReport",
    "LiveIngestor",
    "PcapTailSource",
    "TcpListenerSource",
    "UdpListenerSource",
]
