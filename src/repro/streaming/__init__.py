"""Streaming flow-scan subsystem: stateful cross-packet matching at scale.

The per-packet scan path (:meth:`repro.core.AcceleratorProgram.match`,
:class:`repro.hardware.HardwareAccelerator`) resets the automaton at every
packet boundary, so a pattern split across consecutive TCP segments of one
flow is silently missed.  This package adds the layer a production line card
puts on top of the matcher:

* :mod:`repro.streaming.flow`    — flow identity, the per-flow resumable
  state record and a bounded LRU :class:`FlowTable` with checkpointing;
* :mod:`repro.streaming.scanner` — a :class:`StreamScanner` that loads/stores
  flow state around each segment scan (one engine multiplexing many flows);
* :mod:`repro.streaming.service` — a hash-sharded :class:`ScanService`
  dispatching batches across a pool of scanners with aggregate reporting;
* :mod:`repro.streaming.executor` — :class:`ParallelScanService`, the same
  front-end with each shard's engine living in its own worker process.
"""

from .executor import ParallelScanService
from .flow import (
    DEFAULT_FLOW_CAPACITY,
    FlowEntry,
    FlowKey,
    FlowTable,
    FlowTableStatistics,
)
from .scanner import ANONYMOUS_FLOW, ScannerStatistics, StreamMatch, StreamScanner
from .service import ScanService, ShardReport, StreamScanResult

__all__ = [
    "ParallelScanService",
    "DEFAULT_FLOW_CAPACITY",
    "FlowEntry",
    "FlowKey",
    "FlowTable",
    "FlowTableStatistics",
    "ANONYMOUS_FLOW",
    "ScannerStatistics",
    "StreamMatch",
    "StreamScanner",
    "ScanService",
    "ShardReport",
    "StreamScanResult",
]
