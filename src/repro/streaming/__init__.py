"""Streaming flow-scan subsystem: stateful cross-packet matching at scale.

The per-packet scan path (:meth:`repro.core.AcceleratorProgram.match`,
:class:`repro.hardware.HardwareAccelerator`) resets the automaton at every
packet boundary, so a pattern split across consecutive TCP segments of one
flow is silently missed.  This package adds the layer a production line card
puts on top of the matcher:

* :mod:`repro.streaming.flow`    — flow identity, the per-flow resumable
  state record and a bounded LRU :class:`FlowTable` with checkpointing;
* :mod:`repro.streaming.scanner` — a :class:`StreamScanner` that loads/stores
  flow state around each segment scan (one engine multiplexing many flows);
* :mod:`repro.streaming.service` — a hash-sharded :class:`ScanService`
  dispatching batches across a pool of scanners with aggregate reporting;
* :mod:`repro.streaming.executor` — :class:`ParallelScanService`, the same
  front-end with each shard's engine living in its own worker process;
* :mod:`repro.streaming.transport` — the zero-copy shared-memory ring that
  carries payload bytes between the executor's dispatcher and its workers;
* :mod:`repro.streaming.ingest`  — the asyncio front-end feeding any scan
  service from live sources (socket listeners, tail-followed captures).
"""

from .executor import ParallelScanService, WorkerCrashedError
from .flow import (
    DEFAULT_FLOW_CAPACITY,
    FlowEntry,
    FlowKey,
    FlowTable,
    FlowTableStatistics,
)
from .ingest import (
    IngestReport,
    LiveIngestor,
    PcapTailSource,
    TcpListenerSource,
    UdpListenerSource,
)
from .scanner import ANONYMOUS_FLOW, ScannerStatistics, StreamMatch, StreamScanner
from .service import ScanService, ShardReport, StreamScanResult
from .transport import ShardRing, TransportError, TransportStats

__all__ = [
    "ParallelScanService",
    "WorkerCrashedError",
    "DEFAULT_FLOW_CAPACITY",
    "FlowEntry",
    "FlowKey",
    "FlowTable",
    "FlowTableStatistics",
    "IngestReport",
    "LiveIngestor",
    "PcapTailSource",
    "TcpListenerSource",
    "UdpListenerSource",
    "ANONYMOUS_FLOW",
    "ScannerStatistics",
    "StreamMatch",
    "StreamScanner",
    "ScanService",
    "ShardReport",
    "StreamScanResult",
    "ShardRing",
    "TransportError",
    "TransportStats",
]
