"""Sharded flow-scan service: many flows multiplexed over an engine pool.

The paper's accelerator exposes independent packet groups that scan distinct
packets concurrently; at system level a line card must therefore decide
*which* engine sees which packet.  The service makes that decision the way
production flow engines do: flows are hash-partitioned over a pool of
scan engines (one :class:`repro.streaming.scanner.StreamScanner` per shard,
each with its own bounded :class:`FlowTable`), so every packet of a flow
always lands on the same shard and the flow's resumable automaton state never
has to move.  Batched dispatch groups an arrival batch by shard while
preserving per-flow arrival order, mirroring the per-packet-group round-robin
of :class:`repro.hardware.HardwareAccelerator` but at flow granularity.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Dict, List, Optional, Sequence, Tuple

from ..backend import CompiledProgram
from ..traffic.packet import Packet
from .flow import DEFAULT_FLOW_CAPACITY, FlowKey, FlowTable
from .scanner import StreamMatch, StreamScanner


@dataclass
class ShardReport:
    """Per-shard slice of a :class:`StreamScanResult`.

    ``packets``/``bytes_scanned``/``matches``/``evicted_flows`` count this
    batch only (summable across reports); ``active_flows`` is a gauge — the
    shard's live flow count when the batch finished.
    """

    shard: int
    packets: int
    bytes_scanned: int
    matches: int
    active_flows: int
    evicted_flows: int


@dataclass
class StreamScanResult:
    """Aggregate outcome of one batched scan across all shards."""

    events: List[StreamMatch]
    packets: int
    bytes_scanned: int
    shards: List[ShardReport] = field(default_factory=list)

    def events_for_flow(self, flow: FlowKey) -> List[StreamMatch]:
        return [event for event in self.events if event.flow == flow]

    def events_by_flow(self) -> Dict[FlowKey, List[StreamMatch]]:
        """All events grouped by flow in one pass (cheaper than repeated
        :meth:`events_for_flow` when iterating over many flows)."""
        grouped: Dict[FlowKey, List[StreamMatch]] = {}
        for event in self.events:
            grouped.setdefault(event.flow, []).append(event)
        return grouped


#: The canonical event sort key as a C-level attribute getter (the aggregate
#: sort is on the hot path; ``attrgetter`` avoids a Python frame per event).
_EVENT_ORDER = attrgetter("packet_id", "end_offset", "string_number")


def event_order(event: StreamMatch) -> Tuple[int, int, int]:
    """The canonical event ordering every service reports in."""
    return _EVENT_ORDER(event)


class ShardedScanServiceBase:
    """Sharding, batching and aggregation shared by every scan service.

    The serial :class:`ScanService` and the process-parallel
    :class:`repro.streaming.executor.ParallelScanService` differ only in
    *where* a shard's engine lives (this process vs a worker process); the
    flow→shard mapping, the batch grouping, the result aggregation and the
    checkpoint envelope live here so the two front-ends cannot drift apart.
    Both are context managers, so callers can hold either in a ``with`` block
    (teardown is a no-op for the serial service).  Either front-end can be
    built declaratively through :class:`repro.api.Session` (the
    ``EngineSpec`` ``workers`` field selects which).
    """

    program: CompiledProgram
    num_shards: int
    #: Worker-process count; ``None`` for in-process (serial) front-ends.
    num_workers: Optional[int] = None

    @staticmethod
    def _validate_num_shards(num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be at least 1, got {num_shards}")

    def shard_for(self, key: FlowKey) -> int:
        """Stable flow -> shard mapping (CRC32 of the canonical 5-tuple)."""
        return zlib.crc32(key.encode()) % self.num_shards

    def _group_by_shard(
        self, packets: Sequence[Packet]
    ) -> Dict[int, List[Tuple[int, FlowKey, Packet]]]:
        """Group ``packets`` by shard, keeping each packet's arrival index.

        Grouping preserves each flow's arrival order (all packets of a flow
        hash to the same shard and the batch is walked front to back), which
        is what keeps cross-segment state consistent.
        """
        batches: Dict[int, List[Tuple[int, FlowKey, Packet]]] = {}
        # Flows repeat within a batch, so the FlowKey construction and CRC32
        # shard hash are memoised on the (hashable) wire header.
        cache: Dict[Optional[object], Tuple[FlowKey, int]] = {}
        for index, packet in enumerate(packets):
            header = packet.header
            cached = cache.get(header)
            if cached is None:
                key = StreamScanner.flow_key(packet)
                cached = (key, self.shard_for(key))
                cache[header] = cached
            key, shard = cached
            batch = batches.get(shard)
            if batch is None:
                batch = batches[shard] = []
            batch.append((index, key, packet))
        return batches

    def _aggregate(
        self,
        num_packets: int,
        events: List[StreamMatch],
        shard_reports: List[ShardReport],
    ) -> StreamScanResult:
        """Sort events into the canonical order and assemble the result.

        ``events`` must arrive in shard order (shard 0's batch front to back,
        then shard 1's, …): the sort is stable, so the pre-sort order decides
        ties and both service front-ends must feed the identical order for
        their reports to be byte-identical.
        """
        events.sort(key=_EVENT_ORDER)
        return StreamScanResult(
            events=events,
            packets=num_packets,
            bytes_scanned=sum(report.bytes_scanned for report in shard_reports),
            shards=shard_reports,
        )

    def _validate_checkpoint(self, data: Dict) -> None:
        if int(data["num_shards"]) != self.num_shards:
            raise ValueError(
                f"checkpoint has {data['num_shards']} shards, service has {self.num_shards}"
            )
        if len(data["shards"]) != self.num_shards:
            raise ValueError(
                f"checkpoint lists {len(data['shards'])} shard tables, "
                f"expected {self.num_shards}"
            )

    def stats(self) -> Dict[str, object]:
        """The service's gauges as one plain dict (shared by both front-ends).

        Counters (``evicted_flows``, ``cross_segment_matches``) are
        lifetime totals; ``active_flows``/``shard_occupancy`` are live
        gauges.  The dict is JSON-serialisable, so it can ride along in run
        artifacts (:meth:`repro.api.Session.stats` embeds it).
        """
        return {
            "num_shards": self.num_shards,
            "num_workers": self.num_workers,
            "active_flows": self.active_flows,
            "evicted_flows": self.evicted_flows,
            "cross_segment_matches": self.cross_segment_matches,
            "shard_occupancy": self.shard_occupancy(),
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the service's resources (no-op for in-process engines)."""

    def __enter__(self) -> "ShardedScanServiceBase":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


class ScanService(ShardedScanServiceBase):
    """Hash-sharded, stateful scanning front-end over one compiled program.

    ``program`` is any :class:`repro.backend.CompiledProgram` — the engines
    reference the same compiled structure (mirroring the replicated packet
    groups on the device) but each shard keeps a private flow table, so
    shards share no mutable state and could run on separate cores or
    processes (:class:`repro.streaming.executor.ParallelScanService` is the
    front-end that actually does).
    """

    def __init__(
        self,
        program: CompiledProgram,
        num_shards: int = 4,
        flow_capacity_per_shard: int = DEFAULT_FLOW_CAPACITY,
        track_nocase: bool = False,
    ):
        self._validate_num_shards(num_shards)
        self.program = program
        self.num_shards = num_shards
        self.engines: List[StreamScanner] = [
            StreamScanner(
                program,
                FlowTable(flow_capacity_per_shard),
                track_nocase=track_nocase,
            )
            for _ in range(num_shards)
        ]

    # ------------------------------------------------------------------
    def submit(self, packet: Packet) -> List[StreamMatch]:
        """Scan a single packet on its flow's shard."""
        key = StreamScanner.flow_key(packet)
        return self.engines[self.shard_for(key)].scan_segment(
            key, packet.payload, packet.packet_id
        )

    def scan(self, packets: Sequence[Packet]) -> StreamScanResult:
        """Batched dispatch: group ``packets`` by shard, scan, aggregate.

        Each shard's batch crosses into the engine once through
        :meth:`StreamScanner.scan_batch` (the hot path that batches same-flow
        segments before entering the backend); events come back per item in
        arrival order, so the pre-sort order fed to :meth:`_aggregate` is
        identical to segment-at-a-time scanning.
        """
        batches = self._group_by_shard(packets)
        events: List[StreamMatch] = []
        shard_reports: List[ShardReport] = []
        for shard, engine in enumerate(self.engines):
            batch = batches.get(shard)
            if not batch:
                shard_reports.append(
                    ShardReport(
                        shard=shard,
                        packets=0,
                        bytes_scanned=0,
                        matches=0,
                        active_flows=engine.active_flows,
                        evicted_flows=0,
                    )
                )
                continue
            before_matches = engine.stats.matches
            before_evicted = engine.flows.stats.evicted
            items = [
                (key, packet.payload, packet.packet_id) for _, key, packet in batch
            ]
            per_item, _ = engine.scan_batch(items)
            batch_bytes = 0
            for item in items:
                batch_bytes += len(item[1])
            for item_events in per_item:
                events.extend(item_events)
            shard_reports.append(
                ShardReport(
                    shard=shard,
                    packets=len(batch),
                    bytes_scanned=batch_bytes,
                    matches=engine.stats.matches - before_matches,
                    active_flows=engine.active_flows,
                    evicted_flows=engine.flows.stats.evicted - before_evicted,
                )
            )
        return self._aggregate(len(packets), events, shard_reports)

    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return sum(engine.active_flows for engine in self.engines)

    @property
    def evicted_flows(self) -> int:
        return sum(engine.flows.stats.evicted for engine in self.engines)

    @property
    def cross_segment_matches(self) -> int:
        return sum(engine.stats.cross_segment_matches for engine in self.engines)

    def shard_occupancy(self) -> List[int]:
        """Live flow count per shard (how even the hash partitioning is)."""
        return [engine.active_flows for engine in self.engines]

    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict:
        """Serialise every shard's flow table to plain data."""
        return {
            "num_shards": self.num_shards,
            "shards": [engine.flows.checkpoint() for engine in self.engines],
        }

    def restore(self, data: Dict) -> None:
        """Restore flow state saved by :meth:`checkpoint` (same sharding).

        Each shard keeps its *configured* flow capacity — a checkpoint from a
        larger table never silently raises this service's memory bound.  The
        checkpoint envelope is shared with the parallel service, so a serial
        checkpoint restores into a parallel service and vice versa.
        """
        self._validate_checkpoint(data)
        for engine, shard_data in zip(self.engines, data["shards"]):
            engine.flows = FlowTable.restore(shard_data, capacity=engine.flows.capacity)
