"""Flow identity and the LRU flow-state table.

Real DPI line cards scan *flows*, not packets: a pattern may straddle the
boundary between consecutive TCP segments, and millions of concurrent flows
must share a handful of engines.  The flow table keeps, per live flow, the
resumable per-block :class:`repro.core.ScanState` registers (automaton state
plus two-byte history) so that scanning can pick up exactly where the flow's
previous segment left off.

Memory is bounded: the table holds at most ``capacity`` flows and evicts the
least recently scanned one when full (an evicted flow that sends more traffic
simply restarts from the root state, the standard trade-off in flow-state
engines).  The whole table can be checkpointed to a plain JSON-serialisable
dict and restored later — per-flow state is tiny (a few integers per block),
which is what makes checkpointing and migration across engines cheap.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..backend import ScanState
from ..traffic.packet import FiveTuple

#: Default maximum number of concurrently tracked flows per table.
DEFAULT_FLOW_CAPACITY = 4096


@dataclass(frozen=True)
class FlowKey:
    """Hashable flow identity derived from the packet 5-tuple.

    Deliberately a separate type from :class:`repro.traffic.FiveTuple`, even
    though the fields coincide today: the header is a *record* of what was on
    the wire, while the flow key is a *policy* about which packets share scan
    state — the place where direction normalisation (client/server flows),
    VLAN/tunnel identifiers or IPv6 scoping would land without touching the
    packet model.
    """

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: str

    @classmethod
    def coerced(cls, src_ip, dst_ip, src_port, dst_port, protocol) -> "FlowKey":
        """Build a key with canonical field types.

        Flow identity is *typed*: ``encode()`` stringifies every field, so a
        port that arrives as the float ``80.0`` (a JSON checkpoint round-trip,
        a hand-written fixture) would hash and compare as ``"80.0"`` — a
        different shard and a different table slot than the live ``80``.
        Every constructor that ingests external data funnels through here.
        """
        return cls(
            src_ip=str(src_ip),
            dst_ip=str(dst_ip),
            src_port=int(src_port),
            dst_port=int(dst_port),
            protocol=str(protocol),
        )

    @classmethod
    def from_header(cls, header: FiveTuple) -> "FlowKey":
        return cls.coerced(
            header.src_ip,
            header.dst_ip,
            header.src_port,
            header.dst_port,
            header.protocol,
        )

    def as_tuple(self) -> Tuple[str, str, int, int, str]:
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol)

    def encode(self) -> bytes:
        """Stable byte encoding used for shard hashing and checkpoints."""
        return "|".join(str(part) for part in self.as_tuple()).encode()


class FlowEntry:
    """Everything remembered about one live flow between segments.

    ``states`` holds one :class:`ScanState` per block of the compiled
    program; ``lower_states`` is the parallel state over the lower-cased view
    of the stream (allocated only when case-insensitive patterns exist).
    ``matched`` / ``matched_lower`` accumulate the global string numbers seen
    so far and ``alerted`` the rule sids already reported, so multi-content
    rules can complete across segments without duplicate alerts.

    A ``__slots__`` record rather than a dataclass: one is created per live
    flow and its fields are reassigned on every scanned segment, so the
    streaming hot loop benefits from ``__dict__``-free attribute access.
    """

    __slots__ = (
        "key",
        "states",
        "lower_states",
        "packets",
        "matched",
        "matched_lower",
        "alerted",
    )

    def __init__(
        self,
        key: FlowKey,
        states: Tuple[ScanState, ...],
        lower_states: Optional[Tuple[ScanState, ...]] = None,
        packets: int = 0,
        matched: Optional[Set[int]] = None,
        matched_lower: Optional[Set[int]] = None,
        alerted: Optional[Set[int]] = None,
    ):
        self.key = key
        self.states = states
        self.lower_states = lower_states
        self.packets = packets
        self.matched = set() if matched is None else matched
        self.matched_lower = set() if matched_lower is None else matched_lower
        self.alerted = set() if alerted is None else alerted

    def __repr__(self) -> str:
        return (
            f"FlowEntry(key={self.key!r}, states={self.states!r}, "
            f"lower_states={self.lower_states!r}, packets={self.packets!r}, "
            f"matched={self.matched!r}, matched_lower={self.matched_lower!r}, "
            f"alerted={self.alerted!r})"
        )

    @property
    def bytes_scanned(self) -> int:
        return self.states[0].offset if self.states else 0

    def as_dict(self) -> Dict:
        """JSON-serialisable checkpoint of this flow."""
        return {
            "key": list(self.key.as_tuple()),
            "states": [state.as_tuple() for state in self.states],
            "lower_states": (
                None
                if self.lower_states is None
                else [state.as_tuple() for state in self.lower_states]
            ),
            "packets": self.packets,
            "matched": sorted(self.matched),
            "matched_lower": sorted(self.matched_lower),
            "alerted": sorted(self.alerted),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FlowEntry":
        return cls(
            key=FlowKey.coerced(*data["key"]),
            states=tuple(ScanState.from_tuple(values) for values in data["states"]),
            lower_states=(
                None
                if data.get("lower_states") is None
                else tuple(
                    ScanState.from_tuple(values) for values in data["lower_states"]
                )
            ),
            packets=int(data.get("packets", 0)),
            matched=set(data.get("matched", ())),
            matched_lower=set(data.get("matched_lower", ())),
            alerted=set(data.get("alerted", ())),
        )


@dataclass
class FlowTableStatistics:
    lookups: int = 0
    hits: int = 0
    created: int = 0
    evicted: int = 0
    #: flows present in a checkpoint but dropped at restore time because they
    #: exceeded the restoring table's capacity (not LRU evictions — the flows
    #: were never live in this table).
    restore_dropped: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class FlowTable:
    """Bounded LRU table of :class:`FlowEntry` keyed by :class:`FlowKey`."""

    def __init__(
        self,
        capacity: int = DEFAULT_FLOW_CAPACITY,
        on_evict: Optional[Callable[[FlowEntry], None]] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self.on_evict = on_evict
        self.stats = FlowTableStatistics()
        self._entries: "OrderedDict[FlowKey, FlowEntry]" = OrderedDict()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: FlowKey) -> bool:
        return key in self._entries

    def keys(self) -> List[FlowKey]:
        """Flow keys, least recently used first."""
        return list(self._entries)

    def peek(self, key: FlowKey) -> Optional[FlowEntry]:
        """Like :meth:`lookup` but touching neither recency nor statistics."""
        return self._entries.get(key)

    def lookup(self, key: FlowKey) -> Optional[FlowEntry]:
        """Return the entry for ``key`` (refreshing its recency) or ``None``."""
        self.stats.lookups += 1
        entry = self._entries.get(key)
        if entry is None:
            return None
        self.stats.hits += 1
        self._entries.move_to_end(key)
        return entry

    def touch(self, key: FlowKey) -> None:
        """Refresh ``key``'s recency without counting a lookup.

        The batched fast path walks flows in grouped order and then replays
        the per-segment recency sequence through here, so eviction order
        stays identical to segment-at-a-time scanning.
        """
        if key in self._entries:
            self._entries.move_to_end(key)

    def get_or_create(
        self, key: FlowKey, factory: Callable[[FlowKey], FlowEntry]
    ) -> FlowEntry:
        """Fetch the live entry for ``key``, creating (and possibly evicting)."""
        entry = self.lookup(key)
        if entry is not None:
            return entry
        entry = factory(key)
        self.insert(entry)
        return entry

    def insert(self, entry: FlowEntry) -> None:
        if entry.key not in self._entries:
            self.stats.created += 1
        self._entries[entry.key] = entry
        self._entries.move_to_end(entry.key)
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            self.stats.evicted += 1
            if self.on_evict is not None:
                self.on_evict(evicted)

    def remove(self, key: FlowKey) -> Optional[FlowEntry]:
        """Drop a flow (e.g. on TCP FIN/RST); not counted as an eviction."""
        return self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict:
        """Serialise the whole table (LRU order preserved) to plain data."""
        return {
            "capacity": self.capacity,
            "flows": [entry.as_dict() for entry in self._entries.values()],
        }

    @classmethod
    def restore(
        cls,
        data: Dict,
        capacity: Optional[int] = None,
        on_evict: Optional[Callable[[FlowEntry], None]] = None,
    ) -> "FlowTable":
        """Rebuild a table from :meth:`checkpoint` data.

        ``capacity`` overrides the checkpointed capacity (e.g. restoring into
        a service configured with a different memory bound); when the
        checkpoint holds more flows than fit, the least recently used ones
        are dropped — each counted in ``stats.restore_dropped`` and handed to
        ``on_evict`` so no flow vanishes silently.  Restored flows count as
        ``stats.created``; ``stats.evicted`` stays 0 because dropped flows
        were never live in this table.
        """
        table = cls(
            capacity=int(data["capacity"]) if capacity is None else capacity,
            on_evict=on_evict,
        )
        flows = data["flows"]
        overflow = max(0, len(flows) - table.capacity)
        for flow in flows[:overflow]:  # the LRU head that does not fit
            table.stats.restore_dropped += 1
            if on_evict is not None:
                on_evict(FlowEntry.from_dict(flow))
        for flow in flows[overflow:]:  # keep the MRU tail
            entry = FlowEntry.from_dict(flow)
            table._entries[entry.key] = entry
        table.stats.created = len(table._entries)
        return table
