"""Process-parallel shard executor: the scan service across real cores.

The paper's 44.2 Gbps comes from *parallel* string-matching engines scanning
distinct packets concurrently; the serial :class:`repro.streaming.ScanService`
models the partitioning (shards share no mutable state) but still walks its
shards in one Python loop, so adding shards adds bookkeeping, not throughput.
This module makes the module docstring's promise — shards "could run on
separate cores or processes" — literally true:

* :func:`_shard_worker` is the worker-process main loop.  Each worker owns
  the :class:`~repro.streaming.scanner.StreamScanner` + bounded
  :class:`~repro.streaming.flow.FlowTable` of its assigned shards
  *exclusively*; no flow state is ever shared or migrated, which is exactly
  the isolation the serial service already guarantees per shard.
* :class:`ParallelScanService` mirrors the :class:`ScanService` API —
  ``scan`` / ``submit`` / ``checkpoint`` / ``restore`` / ``shard_occupancy``
  and the same :class:`StreamScanResult` / :class:`ShardReport` aggregates —
  but dispatches each shard's batch to a persistent worker pool over pickled
  ``(FlowKey, payload, packet_id)`` tuples.

Determinism: workers return each shard's events in batch order and the
parent concatenates them in shard order before the canonical stable sort —
the identical pre-sort order the serial service produces — so the event
stream is byte-identical to :class:`ScanService` in every configuration.
Checkpoints use the same envelope as the serial service, so a serial
checkpoint restores into a parallel service and vice versa.

The pool is a context manager (``with ParallelScanService(...) as service:``)
and shuts its workers down gracefully on ``close()``; worker processes are
daemonic as a safety net against leaked services.  Declaratively, an
``EngineSpec(workers=N)`` in a :class:`repro.api.PipelineConfig` makes
:class:`repro.api.Session` build this front-end instead of the serial one —
with, by contract, byte-identical output.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from ..backend import CompiledProgram
from ..traffic.packet import Packet
from .flow import DEFAULT_FLOW_CAPACITY, FlowKey, FlowTable
from .scanner import BatchItem, Eviction, StreamMatch, StreamScanner
from .service import ShardedScanServiceBase, ShardReport, StreamScanResult

#: One batch item on the wire: ``(FlowKey, payload, packet_id)`` — the same
#: shape :meth:`StreamScanner.scan_batch` consumes, so worker batches go
#: straight from the pipe into the engine.
WireItem = BatchItem


def _pick_context(start_method: Optional[str]) -> multiprocessing.context.BaseContext:
    """``fork`` when the platform has it (cheap startup, nothing re-imported);
    the compiled program is picklable, so ``spawn``/``forkserver`` work too."""
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _shard_worker(
    conn,
    program: CompiledProgram,
    shard_ids: Sequence[int],
    flow_capacity: int,
    track_nocase: bool,
) -> None:
    """Worker-process main loop: exclusive owner of ``shard_ids``' engines.

    Speaks a tagged request/response protocol over ``conn``; every request
    gets exactly one ``("ok", value)`` or ``("error", traceback)`` reply, so
    the parent can fan a command out to all workers and collect the replies
    without ever blocking on an out-of-sync pipe.
    """
    engines: Dict[int, StreamScanner] = {
        shard: StreamScanner(
            program, FlowTable(flow_capacity), track_nocase=track_nocase
        )
        for shard in shard_ids
    }

    def handle_scan(batches: Dict[int, List[WireItem]]) -> Dict[int, Dict]:
        out: Dict[int, Dict] = {}
        for shard, batch in batches.items():
            engine = engines[shard]
            before_matches = engine.stats.matches
            before_evicted = engine.flows.stats.evicted
            # The engine's batched hot path: same-flow segments are scanned
            # as one backend crossing whenever the batch cannot evict, and
            # the eviction records come back (item_index, key) — the exact
            # shape the parent's scan_annotated re-indexes to arrival order.
            per_item, evictions = engine.scan_batch(batch)
            batch_bytes = 0
            for item in batch:
                batch_bytes += len(item[1])
            out[shard] = {
                "events": per_item,
                "report": (
                    len(batch),
                    batch_bytes,
                    engine.stats.matches - before_matches,
                    engine.active_flows,
                    engine.flows.stats.evicted - before_evicted,
                ),
                "evictions": evictions,
            }
        return out

    def handle_restore(tables: Dict[int, Dict]) -> None:
        for shard, table_data in tables.items():
            engine = engines[shard]
            engine.flows = FlowTable.restore(
                table_data, capacity=engine.flows.capacity
            )

    def handle_stats(_payload) -> Dict[int, Dict[str, int]]:
        return {
            shard: {
                "active_flows": engine.active_flows,
                "evicted_flows": engine.flows.stats.evicted,
                "cross_segment_matches": engine.stats.cross_segment_matches,
                "restore_dropped": engine.flows.stats.restore_dropped,
            }
            for shard, engine in engines.items()
        }

    handlers = {
        "scan": handle_scan,
        "checkpoint": lambda _payload: {
            shard: engine.flows.checkpoint() for shard, engine in engines.items()
        },
        "restore": handle_restore,
        "stats": handle_stats,
    }

    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        if command == "stop":
            conn.send(("ok", None))
            conn.close()
            return
        try:
            handler = handlers[command]
        except KeyError:
            conn.send(("error", f"unknown command {command!r}"))
            continue
        try:
            conn.send(("ok", handler(payload)))
        except Exception:
            conn.send(("error", traceback.format_exc()))


class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    def __init__(self, index: int, process, conn, shards: List[int]):
        self.index = index
        self.process = process
        self.conn = conn
        self.shards = shards


class ParallelScanService(ShardedScanServiceBase):
    """Process-parallel drop-in for :class:`repro.streaming.ScanService`.

    ``num_shards`` keeps its meaning (the flow hash space — checkpoints are
    exchangeable between serial and parallel services with equal
    ``num_shards``); ``workers`` says how many OS processes the shards are
    spread over (shard *s* lives in worker ``s % workers``).  ``workers``
    defaults to one per shard, bounded by the machine's CPU count.

    The event stream, the per-shard reports and the checkpoint format are
    byte-identical to the serial service on the same traffic; what changes
    is only that shard batches scan concurrently on real cores.
    """

    def __init__(
        self,
        program: CompiledProgram,
        num_shards: int = 4,
        flow_capacity_per_shard: int = DEFAULT_FLOW_CAPACITY,
        track_nocase: bool = False,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        self._validate_num_shards(num_shards)
        if workers is None:
            workers = max(1, min(num_shards, os.cpu_count() or 1))
        if not 1 <= workers <= num_shards:
            raise ValueError(
                f"workers must be between 1 and num_shards={num_shards}, got {workers}"
            )
        self.program = program
        self.num_shards = num_shards
        self.num_workers = workers
        context = _pick_context(start_method)
        self._workers: List[_WorkerHandle] = []
        self._worker_of_shard: Dict[int, _WorkerHandle] = {}
        try:
            for index in range(workers):
                shards = list(range(index, num_shards, workers))
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_shard_worker,
                    args=(
                        child_conn,
                        program,
                        shards,
                        flow_capacity_per_shard,
                        track_nocase,
                    ),
                    daemon=True,
                    name=f"repro-shard-worker-{index}",
                )
                process.start()
                child_conn.close()  # the parent keeps only its end
                handle = _WorkerHandle(index, process, parent_conn, shards)
                self._workers.append(handle)
                for shard in shards:
                    self._worker_of_shard[shard] = handle
        except Exception:
            self.close()
            raise
        self._closed = False

    # ------------------------------------------------------------------
    # worker pool plumbing
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if getattr(self, "_closed", True):
            raise RuntimeError("ParallelScanService is closed")

    def _exchange(self, handles: List[_WorkerHandle], requests: List[Tuple]) -> List:
        """Send one request to each handle, then collect every reply.

        Sends complete before any receive, so the workers run their commands
        concurrently — this is the fan-out the whole module exists for.
        """
        for handle, request in zip(handles, requests):
            handle.conn.send(request)
        replies = []
        failures = []
        for handle in handles:  # drain EVERY reply before raising, so one
            try:  # failure cannot leave later replies queued and desync the
                status, value = handle.conn.recv()  # request/reply pipes
            except EOFError:
                failures.append(f"shard worker {handle.index} exited unexpectedly")
                continue
            if status != "ok":
                failures.append(f"shard worker {handle.index} failed:\n{value}")
                continue
            replies.append(value)
        if failures:
            raise RuntimeError("; ".join(failures))
        return replies

    def _request_all(self, command: str, payloads: Optional[List] = None) -> List:
        self._ensure_open()
        if payloads is None:
            payloads = [None] * len(self._workers)
        return self._exchange(
            self._workers,
            [(command, payload) for payload in payloads],
        )

    def close(self) -> None:
        """Shut the worker pool down gracefully (idempotent)."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        for handle in getattr(self, "_workers", []):
            try:
                handle.conn.send(("stop", None))
                handle.conn.recv()  # the worker acks before exiting
            except (OSError, EOFError, BrokenPipeError):
                pass
            handle.process.join(timeout=5)
            if handle.process.is_alive():  # pragma: no cover - defensive
                handle.process.terminate()
                handle.process.join(timeout=5)
            handle.conn.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # the ScanService API
    # ------------------------------------------------------------------
    def submit(self, packet: Packet) -> List[StreamMatch]:
        """Scan a single packet on its flow's shard (one worker round-trip)."""
        self._ensure_open()
        key = StreamScanner.flow_key(packet)
        shard = self.shard_for(key)
        handle = self._worker_of_shard[shard]
        (reply,) = self._exchange(
            [handle],
            [("scan", {shard: [(key, packet.payload, packet.packet_id)]})],
        )
        return reply[shard]["events"][0]

    def scan(self, packets: Sequence[Packet]) -> StreamScanResult:
        """Batched dispatch: group by shard, scan shards concurrently."""
        result, _, _ = self.scan_annotated(packets)
        return result

    def scan_annotated(
        self, packets: Sequence[Packet]
    ) -> Tuple[StreamScanResult, List[List[StreamMatch]], List[Eviction]]:
        """:meth:`scan` plus per-packet events and LRU-eviction records.

        Returns ``(result, per_packet_events, evictions)``: the aggregate
        result, the events of each input packet in arrival order (what
        serial :meth:`StreamScanner.scan_packet` would have returned for
        it), and ``(arrival_index, key)`` for every flow LRU-evicted while
        the packet at ``arrival_index`` was being scanned.  The stateful IDS
        pipeline correlates alerts from these without touching worker-owned
        flow tables.
        """
        self._ensure_open()
        batches = self._group_by_shard(packets)
        positions = {
            shard: [index for index, _, _ in batch]
            for shard, batch in batches.items()
        }
        payloads = []
        for handle in self._workers:
            payloads.append(
                {
                    shard: [
                        (key, packet.payload, packet.packet_id)
                        for _, key, packet in batches.get(shard, [])
                    ]
                    for shard in handle.shards
                }
            )
        replies = self._request_all("scan", payloads)

        shard_results: Dict[int, Dict] = {}
        for reply in replies:
            shard_results.update(reply)

        events: List[StreamMatch] = []
        shard_reports: List[ShardReport] = []
        per_packet: List[List[StreamMatch]] = [[] for _ in packets]
        evictions: List[Eviction] = []
        for shard in range(self.num_shards):
            shard_result = shard_results[shard]
            packets_scanned, batch_bytes, matches, active, evicted = shard_result[
                "report"
            ]
            shard_reports.append(
                ShardReport(
                    shard=shard,
                    packets=packets_scanned,
                    bytes_scanned=batch_bytes,
                    matches=matches,
                    active_flows=active,
                    evicted_flows=evicted,
                )
            )
            indexes = positions.get(shard, [])
            for index, item_events in zip(indexes, shard_result["events"]):
                per_packet[index] = item_events
                events.extend(item_events)  # shard order == serial pre-sort order
            for local_index, key in shard_result["evictions"]:
                evictions.append((indexes[local_index], key))
        evictions.sort(key=lambda record: record[0])
        return self._aggregate(len(packets), events, shard_reports), per_packet, evictions

    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return sum(stats["active_flows"] for stats in self._shard_stats().values())

    @property
    def evicted_flows(self) -> int:
        return sum(stats["evicted_flows"] for stats in self._shard_stats().values())

    @property
    def cross_segment_matches(self) -> int:
        return sum(
            stats["cross_segment_matches"] for stats in self._shard_stats().values()
        )

    def shard_occupancy(self) -> List[int]:
        """Live flow count per shard (how even the hash partitioning is)."""
        stats = self._shard_stats()
        return [stats[shard]["active_flows"] for shard in range(self.num_shards)]

    def _shard_stats(self) -> Dict[int, Dict[str, int]]:
        merged: Dict[int, Dict[str, int]] = {}
        for reply in self._request_all("stats"):
            merged.update(reply)
        return merged

    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict:
        """Collect every worker's shard tables into the serial envelope."""
        merged: Dict[int, Dict] = {}
        for reply in self._request_all("checkpoint"):
            merged.update(reply)
        return {
            "num_shards": self.num_shards,
            "shards": [merged[shard] for shard in range(self.num_shards)],
        }

    def restore(self, data: Dict) -> None:
        """Fan a (serial or parallel) checkpoint out to the worker pool.

        Same semantics as the serial service: each shard keeps its
        *configured* flow capacity, over-capacity flows are dropped LRU-first
        (counted per shard in ``restore_dropped``).
        """
        self._validate_checkpoint(data)
        payloads = [
            {shard: data["shards"][shard] for shard in handle.shards}
            for handle in self._workers
        ]
        self._request_all("restore", payloads)


__all__ = ["ParallelScanService"]
