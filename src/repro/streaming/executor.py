"""Process-parallel shard executor: the scan service across real cores.

The paper's 44.2 Gbps comes from *parallel* string-matching engines scanning
distinct packets concurrently; the serial :class:`repro.streaming.ScanService`
models the partitioning (shards share no mutable state) but still walks its
shards in one Python loop, so adding shards adds bookkeeping, not throughput.
This module makes the module docstring's promise — shards "could run on
separate cores or processes" — literally true:

* :func:`_shard_worker` is the worker-process main loop.  Each worker owns
  the :class:`~repro.streaming.scanner.StreamScanner` + bounded
  :class:`~repro.streaming.flow.FlowTable` of its assigned shards
  *exclusively*; no flow state is ever shared or migrated, which is exactly
  the isolation the serial service already guarantees per shard.
* :class:`ParallelScanService` mirrors the :class:`ScanService` API —
  ``scan`` / ``submit`` / ``checkpoint`` / ``restore`` / ``shard_occupancy``
  and the same :class:`StreamScanResult` / :class:`ShardReport` aggregates.

Two planes carry the traffic (see :mod:`repro.streaming.transport`):

* **Data plane** — one :class:`~repro.streaming.transport.ShardRing` of
  shared memory per worker carries the raw payload bytes.  The dispatcher
  copies each segment into a ring slot; the worker scans it through a
  ``memoryview`` of the same mapping.  No payload is pickled in either
  direction: flow keys are interned to small integer ids (each
  :class:`FlowKey` crosses the pipe exactly once per worker) and only
  compact ``(end_offset, string_number, lowered)`` match tuples come back,
  inflated to :class:`StreamMatch` records by the dispatcher.  Payloads
  larger than a ring slot spill — pickled — over the control pipe; a full
  ring closes the current chunk and the dispatcher waits for the worker to
  drain it (explicit backpressure, counted in ``TransportStats``).
* **Control plane** — the original pipe still carries the scan *metadata*
  (shard/flow-id/packet-id per item) and every stateful command:
  checkpoint, restore, stats, stop.

Determinism: items are dispatched shard-major per worker, chunk boundaries
only ever split a shard's batch into consecutive ``scan_batch`` calls (the
scanner's batched hot path is split-invariant), and the parent concatenates
each shard's events in shard order before the canonical stable sort — the
identical pre-sort order the serial service produces — so the event stream
is byte-identical to :class:`ScanService` in every configuration.
Checkpoints use the same envelope as the serial service, so a serial
checkpoint restores into a parallel service and vice versa.

Every reply wait polls with a timeout and checks worker liveness, so a
crashed worker raises :exc:`WorkerCrashedError` naming the worker and its
shards instead of blocking the dispatcher forever.

The pool is a context manager (``with ParallelScanService(...) as service:``)
and shuts its workers down gracefully on ``close()``; worker processes are
daemonic as a safety net against leaked services.  Declaratively, an
``EngineSpec(workers=N)`` in a :class:`repro.api.PipelineConfig` makes
:class:`repro.api.Session` build this front-end instead of the serial one —
with, by contract, byte-identical output.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from multiprocessing import connection
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..backend import CompiledProgram
from ..traffic.packet import Packet
from .flow import DEFAULT_FLOW_CAPACITY, FlowKey, FlowTable
from .scanner import BatchItem, Eviction, StreamMatch, StreamScanner
from .service import ShardedScanServiceBase, ShardReport, StreamScanResult
from .transport import (
    DEFAULT_RING_SLOTS,
    DEFAULT_RING_SLOT_BYTES,
    ShardRing,
    TransportError,
    TransportStats,
)

#: One batch item on the wire: ``(FlowKey, payload, packet_id)`` — the same
#: shape :meth:`StreamScanner.scan_batch` consumes.  Since the ring
#: transport this shape only ever crosses a process boundary for engines,
#: not for dispatch; it remains the worker-side batch item.
WireItem = BatchItem

#: How often reply waits wake up to check worker liveness (seconds).
_POLL_SECONDS = 0.1


class WorkerCrashedError(RuntimeError):
    """A shard worker process died while a request was in flight."""


def _pick_context(start_method: Optional[str]) -> multiprocessing.context.BaseContext:
    """``fork`` when the platform has it (cheap startup, nothing re-imported);
    the compiled program is picklable, so ``spawn``/``forkserver`` work too."""
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _shard_worker(
    conn,
    ring_name: str,
    ring_slots: int,
    ring_slot_bytes: int,
    program: CompiledProgram,
    shard_ids: Sequence[int],
    flow_capacity: int,
    track_nocase: bool,
) -> None:
    """Worker-process main loop: exclusive owner of ``shard_ids``' engines.

    Speaks a tagged request/response protocol over ``conn``; every request
    gets exactly one ``("ok", value)`` or ``("error", traceback)`` reply, so
    the parent can fan a command out to all workers and collect the replies
    without ever blocking on an out-of-sync pipe.  Payload bytes arrive
    through the shared-memory ring, not the pipe (see the module
    docstring); ``"scan"`` metadata names each item's slot implicitly by
    ring order.
    """
    ring = ShardRing(ring_slots, ring_slot_bytes, name=ring_name)
    engines: Dict[int, StreamScanner] = {
        shard: StreamScanner(
            program, FlowTable(flow_capacity), track_nocase=track_nocase
        )
        for shard in shard_ids
    }
    #: interned flow ids — each FlowKey is pickled to this worker only once.
    keys: Dict[int, FlowKey] = {}

    def resolve(items, views):
        """Materialise chunk items into ``(shard, key, payload, packet_id)``.

        Ring-borne payloads come back as memoryviews into shared memory
        (appended to ``views`` so the caller can release them); spilled
        payloads arrived as bytes in the metadata itself.
        """
        resolved = []
        for shard, flow_id, packet_id, spill in items:
            if spill is None:
                slot_flow_id, view = ring.read()
                if slot_flow_id != flow_id:
                    raise TransportError(
                        f"ring slot flow id {slot_flow_id} does not match "
                        f"scan metadata flow id {flow_id}"
                    )
                views.append(view)
                # memoryview has no .lower(); the case-tracking scan path
                # needs real bytes.  The default path stays zero-copy.
                data = bytes(view) if track_nocase else view
            else:
                data = spill
            resolved.append((shard, keys[flow_id], data, packet_id))
        return resolved

    def handle_scan(payload) -> Dict:
        keys.update(payload["new_keys"])
        views: List[memoryview] = []
        try:
            resolved = resolve(payload["items"], views)
            events_out: List[List[Tuple[int, int, bool]]] = []
            reports: Dict[int, Tuple[int, int]] = {}
            evictions_out: List[Tuple[int, FlowKey]] = []
            index = 0
            while index < len(resolved):
                shard = resolved[index][0]
                end = index
                while end < len(resolved) and resolved[end][0] == shard:
                    end += 1
                engine = engines[shard]
                before_matches = engine.stats.matches
                before_evicted = engine.flows.stats.evicted
                # The engine's batched hot path: same-flow segments are
                # scanned as one backend crossing whenever the batch cannot
                # evict, and eviction records come back (item_index, key).
                per_item, run_evictions = engine.scan_batch(
                    [(key, data, packet_id) for _, key, data, packet_id in resolved[index:end]]
                )
                for item_events in per_item:
                    events_out.append(
                        [
                            (match.end_offset, match.string_number, match.lowered)
                            for match in item_events
                        ]
                    )
                for local_index, key in run_evictions:
                    evictions_out.append((index + local_index, key))
                matches_delta = engine.stats.matches - before_matches
                evicted_delta = engine.flows.stats.evicted - before_evicted
                prior = reports.get(shard)
                if prior is not None:
                    matches_delta += prior[0]
                    evicted_delta += prior[1]
                reports[shard] = (matches_delta, evicted_delta)
                index = end
        finally:
            for view in views:
                view.release()
        return {
            "events": events_out,
            "reports": reports,
            "evictions": evictions_out,
            "gauges": {shard: engine.active_flows for shard, engine in engines.items()},
        }

    def handle_drain(payload) -> Dict:
        """Transport probe: consume the chunk's payload bytes, scan nothing.

        Exists so benchmarks can measure the data plane's cost through the
        production dispatch path, separated from matcher compute.
        """
        keys.update(payload["new_keys"])
        drained = 0
        for shard, flow_id, packet_id, spill in payload["items"]:
            if spill is None:
                _, view = ring.read()
                drained += len(view)
                view.release()
            else:
                drained += len(spill)
        return {"drained": drained}

    def handle_restore(tables: Dict[int, Dict]) -> None:
        for shard, table_data in tables.items():
            engine = engines[shard]
            engine.flows = FlowTable.restore(
                table_data, capacity=engine.flows.capacity
            )

    def handle_stats(_payload) -> Dict[int, Dict[str, int]]:
        return {
            shard: {
                "active_flows": engine.active_flows,
                "evicted_flows": engine.flows.stats.evicted,
                "cross_segment_matches": engine.stats.cross_segment_matches,
                "restore_dropped": engine.flows.stats.restore_dropped,
            }
            for shard, engine in engines.items()
        }

    handlers = {
        "scan": handle_scan,
        "drain": handle_drain,
        "checkpoint": lambda _payload: {
            shard: engine.flows.checkpoint() for shard, engine in engines.items()
        },
        "restore": handle_restore,
        "stats": handle_stats,
    }

    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, KeyboardInterrupt):
            ring.close()
            return
        if command == "stop":
            ring.close()
            conn.send(("ok", None))
            conn.close()
            return
        try:
            handler = handlers[command]
        except KeyError:
            conn.send(("error", f"unknown command {command!r}"))
            continue
        try:
            conn.send(("ok", handler(payload)))
        except Exception:
            conn.send(("error", traceback.format_exc()))


class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    def __init__(self, index: int, process, conn, shards: List[int], ring: ShardRing):
        self.index = index
        self.process = process
        self.conn = conn
        self.shards = shards
        self.ring = ring
        #: flow ids this worker already holds the FlowKey for.
        self.known_flows: set = set()


class _DispatchState:
    """Progress of one worker through one scan's flattened item list.

    ``items`` are ``(shard, arrival_index, key, payload, packet_id)`` in
    shard-major order; ``cursor`` marks the first item not yet dispatched;
    ``chunk_items`` / ``ring_in_flight`` describe the chunk currently in
    flight (its parent-side metadata and how many ring slots it occupies).
    """

    __slots__ = ("items", "cursor", "chunk_items", "ring_in_flight")

    def __init__(self, items: List[Tuple]):
        self.items = items
        self.cursor = 0
        self.chunk_items: List[Tuple] = []
        self.ring_in_flight = 0


class ParallelScanService(ShardedScanServiceBase):
    """Process-parallel drop-in for :class:`repro.streaming.ScanService`.

    ``num_shards`` keeps its meaning (the flow hash space — checkpoints are
    exchangeable between serial and parallel services with equal
    ``num_shards``); ``workers`` says how many OS processes the shards are
    spread over (shard *s* lives in worker ``s % workers``).  ``workers``
    defaults to one per shard, bounded by the machine's CPU count.
    ``ring_slots`` × ``ring_slot_bytes`` size each worker's shared-memory
    payload ring (see :mod:`repro.streaming.transport`); the defaults suit
    MTU-sized segments, and tiny values are legitimate — they just trade
    throughput for backpressure stalls, never correctness.

    The event stream, the per-shard reports and the checkpoint format are
    byte-identical to the serial service on the same traffic; what changes
    is only that shard batches scan concurrently on real cores.
    """

    def __init__(
        self,
        program: CompiledProgram,
        num_shards: int = 4,
        flow_capacity_per_shard: int = DEFAULT_FLOW_CAPACITY,
        track_nocase: bool = False,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        ring_slots: int = DEFAULT_RING_SLOTS,
        ring_slot_bytes: int = DEFAULT_RING_SLOT_BYTES,
    ):
        self._validate_num_shards(num_shards)
        if workers is None:
            workers = max(1, min(num_shards, os.cpu_count() or 1))
        if not 1 <= workers <= num_shards:
            raise ValueError(
                f"workers must be between 1 and num_shards={num_shards}, got {workers}"
            )
        self.program = program
        self.num_shards = num_shards
        self.num_workers = workers
        self.transport_stats = TransportStats()
        context = _pick_context(start_method)
        self._workers: List[_WorkerHandle] = []
        self._worker_of_shard: Dict[int, _WorkerHandle] = {}
        #: global FlowKey -> flow id interning table (ids are service-wide).
        self._flow_ids: Dict[FlowKey, int] = {}
        try:
            for index in range(workers):
                shards = list(range(index, num_shards, workers))
                ring = ShardRing(ring_slots, ring_slot_bytes)
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_shard_worker,
                    args=(
                        child_conn,
                        ring.name,
                        ring_slots,
                        ring_slot_bytes,
                        program,
                        shards,
                        flow_capacity_per_shard,
                        track_nocase,
                    ),
                    daemon=True,
                    name=f"repro-shard-worker-{index}",
                )
                process.start()
                child_conn.close()  # the parent keeps only its end
                handle = _WorkerHandle(index, process, parent_conn, shards, ring)
                self._workers.append(handle)
                for shard in shards:
                    self._worker_of_shard[shard] = handle
        except Exception:
            self.close()
            raise
        self._closed = False

    # ------------------------------------------------------------------
    # worker pool plumbing
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if getattr(self, "_closed", True):
            raise RuntimeError("ParallelScanService is closed")

    def _crash_message(self, handle: _WorkerHandle) -> str:
        exitcode = handle.process.exitcode
        return (
            f"shard worker {handle.index} (shards {handle.shards}) died "
            f"with exit code {exitcode} while a request was in flight"
        )

    def _check_alive(self, handles: Sequence[_WorkerHandle]) -> None:
        for handle in handles:
            if not handle.process.is_alive():
                raise WorkerCrashedError(self._crash_message(handle))

    def _send(self, handle: _WorkerHandle, message) -> None:
        """Send on the control pipe; a dead peer raises WorkerCrashedError
        (a kill between requests surfaces on the *send*, not the recv)."""
        try:
            handle.conn.send(message)
        except (BrokenPipeError, ConnectionResetError, OSError):
            raise WorkerCrashedError(self._crash_message(handle)) from None

    def _exchange(self, handles: List[_WorkerHandle], requests: List[Tuple]) -> List:
        """Send one request to each handle, then collect every reply.

        Sends complete before any receive, so the workers run their commands
        concurrently — this is the fan-out the whole module exists for.
        Waits poll with a timeout and check liveness, so a dead worker
        raises :exc:`WorkerCrashedError` instead of hanging the dispatcher.
        """
        for handle, request in zip(handles, requests):
            self._send(handle, request)
        pending = {handle.conn: handle for handle in handles}
        replies: Dict[int, object] = {}
        failures = []
        while pending:
            ready = connection.wait(list(pending), timeout=_POLL_SECONDS)
            if not ready:
                self._check_alive(list(pending.values()))
                continue
            for conn in ready:  # drain EVERY reply before raising, so one
                handle = pending.pop(conn)  # failure cannot desync the pipes
                try:
                    status, value = conn.recv()
                except (EOFError, OSError):
                    raise WorkerCrashedError(self._crash_message(handle)) from None
                if status != "ok":
                    failures.append(f"shard worker {handle.index} failed:\n{value}")
                    continue
                replies[handle.index] = value
        if failures:
            raise RuntimeError("; ".join(failures))
        return [replies[handle.index] for handle in handles]

    def _request_all(self, command: str, payloads: Optional[List] = None) -> List:
        self._ensure_open()
        if payloads is None:
            payloads = [None] * len(self._workers)
        return self._exchange(
            self._workers,
            [(command, payload) for payload in payloads],
        )

    def close(self) -> None:
        """Shut the worker pool down gracefully (idempotent)."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        for handle in getattr(self, "_workers", []):
            try:
                handle.conn.send(("stop", None))
                handle.conn.recv()  # the worker acks before exiting
            except (OSError, EOFError, BrokenPipeError):
                pass
            handle.process.join(timeout=5)
            if handle.process.is_alive():  # pragma: no cover - defensive
                handle.process.terminate()
                handle.process.join(timeout=5)
            handle.conn.close()
            handle.ring.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # data-plane dispatch
    # ------------------------------------------------------------------
    def _flow_id_for(self, key: FlowKey) -> int:
        flow_id = self._flow_ids.get(key)
        if flow_id is None:
            flow_id = len(self._flow_ids)
            self._flow_ids[key] = flow_id
        return flow_id

    def _send_chunk(
        self, handle: _WorkerHandle, state: _DispatchState, command: str
    ) -> None:
        """Dispatch the next chunk of ``state`` to ``handle``.

        Writes payloads into the worker's ring until the items run out or
        the ring fills (backpressure: the chunk is cut short and the
        remainder waits for this chunk's acknowledgement).  Oversized
        payloads spill into the metadata message itself.
        """
        ring = handle.ring
        stats = self.transport_stats
        wire_items = []
        chunk_items = []
        new_keys: Dict[int, FlowKey] = {}
        stalled = False
        items = state.items
        while state.cursor < len(items):
            shard, arrival, key, payload, packet_id = items[state.cursor]
            flow_id = self._flow_id_for(key)
            if len(payload) > ring.slot_bytes:
                spill = bytes(payload)
                stats.spilled_segments += 1
                stats.spilled_bytes += len(payload)
            else:
                if not ring.try_write(flow_id, payload):
                    stalled = True
                    break
                spill = None
                stats.ring_segments += 1
                stats.ring_bytes += len(payload)
            if flow_id not in handle.known_flows:
                new_keys[flow_id] = key
                handle.known_flows.add(flow_id)
            wire_items.append((shard, flow_id, packet_id, spill))
            chunk_items.append((shard, arrival, key, packet_id))
            state.cursor += 1
        if stalled:
            stats.backpressure_stalls += 1
        stats.chunks += 1
        state.chunk_items = chunk_items
        state.ring_in_flight = ring.pending
        self._send(handle, (command, {"new_keys": new_keys, "items": wire_items}))

    def _pump(
        self,
        jobs: Dict[_WorkerHandle, List[Tuple]],
        command: str,
        on_reply: Callable[[_WorkerHandle, List[Tuple], Dict], None],
    ) -> None:
        """Drive every worker through its item list, chunk by chunk.

        One chunk per worker is in flight at any time; replies free that
        worker's ring slots and trigger the next chunk, so all workers stay
        busy concurrently while the ring enforces bounded memory.
        ``on_reply`` sees each chunk's parent-side metadata next to the
        worker's reply.
        """
        states: Dict[_WorkerHandle, _DispatchState] = {}
        pending: Dict[object, _WorkerHandle] = {}
        for handle, items in jobs.items():
            state = _DispatchState(items)
            states[handle] = state
            self._send_chunk(handle, state, command)
            pending[handle.conn] = handle
        failures: List[str] = []
        while pending:
            ready = connection.wait(list(pending), timeout=_POLL_SECONDS)
            if not ready:
                self._check_alive(list(pending.values()))
                continue
            for conn in ready:
                handle = pending[conn]
                try:
                    status, value = conn.recv()
                except (EOFError, OSError):
                    raise WorkerCrashedError(self._crash_message(handle)) from None
                state = states[handle]
                handle.ring.consumed(state.ring_in_flight)
                if status != "ok":
                    failures.append(f"shard worker {handle.index} failed:\n{value}")
                    del pending[conn]
                    continue
                if failures:
                    del pending[conn]  # stop feeding once anything failed
                    continue
                on_reply(handle, state.chunk_items, value)
                if state.cursor < len(state.items):
                    self._send_chunk(handle, state, command)
                else:
                    del pending[conn]
        if failures:
            raise RuntimeError("; ".join(failures))

    def _jobs_for(self, batches: Dict[int, List[Tuple]]) -> Dict[_WorkerHandle, List[Tuple]]:
        """Flatten grouped batches into each worker's shard-major item list.

        Every worker appears in the result — an idle worker still receives
        one empty chunk so its shard gauges come back with the scan.
        """
        jobs: Dict[_WorkerHandle, List[Tuple]] = {}
        for handle in self._workers:
            items: List[Tuple] = []
            for shard in handle.shards:
                for arrival, key, packet in batches.get(shard, []):
                    items.append((shard, arrival, key, packet.payload, packet.packet_id))
            jobs[handle] = items
        return jobs

    @staticmethod
    def _inflate(key: FlowKey, packet_id: int, compact) -> List[StreamMatch]:
        return [
            StreamMatch(key, packet_id, end_offset, string_number, lowered)
            for end_offset, string_number, lowered in compact
        ]

    # ------------------------------------------------------------------
    # the ScanService API
    # ------------------------------------------------------------------
    def submit(self, packet: Packet) -> List[StreamMatch]:
        """Scan a single packet on its flow's shard (one worker round-trip)."""
        self._ensure_open()
        key = StreamScanner.flow_key(packet)
        shard = self.shard_for(key)
        handle = self._worker_of_shard[shard]
        events: List[StreamMatch] = []

        def on_reply(_handle, chunk_items, reply) -> None:
            for (_, _, item_key, packet_id), compact in zip(
                chunk_items, reply["events"]
            ):
                events.extend(self._inflate(item_key, packet_id, compact))

        self._pump(
            {handle: [(shard, 0, key, packet.payload, packet.packet_id)]},
            "scan",
            on_reply,
        )
        return events

    def scan(self, packets: Sequence[Packet]) -> StreamScanResult:
        """Batched dispatch: group by shard, scan shards concurrently."""
        result, _, _ = self.scan_annotated(packets)
        return result

    def scan_annotated(
        self, packets: Sequence[Packet]
    ) -> Tuple[StreamScanResult, List[List[StreamMatch]], List[Eviction]]:
        """:meth:`scan` plus per-packet events and LRU-eviction records.

        Returns ``(result, per_packet_events, evictions)``: the aggregate
        result, the events of each input packet in arrival order (what
        serial :meth:`StreamScanner.scan_packet` would have returned for
        it), and ``(arrival_index, key)`` for every flow LRU-evicted while
        the packet at ``arrival_index`` was being scanned.  The stateful IDS
        pipeline correlates alerts from these without touching worker-owned
        flow tables.
        """
        self._ensure_open()
        batches = self._group_by_shard(packets)
        jobs = self._jobs_for(batches)

        per_shard_events: Dict[int, List[StreamMatch]] = {
            shard: [] for shard in range(self.num_shards)
        }
        per_packet: List[List[StreamMatch]] = [[] for _ in packets]
        matches: Dict[int, int] = {shard: 0 for shard in range(self.num_shards)}
        evicted: Dict[int, int] = {shard: 0 for shard in range(self.num_shards)}
        gauges: Dict[int, int] = {}
        evictions: List[Eviction] = []

        def on_reply(_handle, chunk_items, reply) -> None:
            for (shard, arrival, key, packet_id), compact in zip(
                chunk_items, reply["events"]
            ):
                item_events = self._inflate(key, packet_id, compact)
                per_packet[arrival] = item_events
                per_shard_events[shard].extend(item_events)
            for shard, (matches_delta, evicted_delta) in reply["reports"].items():
                matches[shard] += matches_delta
                evicted[shard] += evicted_delta
            for local_index, key in reply["evictions"]:
                evictions.append((chunk_items[local_index][1], key))
            gauges.update(reply["gauges"])  # later chunks overwrite: the
            # final value is each shard's end-of-scan gauge, which equals
            # the serial service's after-my-batch gauge (a shard's flow
            # table only changes while its own batch scans).

        self._pump(jobs, "scan", on_reply)

        events: List[StreamMatch] = []
        shard_reports: List[ShardReport] = []
        for shard in range(self.num_shards):
            batch = batches.get(shard, [])
            shard_reports.append(
                ShardReport(
                    shard=shard,
                    packets=len(batch),
                    bytes_scanned=sum(len(packet.payload) for _, _, packet in batch),
                    matches=matches[shard],
                    active_flows=gauges[shard],
                    evicted_flows=evicted[shard],
                )
            )
            events.extend(per_shard_events[shard])  # shard order == serial
            # pre-sort order
        evictions.sort(key=lambda record: record[0])
        return self._aggregate(len(packets), events, shard_reports), per_packet, evictions

    def probe_transport(self, packets: Sequence[Packet]) -> int:
        """Push payloads through the data plane without scanning them.

        Benchmark instrumentation: exercises the exact production dispatch
        path (interning, ring writes, chunking, backpressure, replies) while
        the workers only consume — so ``bench_transport.py`` can report
        transport cost separated from matcher compute.  Returns the total
        payload bytes the workers acknowledged.  Flow tables are untouched.
        """
        self._ensure_open()
        jobs = self._jobs_for(self._group_by_shard(packets))
        drained = [0]

        def on_reply(_handle, _chunk_items, reply) -> None:
            drained[0] += reply["drained"]

        self._pump(jobs, "drain", on_reply)
        return drained[0]

    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return sum(stats["active_flows"] for stats in self._shard_stats().values())

    @property
    def evicted_flows(self) -> int:
        return sum(stats["evicted_flows"] for stats in self._shard_stats().values())

    @property
    def cross_segment_matches(self) -> int:
        return sum(
            stats["cross_segment_matches"] for stats in self._shard_stats().values()
        )

    def shard_occupancy(self) -> List[int]:
        """Live flow count per shard (how even the hash partitioning is)."""
        stats = self._shard_stats()
        return [stats[shard]["active_flows"] for shard in range(self.num_shards)]

    def _shard_stats(self) -> Dict[int, Dict[str, int]]:
        merged: Dict[int, Dict[str, int]] = {}
        for reply in self._request_all("stats"):
            merged.update(reply)
        return merged

    def stats(self) -> Dict:
        """Serial-compatible service stats plus a ``transport`` section."""
        merged = super().stats()
        merged["transport"] = self.transport_stats.as_dict()
        return merged

    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict:
        """Collect every worker's shard tables into the serial envelope."""
        merged: Dict[int, Dict] = {}
        for reply in self._request_all("checkpoint"):
            merged.update(reply)
        return {
            "num_shards": self.num_shards,
            "shards": [merged[shard] for shard in range(self.num_shards)],
        }

    def restore(self, data: Dict) -> None:
        """Fan a (serial or parallel) checkpoint out to the worker pool.

        Same semantics as the serial service: each shard keeps its
        *configured* flow capacity, over-capacity flows are dropped LRU-first
        (counted per shard in ``restore_dropped``).
        """
        self._validate_checkpoint(data)
        payloads = [
            {shard: data["shards"][shard] for shard in handle.shards}
            for handle in self._workers
        ]
        self._request_all("restore", payloads)


__all__ = ["ParallelScanService", "WorkerCrashedError"]
