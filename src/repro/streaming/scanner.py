"""Stateful flow scanning over one compiled matcher program.

A :class:`StreamScanner` is the software model of one string matching engine
that has been taught to multiplex flows: before scanning a segment it loads
the flow's checkpointed :class:`repro.backend.ScanState` registers from its
:class:`repro.streaming.flow.FlowTable`, and afterwards it stores them back.
Because the state carries everything the backend needs to resume (automaton
state, two-byte history, tail buffer), a pattern split across consecutive
segments of a flow is found exactly as if the segments had arrived as one
contiguous payload — the property the per-packet ``match`` path cannot
provide.

The scanner is written against the :class:`repro.backend.CompiledProgram`
protocol, so *any* backend — the device-partitioned
:class:`repro.core.AcceleratorProgram`, the compiled dense table, a plain
DFA, even Wu-Manber — multiplexes flows through the identical code path.
Higher layers stack the sharded services on top of it; the declarative
:class:`repro.api.Session` facade composes the whole column from one
:class:`repro.api.PipelineConfig`.

Hot path
--------
The sharded services feed whole shard batches through :meth:`scan_batch`,
which concatenates consecutive same-flow segments and crosses into the
backend once per flow instead of once per segment, then re-attributes the
matches to their segments by offset.  The fast path is taken only when the
batch provably cannot evict a flow; under eviction pressure the scanner
falls back to the exact per-segment loop, so events, statistics and LRU
order are byte-identical either way (the differential harness in the test
suite holds it to that).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..backend import CompiledProgram
from ..traffic.packet import Packet
from .flow import DEFAULT_FLOW_CAPACITY, FlowEntry, FlowKey, FlowTable

#: Flow key used when a packet carries no 5-tuple header (treated as one
#: anonymous flow so bare payload streams can still be scanned statefully).
ANONYMOUS_FLOW = FlowKey("0.0.0.0", "0.0.0.0", 0, 0, "raw")

#: One batch item: ``(FlowKey, payload, packet_id)`` — the executor's wire
#: format, shared by :meth:`StreamScanner.scan_batch`.
BatchItem = Tuple[FlowKey, bytes, int]

#: Per-batch eviction record: ``(item_index, FlowKey)`` — the flow evicted
#: while the batch item at ``item_index`` was being scanned.
Eviction = Tuple[int, FlowKey]


class StreamMatch:
    """A match found while scanning a flow segment.

    ``end_offset`` is the position one past the match's final byte in the
    *flow's* byte stream (not the segment), so a cross-segment match reports
    an offset beyond the current segment's start.  ``lowered`` marks hits
    found in the lower-cased view of the stream (case-insensitive scanning).

    A ``__slots__`` record rather than a dataclass: the streaming hot loop
    creates one per match event, and slot instances allocate without a
    per-instance ``__dict__``.  Equality, hashing and repr keep the frozen
    dataclass semantics the rest of the suite was written against.
    """

    __slots__ = ("flow", "packet_id", "end_offset", "string_number", "lowered")

    def __init__(
        self,
        flow: FlowKey,
        packet_id: int,
        end_offset: int,
        string_number: int,
        lowered: bool = False,
    ):
        self.flow = flow
        self.packet_id = packet_id
        self.end_offset = end_offset
        self.string_number = string_number
        self.lowered = lowered

    def _key(self) -> Tuple[FlowKey, int, int, int, bool]:
        return (self.flow, self.packet_id, self.end_offset, self.string_number, self.lowered)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamMatch):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (
            f"StreamMatch(flow={self.flow!r}, packet_id={self.packet_id!r}, "
            f"end_offset={self.end_offset!r}, string_number={self.string_number!r}, "
            f"lowered={self.lowered!r})"
        )


@dataclass
class ScannerStatistics:
    segments: int = 0
    bytes_scanned: int = 0
    matches: int = 0
    cross_segment_matches: int = 0


class StreamScanner:
    """One flow-multiplexing scan engine around any compiled matcher program.

    ``program`` is anything honouring the :class:`repro.backend.CompiledProgram`
    protocol.  ``capacity`` sizes the internally created flow table and is
    ignored when an explicit ``flow_table`` is supplied (the table's own
    bound applies).
    """

    def __init__(
        self,
        program: CompiledProgram,
        flow_table: Optional[FlowTable] = None,
        capacity: int = DEFAULT_FLOW_CAPACITY,
        track_nocase: bool = False,
    ):
        self.program = program
        self.flows = flow_table if flow_table is not None else FlowTable(capacity)
        self.track_nocase = track_nocase
        self.stats = ScannerStatistics()
        self._pattern_length = {
            index: len(pattern) for index, pattern in enumerate(program.patterns)
        }
        # The canonical tuple-in/tuple-out fast call; programs predating
        # scan_chunk (or wrappers like HardwareAccelerator) fall back to the
        # coercing scan_from, which is semantically identical.
        self._scan = getattr(program, "scan_chunk", program.scan_from)

    # ------------------------------------------------------------------
    def _new_entry(self, key: FlowKey) -> FlowEntry:
        return FlowEntry(
            key=key,
            states=self.program.initial_scan_states(),
            lower_states=(
                self.program.initial_scan_states() if self.track_nocase else None
            ),
        )

    @staticmethod
    def flow_key(packet: Packet) -> FlowKey:
        return (
            FlowKey.from_header(packet.header)
            if packet.header is not None
            else ANONYMOUS_FLOW
        )

    # ------------------------------------------------------------------
    def scan_packet(self, packet: Packet) -> List[StreamMatch]:
        """Scan one packet as the next segment of its flow."""
        return self.scan_segment(self.flow_key(packet), packet.payload, packet.packet_id)

    def scan_segment(
        self, key: FlowKey, payload: bytes, packet_id: int = 0
    ) -> List[StreamMatch]:
        """Scan ``payload`` as the next segment of flow ``key``."""
        entry = self.flows.get_or_create(key, self._new_entry)
        segment_start = entry.bytes_scanned

        raw, entry.states = self._scan(entry.states, payload)
        matches = [
            StreamMatch(key, packet_id, offset, number) for offset, number in raw
        ]
        entry.matched.update(number for _, number in raw)

        if self.track_nocase:
            if entry.lower_states is None:
                # e.g. a flow restored from a checkpoint written without
                # nocase tracking: restart the lowered view rather than
                # silently never matching case-insensitively again.  Seed it
                # at the raw stream offset so lowered matches keep reporting
                # flow-absolute positions (and dedup against raw hits works).
                entry.lower_states = self.program.initial_scan_states(
                    offset=segment_start
                )
            lowered, entry.lower_states = self._scan(
                entry.lower_states, payload.lower()
            )
            # an occurrence that is already lower-case matches in both views;
            # report it once (the raw event) so statistics are not inflated
            raw_hits = set(raw)
            lowered = [hit for hit in lowered if hit not in raw_hits]
            matches.extend(
                StreamMatch(key, packet_id, offset, number, True)
                for offset, number in lowered
            )
            entry.matched_lower.update(number for _, number in lowered)

        entry.packets += 1
        self.stats.segments += 1
        self.stats.bytes_scanned += len(payload)
        self.stats.matches += len(matches)
        for match in matches:
            # the match ends in this segment but started before it
            if match.end_offset - self._pattern_length[match.string_number] < segment_start:
                self.stats.cross_segment_matches += 1
        return matches

    def scan_packets(self, packets: Sequence[Packet]) -> List[StreamMatch]:
        """Scan a batch of packets in arrival order (flows may interleave)."""
        matches: List[StreamMatch] = []
        for packet in packets:
            matches.extend(self.scan_packet(packet))
        return matches

    # ------------------------------------------------------------------
    # batched scanning (the services' hot path)
    # ------------------------------------------------------------------
    def scan_batch(
        self, items: Sequence[BatchItem]
    ) -> Tuple[List[List[StreamMatch]], List[Eviction]]:
        """Scan one shard batch of ``(key, payload, packet_id)`` segments.

        Returns ``(per_item, evictions)``: ``per_item[i]`` is exactly the
        event list :meth:`scan_segment` would have returned for ``items[i]``,
        and ``evictions`` records ``(item_index, key)`` for every flow
        LRU-evicted while item ``item_index`` was being scanned.

        Fast path: when the batch provably cannot evict (live flows plus this
        batch's new flows fit the table), each flow's segments are
        concatenated and cross into the backend as one chunk; matches are
        re-attributed to segments by their flow-absolute end offset and LRU
        recency is replayed in per-segment order afterwards.  Any batch that
        could evict takes the exact per-segment loop instead, because
        eviction timing (and hence restart state) depends on the segment
        interleaving the fast path collapses.  Events, statistics and final
        table state are identical on both paths.
        """
        flows = self.flows
        groups: Dict[FlowKey, List[int]] = {}
        for index, item in enumerate(items):
            key = item[0]
            group = groups.get(key)
            if group is None:
                groups[key] = [index]
            else:
                group.append(index)

        new_flows = sum(1 for key in groups if key not in flows)
        if len(flows) + new_flows > flows.capacity:
            return self._scan_batch_per_segment(items)

        per_item: List[List[StreamMatch]] = [[] for _ in items]
        stats = self.stats
        table_stats = flows.stats
        pattern_length = self._pattern_length
        scan = self._scan
        for key, indexes in groups.items():
            entry = flows.lookup(key)
            if entry is None:
                entry = self._new_entry(key)
                flows.insert(entry)
            # Emulate the per-segment bookkeeping the collapsed lookups would
            # have done: each of the k segments performs one lookup, and all
            # but the creating miss (if any) hit.
            extra = len(indexes) - 1
            table_stats.lookups += extra
            table_stats.hits += extra
            entry.packets += len(indexes)

            if extra == 0:
                # single segment: nothing to concatenate
                index = indexes[0]
                _, payload, packet_id = items[index]
                events = self._scan_entry(entry, key, payload, packet_id)
                per_item[index] = events
                stats.segments += 1
                stats.bytes_scanned += len(payload)
                stats.matches += len(events)
                segment_start = entry.bytes_scanned - len(payload)
                for event in events:
                    if event.end_offset - pattern_length[event.string_number] < segment_start:
                        stats.cross_segment_matches += 1
                continue

            payloads = [items[index][1] for index in indexes]
            joined = b"".join(payloads)
            base = entry.bytes_scanned
            # boundaries[j] = flow-absolute end offset of segment j; a match
            # with end offset o belongs to the segment with the smallest
            # boundary >= o (its final byte is at o - 1 < boundaries[j]).
            boundaries: List[int] = []
            acc = base
            for payload in payloads:
                acc += len(payload)
                boundaries.append(acc)

            raw, entry.states = scan(entry.states, joined)
            seg_events: List[List[StreamMatch]] = [[] for _ in indexes]
            for offset, number in raw:
                j = bisect_left(boundaries, offset)
                seg_events[j].append(
                    StreamMatch(key, items[indexes[j]][2], offset, number)
                )
            entry.matched.update(number for _, number in raw)

            if self.track_nocase:
                if entry.lower_states is None:
                    entry.lower_states = self.program.initial_scan_states(
                        offset=base
                    )
                lowered, entry.lower_states = scan(
                    entry.lower_states, joined.lower()
                )
                raw_hits = set(raw)
                lowered = [hit for hit in lowered if hit not in raw_hits]
                for offset, number in lowered:
                    j = bisect_left(boundaries, offset)
                    seg_events[j].append(
                        StreamMatch(key, items[indexes[j]][2], offset, number, True)
                    )
                entry.matched_lower.update(number for _, number in lowered)

            stats.segments += len(indexes)
            stats.bytes_scanned += len(joined)
            for j, events in enumerate(seg_events):
                stats.matches += len(events)
                segment_start = boundaries[j] - len(payloads[j])
                for event in events:
                    if event.end_offset - pattern_length[event.string_number] < segment_start:
                        stats.cross_segment_matches += 1
                per_item[indexes[j]] = events

        # Replay LRU recency in per-segment order: the grouped walk touched
        # each flow at its *first* arrival, but per-segment scanning leaves
        # flows ordered by their *last* segment in the batch.
        for key in sorted(groups, key=lambda flow: groups[flow][-1]):
            flows.touch(key)
        return per_item, []

    def _scan_entry(
        self, entry: FlowEntry, key: FlowKey, payload: bytes, packet_id: int
    ) -> List[StreamMatch]:
        """One segment's backend crossing + event building (no table or
        scanner statistics — :meth:`scan_batch` accounts for those)."""
        raw, entry.states = self._scan(entry.states, payload)
        matches = [
            StreamMatch(key, packet_id, offset, number) for offset, number in raw
        ]
        entry.matched.update(number for _, number in raw)
        if self.track_nocase:
            if entry.lower_states is None:
                entry.lower_states = self.program.initial_scan_states(
                    offset=entry.bytes_scanned - len(payload)
                )
            lowered, entry.lower_states = self._scan(
                entry.lower_states, payload.lower()
            )
            raw_hits = set(raw)
            lowered = [hit for hit in lowered if hit not in raw_hits]
            matches.extend(
                StreamMatch(key, packet_id, offset, number, True)
                for offset, number in lowered
            )
            entry.matched_lower.update(number for _, number in lowered)
        return matches

    def _scan_batch_per_segment(
        self, items: Sequence[BatchItem]
    ) -> Tuple[List[List[StreamMatch]], List[Eviction]]:
        """The exact slow path: per-segment scanning with eviction records."""
        per_item: List[List[StreamMatch]] = []
        evictions: List[Eviction] = []
        flows = self.flows
        previous = flows.on_evict
        position = 0

        def record(entry: FlowEntry) -> None:
            evictions.append((position, entry.key))
            if previous is not None:
                previous(entry)

        flows.on_evict = record
        try:
            for position, (key, payload, packet_id) in enumerate(items):
                per_item.append(self.scan_segment(key, payload, packet_id))
        finally:
            flows.on_evict = previous
        return per_item, evictions

    # ------------------------------------------------------------------
    def close_flow(self, key: FlowKey) -> Optional[FlowEntry]:
        """Forget a finished flow and return its final entry, if tracked."""
        return self.flows.remove(key)

    @property
    def active_flows(self) -> int:
        return len(self.flows)


__all__ = [
    "ANONYMOUS_FLOW",
    "BatchItem",
    "Eviction",
    "ScannerStatistics",
    "StreamMatch",
    "StreamScanner",
]
