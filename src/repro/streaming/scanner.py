"""Stateful flow scanning over one compiled matcher program.

A :class:`StreamScanner` is the software model of one string matching engine
that has been taught to multiplex flows: before scanning a segment it loads
the flow's checkpointed :class:`repro.backend.ScanState` registers from its
:class:`repro.streaming.flow.FlowTable`, and afterwards it stores them back.
Because the state carries everything the backend needs to resume (automaton
state, two-byte history, tail buffer), a pattern split across consecutive
segments of a flow is found exactly as if the segments had arrived as one
contiguous payload — the property the per-packet ``match`` path cannot
provide.

The scanner is written against the :class:`repro.backend.CompiledProgram`
protocol, so *any* backend — the device-partitioned
:class:`repro.core.AcceleratorProgram`, the compiled dense table, a plain
DFA, even Wu-Manber — multiplexes flows through the identical code path.
Higher layers stack the sharded services on top of it; the declarative
:class:`repro.api.Session` facade composes the whole column from one
:class:`repro.api.PipelineConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..backend import CompiledProgram
from ..traffic.packet import Packet
from .flow import DEFAULT_FLOW_CAPACITY, FlowEntry, FlowKey, FlowTable

#: Flow key used when a packet carries no 5-tuple header (treated as one
#: anonymous flow so bare payload streams can still be scanned statefully).
ANONYMOUS_FLOW = FlowKey("0.0.0.0", "0.0.0.0", 0, 0, "raw")


@dataclass(frozen=True)
class StreamMatch:
    """A match found while scanning a flow segment.

    ``end_offset`` is the position one past the match's final byte in the
    *flow's* byte stream (not the segment), so a cross-segment match reports
    an offset beyond the current segment's start.  ``lowered`` marks hits
    found in the lower-cased view of the stream (case-insensitive scanning).
    """

    flow: FlowKey
    packet_id: int
    end_offset: int
    string_number: int
    lowered: bool = False


@dataclass
class ScannerStatistics:
    segments: int = 0
    bytes_scanned: int = 0
    matches: int = 0
    cross_segment_matches: int = 0


class StreamScanner:
    """One flow-multiplexing scan engine around any compiled matcher program.

    ``program`` is anything honouring the :class:`repro.backend.CompiledProgram`
    protocol.  ``capacity`` sizes the internally created flow table and is
    ignored when an explicit ``flow_table`` is supplied (the table's own
    bound applies).
    """

    def __init__(
        self,
        program: CompiledProgram,
        flow_table: Optional[FlowTable] = None,
        capacity: int = DEFAULT_FLOW_CAPACITY,
        track_nocase: bool = False,
    ):
        self.program = program
        self.flows = flow_table if flow_table is not None else FlowTable(capacity)
        self.track_nocase = track_nocase
        self.stats = ScannerStatistics()
        self._pattern_length = {
            index: len(pattern) for index, pattern in enumerate(program.patterns)
        }

    # ------------------------------------------------------------------
    def _new_entry(self, key: FlowKey) -> FlowEntry:
        return FlowEntry(
            key=key,
            states=self.program.initial_scan_states(),
            lower_states=(
                self.program.initial_scan_states() if self.track_nocase else None
            ),
        )

    @staticmethod
    def flow_key(packet: Packet) -> FlowKey:
        return (
            FlowKey.from_header(packet.header)
            if packet.header is not None
            else ANONYMOUS_FLOW
        )

    # ------------------------------------------------------------------
    def scan_packet(self, packet: Packet) -> List[StreamMatch]:
        """Scan one packet as the next segment of its flow."""
        return self.scan_segment(self.flow_key(packet), packet.payload, packet.packet_id)

    def scan_segment(
        self, key: FlowKey, payload: bytes, packet_id: int = 0
    ) -> List[StreamMatch]:
        """Scan ``payload`` as the next segment of flow ``key``."""
        entry = self.flows.get_or_create(key, self._new_entry)
        segment_start = entry.bytes_scanned

        raw, entry.states = self.program.scan_from(entry.states, payload)
        matches = [
            StreamMatch(flow=key, packet_id=packet_id, end_offset=offset, string_number=number)
            for offset, number in raw
        ]
        entry.matched.update(number for _, number in raw)

        if self.track_nocase:
            if entry.lower_states is None:
                # e.g. a flow restored from a checkpoint written without
                # nocase tracking: restart the lowered view rather than
                # silently never matching case-insensitively again.  Seed it
                # at the raw stream offset so lowered matches keep reporting
                # flow-absolute positions (and dedup against raw hits works).
                entry.lower_states = self.program.initial_scan_states(
                    offset=segment_start
                )
            lowered, entry.lower_states = self.program.scan_from(
                entry.lower_states, payload.lower()
            )
            # an occurrence that is already lower-case matches in both views;
            # report it once (the raw event) so statistics are not inflated
            raw_hits = set(raw)
            lowered = [hit for hit in lowered if hit not in raw_hits]
            matches.extend(
                StreamMatch(
                    flow=key,
                    packet_id=packet_id,
                    end_offset=offset,
                    string_number=number,
                    lowered=True,
                )
                for offset, number in lowered
            )
            entry.matched_lower.update(number for _, number in lowered)

        entry.packets += 1
        self.stats.segments += 1
        self.stats.bytes_scanned += len(payload)
        self.stats.matches += len(matches)
        for match in matches:
            # the match ends in this segment but started before it
            if match.end_offset - self._pattern_length[match.string_number] < segment_start:
                self.stats.cross_segment_matches += 1
        return matches

    def scan_packets(self, packets: Sequence[Packet]) -> List[StreamMatch]:
        """Scan a batch of packets in arrival order (flows may interleave)."""
        matches: List[StreamMatch] = []
        for packet in packets:
            matches.extend(self.scan_packet(packet))
        return matches

    # ------------------------------------------------------------------
    def close_flow(self, key: FlowKey) -> Optional[FlowEntry]:
        """Forget a finished flow and return its final entry, if tracked."""
        return self.flows.remove(key)

    @property
    def active_flows(self) -> int:
        return len(self.flows)


__all__ = [
    "ANONYMOUS_FLOW",
    "ScannerStatistics",
    "StreamMatch",
    "StreamScanner",
]
