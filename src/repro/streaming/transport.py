"""Zero-copy shared-memory shard transport: payload bytes without pickling.

:class:`~repro.streaming.executor.ParallelScanService` originally shipped
every payload to its worker as a pickled ``(FlowKey, bytes, packet_id)``
tuple over a ``multiprocessing.Pipe``.  That costs a pickle encode, a pipe
write, a pipe read and a pickle decode *per segment* — pure transport tax on
what the paper treats as a wire-rate data plane.  This module is the
replacement data plane:

* :class:`ShardRing` — one single-producer/single-consumer ring of
  fixed-size slots in a :class:`multiprocessing.shared_memory.SharedMemory`
  segment per worker.  The dispatcher copies each payload into a slot once;
  the worker reads it back as a :class:`memoryview` into the shared mapping
  — zero copies on the consumer side and no pickling in either direction.
* Each slot carries a tiny packed header ``(sequence, flow id, length)``.
  The sequence number is checked on every read, so a dispatcher/worker
  cursor mismatch surfaces as a loud :class:`TransportError` instead of a
  silently mis-attributed payload.
* **Spill path**: a payload larger than ``slot_bytes`` does not fit the ring
  and travels pickled over the control pipe instead (the dispatcher decides;
  see ``executor.py``).  The ring enforces the invariant with
  :exc:`SlotOversizeError`.
* **Backpressure**: :meth:`ShardRing.try_write` refuses (returns ``False``)
  when every slot is in flight; the dispatcher then closes the current chunk
  and waits for the worker to drain it before writing more.  Stalls are
  counted in :class:`TransportStats` — visible evidence of an undersized
  ring rather than a silent overwrite.

Both ends run strictly in lock-step — the dispatcher only reuses slots the
worker has explicitly acknowledged over the control pipe — so no shared
cursors or cross-process atomics are needed; determinism is inherited from
the request/reply protocol, not fought for with locks.

Lifecycle: the dispatcher creates the segment (:class:`ShardRing` with
``name=None``) and is its sole owner — it both closes *and* unlinks.  A
worker attaches by name and only closes its mapping.  CPython registers the
segment with the ``resource_tracker`` on attach as well as on create
(bpo-39959), but every worker is a ``multiprocessing`` child of the
dispatcher and therefore *shares* the dispatcher's tracker process, so the
attach-side registration is an idempotent no-op and the dispatcher's
``unlink`` retires the name exactly once.  (Unregistering in the worker
would be actively wrong: it strips the shared tracker's one registration
out from under the dispatcher.)
"""

from __future__ import annotations

import os
import struct
from dataclasses import asdict, dataclass
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

#: Default ring geometry: 256 slots x 2 KiB ≈ 512 KiB per worker.  Slots
#: comfortably hold an MTU-sized segment (1500 B); anything larger spills.
DEFAULT_RING_SLOTS = 256
DEFAULT_RING_SLOT_BYTES = 2048

#: Per-slot header: ``(sequence & 0xFFFFFFFF, flow id, payload length)``.
_SLOT_HEADER = struct.Struct("<III")

SLOT_HEADER_BYTES = _SLOT_HEADER.size


class TransportError(RuntimeError):
    """Dispatcher and worker disagree about ring state (a protocol bug)."""


class SlotOversizeError(ValueError):
    """A payload larger than ``slot_bytes`` was offered to the ring."""


@dataclass
class TransportStats:
    """Dispatcher-side counters for one service's data plane.

    ``ring_segments``/``ring_bytes`` moved through shared memory;
    ``spilled_segments``/``spilled_bytes`` were too big for a slot and went
    pickled over the control pipe; ``backpressure_stalls`` counts chunks cut
    short because a ring was full; ``chunks`` counts scan requests sent
    (one request per chunk per worker).
    """

    ring_segments: int = 0
    ring_bytes: int = 0
    spilled_segments: int = 0
    spilled_bytes: int = 0
    backpressure_stalls: int = 0
    chunks: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class ShardRing:
    """Fixed-slot SPSC ring over one shared-memory segment.

    Exactly one dispatcher writes and one worker reads.  Construct with
    ``name=None`` to create (dispatcher side) or with the segment's name to
    attach (worker side).  Slot accounting is per-end: the dispatcher tracks
    in-flight slots (``pending``) and frees them via :meth:`consumed` when
    the worker acknowledges a chunk; the worker just advances its read
    cursor.  Sequence numbers written into every slot header keep the two
    cursors honest.
    """

    def __init__(self, slots: int, slot_bytes: int, name: Optional[str] = None):
        if slots < 1:
            raise ValueError(f"ring needs at least 1 slot, got {slots}")
        if slot_bytes < 1:
            raise ValueError(f"ring slots need at least 1 byte, got {slot_bytes}")
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._stride = SLOT_HEADER_BYTES + slot_bytes
        self.owner = name is None
        # fork-started workers inherit the dispatcher's owner-side ring
        # objects; only the creating *process* may unlink the segment, or a
        # worker's interpreter shutdown would tear it out from under the
        # dispatcher.
        self._creator_pid = os.getpid()
        if self.owner:
            self._shm = shared_memory.SharedMemory(
                create=True, size=slots * self._stride
            )
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            if self._shm.size < slots * self._stride:
                raise TransportError(
                    f"ring segment {name!r} is {self._shm.size} bytes, "
                    f"expected at least {slots * self._stride}"
                )
        self._buffer = self._shm.buf
        self._seq = 0  # next sequence to write (dispatcher) / read (worker)
        self._pending = 0  # dispatcher side: slots written, not yet consumed

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def pending(self) -> int:
        return self._pending

    # ------------------------------------------------------------------
    # dispatcher end
    # ------------------------------------------------------------------
    def try_write(self, flow_id: int, payload) -> bool:
        """Copy ``payload`` into the next slot; ``False`` if the ring is full.

        A ``False`` return is the backpressure signal: every slot holds a
        segment the worker has not acknowledged yet.  Oversized payloads
        raise :exc:`SlotOversizeError` — the caller must spill them over the
        control plane instead.
        """
        length = len(payload)
        if length > self.slot_bytes:
            raise SlotOversizeError(
                f"payload of {length} bytes exceeds the {self.slot_bytes}-byte slot"
            )
        if self._pending >= self.slots:
            return False
        offset = (self._seq % self.slots) * self._stride
        _SLOT_HEADER.pack_into(
            self._buffer, offset, self._seq & 0xFFFFFFFF, flow_id, length
        )
        start = offset + SLOT_HEADER_BYTES
        self._buffer[start:start + length] = payload
        self._seq += 1
        self._pending += 1
        return True

    def consumed(self, count: int) -> None:
        """Free ``count`` slots the worker acknowledged (chunk reply arrived)."""
        if count > self._pending:
            raise TransportError(
                f"worker acknowledged {count} slots but only {self._pending} "
                "are in flight"
            )
        self._pending -= count

    # ------------------------------------------------------------------
    # worker end
    # ------------------------------------------------------------------
    def read(self) -> Tuple[int, memoryview]:
        """Return ``(flow_id, payload view)`` for the next slot in sequence.

        The view aliases shared memory — valid only until the slot is
        acknowledged back to the dispatcher, and it must be ``release()``d
        before the ring is closed.
        """
        offset = (self._seq % self.slots) * self._stride
        seq, flow_id, length = _SLOT_HEADER.unpack_from(self._buffer, offset)
        if seq != self._seq & 0xFFFFFFFF:
            raise TransportError(
                f"ring slot out of sequence: expected {self._seq & 0xFFFFFFFF}, "
                f"found {seq}"
            )
        start = offset + SLOT_HEADER_BYTES
        view = self._buffer[start:start + length]
        self._seq += 1
        return flow_id, view

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap this end.  Owner (dispatcher) additionally unlinks."""
        if self._buffer is None:
            return
        self._buffer = None
        self._shm.close()
        if self.owner and os.getpid() == self._creator_pid:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ShardRing":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety net
        try:
            self.close()
        except Exception:
            pass


__all__ = [
    "DEFAULT_RING_SLOTS",
    "DEFAULT_RING_SLOT_BYTES",
    "SLOT_HEADER_BYTES",
    "ShardRing",
    "SlotOversizeError",
    "TransportError",
    "TransportStats",
]
