"""Protocol-aware preprocessing between packet sources and the scan layers.

The scan column below this package (:mod:`repro.streaming`, :mod:`repro.ids`)
consumes segments in arrival order and trusts that order.  ``repro.proto``
is the layer that makes the trust deserved on real traffic:

* :mod:`repro.proto.reassembly` — :class:`TcpReassembler`, sequence-number-
  driven per-flow reordering with Snort-style overlap policies, bounded
  hole buffers and FlowTable-style checkpoint/restore;
* :mod:`repro.proto.http` — :class:`HttpStream`, the incremental HTTP/1.x
  request-line + header normalizer behind the ``http_uri``/``http_header``
  sticky buffers the rule grammar and confirm stage target.

Enable end to end with ``EngineSpec(reassemble=True, overlap_policy=...)``
or the ``--reassemble`` CLI flag on ``scan-pcap``/``ids``/``serve``.
"""

from .http import HTTP_BUFFERS, HttpStream, percent_decode
from .reassembly import (
    DEFAULT_MAX_FLOW_BYTES,
    DEFAULT_MAX_FLOW_SEGMENTS,
    DEFAULT_REASSEMBLY_FLOWS,
    OVERLAP_POLICIES,
    ReassemblyStatistics,
    TcpReassembler,
    reassemble_packets,
)

__all__ = [
    "DEFAULT_MAX_FLOW_BYTES",
    "DEFAULT_MAX_FLOW_SEGMENTS",
    "DEFAULT_REASSEMBLY_FLOWS",
    "HTTP_BUFFERS",
    "HttpStream",
    "OVERLAP_POLICIES",
    "ReassemblyStatistics",
    "TcpReassembler",
    "percent_decode",
    "reassemble_packets",
]
