"""Sequence-number-driven TCP stream reassembly in front of the scan layers.

Everything downstream of this module — :class:`repro.streaming.StreamScanner`,
the sharded services, the two-stage IDS — scans segments in *arrival order*
and trusts that order to equal stream order.  Real captures break that trust:
segments arrive out of order, retransmitted, and deliberately overlapping —
the classic IDS evasion surface.  :class:`TcpReassembler` closes it by
re-ordering each TCP flow's segments by sequence number before they reach a
scanner, so a pattern split across mangled segments is found exactly as if
the flow had arrived in order.

Semantics (Snort-style, documented precisely because tests pin them):

* **Anchoring.**  A flow's stream position is anchored at its first usable
  segment: a SYN anchors one past its sequence number (SYN consumes one),
  any other first segment anchors at its own sequence number.  All later
  segments are placed relative to that anchor with 32-bit wraparound
  arithmetic, so flows crossing ``2**32`` reassemble correctly.
* **Fallback.**  A flow whose packets carry no sequence state — UDP,
  headerless payloads, or legacy captures whose encoder wrote all-zero
  sequence numbers (a first segment with ``seq == 0`` and no SYN) — is
  passed through in arrival order, unchanged.  Reassembly never makes a
  seq-less capture worse than not reassembling.
* **Overlap policy.**  When two segments claim the same stream bytes, the
  configurable policy decides: ``"first"`` keeps the bytes that arrived
  first (BSD-style), ``"last"`` lets the later arrival overwrite
  (Linux-style).  Bytes already delivered to the scanner are final under
  either policy — the scanner cannot un-scan — so the policy governs only
  data still buffered.  A segment entirely behind the delivery point is a
  retransmit and is dropped.
* **Bounded holes.**  Out-of-order data waits in a per-flow hole buffer
  bounded by ``max_flow_bytes`` and ``max_flow_segments``; exceeding either
  cap *flushes* the flow — buffered pieces are delivered in stream order,
  gaps skipped — so memory stays bounded under sequence-gap floods at the
  price of detection across the skipped gap.  The table itself is a bounded
  LRU over ``max_flows`` flows, evicting (and flushing) the least recently
  active flow, mirroring :class:`repro.streaming.flow.FlowTable`.
* **SYN/FIN/RST.**  A SYN (re)anchors an empty flow; a FIN marks the end of
  stream and the flow is forgotten once every byte up to it is delivered; an
  RST discards the flow and its buffered holes immediately.  Zero-length
  segments with no flag of interest are keepalives and vanish.

Emitted packets get sequential ids in *emission* order (the reassembler owns
the counter), which is exactly the arrival-order id contract capture replay
and live ingestion make — downstream event streams stay canonically sorted.

Checkpoint/restore mirrors :class:`~repro.streaming.flow.FlowTable`: the
whole reassembler serialises to one JSON-friendly dict in LRU order, and
restoring into a smaller ``max_flows`` drops (and counts) the LRU head, so
serial and parallel pipelines can exchange checkpoints that include
reassembly state.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..streaming.flow import FlowKey
from ..traffic.packet import FiveTuple, Packet

#: Default maximum number of concurrently reassembled flows.
DEFAULT_REASSEMBLY_FLOWS = 1024
#: Default per-flow hole-buffer byte cap.
DEFAULT_MAX_FLOW_BYTES = 65536
#: Default per-flow hole-buffer segment cap.
DEFAULT_MAX_FLOW_SEGMENTS = 128

OVERLAP_POLICIES = ("first", "last")

_SEQ_MASK = 0xFFFFFFFF
_FIN = 0x01
_SYN = 0x02
_RST = 0x04


def _seq_delta(seq: int, reference: int) -> int:
    """Signed 32-bit distance from ``reference`` to ``seq`` (wraparound-safe)."""
    return ((seq - reference + 0x80000000) & _SEQ_MASK) - 0x80000000


@dataclass
class ReassemblyStatistics:
    """Counters for one reassembler (all lifetime totals)."""

    segments_in: int = 0
    packets_out: int = 0
    #: segments passed through untouched (non-TCP or arrival-order flows)
    passthrough: int = 0
    #: segments that had to wait in a hole buffer before delivery
    reordered: int = 0
    #: segments dropped because every byte was already delivered
    retransmits: int = 0
    #: bytes cut from segments by the overlap policy or the delivery point
    overlap_bytes: int = 0
    #: zero-length no-op segments dropped
    keepalives: int = 0
    #: flows force-flushed because a hole-buffer cap was exceeded
    hole_flushes: int = 0
    #: flows LRU-evicted (flushed) to honour ``max_flows``
    evicted_flows: int = 0
    #: flows discarded by an RST
    reset_flows: int = 0
    #: flows that fell back to arrival order (no usable sequence state)
    fallback_flows: int = 0
    #: checkpointed flows dropped at restore time (capacity shrank)
    restore_dropped: int = 0


class _FlowState:
    """Per-flow reassembly state: delivery point plus the hole buffer.

    ``next_off`` is the flow-absolute stream offset delivered so far and
    ``seq_at_next`` the 32-bit sequence number of that position — keeping
    both lets every comparison run on plain unbounded ints while arriving
    segments are placed with wraparound-safe arithmetic.  ``holes`` is a
    sorted list of non-overlapping ``[offset, bytes]`` pieces beyond the
    delivery point; piece boundaries are preserved through delivery so an
    in-order flow passes through with its segmentation intact.
    """

    __slots__ = (
        "key",
        "mode",
        "next_off",
        "seq_at_next",
        "holes",
        "buffered_bytes",
        "fin_off",
        "delivered",
    )

    def __init__(
        self,
        key: FlowKey,
        mode: str,
        seq_at_next: int = 0,
        next_off: int = 0,
        holes: Optional[List[List]] = None,
        fin_off: Optional[int] = None,
        delivered: bool = False,
    ):
        self.key = key
        self.mode = mode  # "seq" or "arrival"
        self.next_off = next_off
        self.seq_at_next = seq_at_next
        self.holes: List[List] = holes if holes is not None else []
        self.buffered_bytes = sum(len(piece[1]) for piece in self.holes)
        self.fin_off = fin_off
        #: True once any byte has reached the scanner — the point after
        #: which the anchor can no longer move backward
        self.delivered = delivered

    def as_dict(self) -> Dict:
        return {
            "key": list(self.key.as_tuple()),
            "mode": self.mode,
            "next_off": self.next_off,
            "seq_at_next": self.seq_at_next,
            "holes": [[offset, data.hex()] for offset, data in self.holes],
            "fin_off": self.fin_off,
            "delivered": self.delivered,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "_FlowState":
        return cls(
            key=FlowKey.coerced(*data["key"]),
            mode=str(data["mode"]),
            seq_at_next=int(data["seq_at_next"]),
            next_off=int(data["next_off"]),
            holes=[
                [int(offset), bytes.fromhex(payload)]
                for offset, payload in data.get("holes", ())
            ],
            fin_off=None if data.get("fin_off") is None else int(data["fin_off"]),
            delivered=bool(data.get("delivered", False)),
        )


class TcpReassembler:
    """Reorder TCP segments by sequence number in front of any scan layer.

    Feed arrival-order packets in, get stream-order packets out — with
    sequential emission-order ids — via :meth:`feed` / :meth:`process`, then
    :meth:`flush_all` once the source is exhausted to deliver whatever is
    still waiting behind holes.
    """

    def __init__(
        self,
        *,
        overlap_policy: str = "first",
        max_flows: int = DEFAULT_REASSEMBLY_FLOWS,
        max_flow_bytes: int = DEFAULT_MAX_FLOW_BYTES,
        max_flow_segments: int = DEFAULT_MAX_FLOW_SEGMENTS,
        first_packet_id: int = 0,
    ):
        if overlap_policy not in OVERLAP_POLICIES:
            raise ValueError(
                f"overlap_policy must be one of {OVERLAP_POLICIES}, "
                f"got {overlap_policy!r}"
            )
        if max_flows < 1:
            raise ValueError(f"max_flows must be at least 1, got {max_flows}")
        if max_flow_bytes < 1:
            raise ValueError(
                f"max_flow_bytes must be at least 1, got {max_flow_bytes}"
            )
        if max_flow_segments < 1:
            raise ValueError(
                f"max_flow_segments must be at least 1, got {max_flow_segments}"
            )
        self.overlap_policy = overlap_policy
        self.max_flows = max_flows
        self.max_flow_bytes = max_flow_bytes
        self.max_flow_segments = max_flow_segments
        self.stats = ReassemblyStatistics()
        self._flows: "OrderedDict[FlowKey, _FlowState]" = OrderedDict()
        self._next_id = first_packet_id

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._flows)

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently waiting in hole buffers across all flows."""
        return sum(state.buffered_bytes for state in self._flows.values())

    # ------------------------------------------------------------------
    def _emit(self, source: Packet, payload: bytes, seq: Optional[int]) -> Packet:
        packet = Packet(
            payload=payload,
            header=source.header,
            packet_id=self._next_id,
            tcp_seq=seq,
        )
        self._next_id += 1
        self.stats.packets_out += 1
        return packet

    def _emit_piece(self, state: _FlowState, template: Packet, data: bytes) -> Packet:
        packet = Packet(
            payload=data,
            header=template.header,
            packet_id=self._next_id,
            tcp_seq=state.seq_at_next,
        )
        self._next_id += 1
        self.stats.packets_out += 1
        state.next_off += len(data)
        state.seq_at_next = (state.seq_at_next + len(data)) & _SEQ_MASK
        state.delivered = True
        return packet

    # ------------------------------------------------------------------
    def feed(self, packet: Packet) -> List[Packet]:
        """Process one arriving packet; return every packet now deliverable.

        The returned list may include flushed segments of *other* flows when
        this arrival LRU-evicted one.
        """
        self.stats.segments_in += 1
        header = packet.header
        if header is None or header.protocol.lower() != "tcp":
            self.stats.passthrough += 1
            return [self._emit(packet, packet.payload, packet.tcp_seq)]

        key = FlowKey.from_header(header)
        out: List[Packet] = []
        state = self._flows.get(key)
        if state is None:
            state = self._create(key, packet, out)
        else:
            self._flows.move_to_end(key)

        if state.mode == "arrival":
            self.stats.passthrough += 1
            out.append(self._emit(packet, packet.payload, packet.tcp_seq))
            return out

        flags = packet.tcp_flags or 0
        if flags & _RST:
            self.stats.reset_flows += 1
            self._flows.pop(key, None)
            return out
        seq = packet.tcp_seq
        if seq is None:
            # a seq-less segment inside a seq flow: deliver at the current
            # point rather than guess (keeps mixed captures flowing)
            if packet.payload:
                out.append(self._emit_piece(state, packet, packet.payload))
            return out
        if flags & _SYN:
            if state.next_off == 0 and not state.holes:
                # (re)anchor an empty flow at the handshake
                state.seq_at_next = (seq + 1) & _SEQ_MASK
            if not packet.payload and not flags & _FIN:
                return out
            seq = (seq + 1) & _SEQ_MASK  # SYN consumes one: data starts after it

        data = packet.payload
        if not data:
            if flags & _FIN:
                rel = _seq_delta(seq, state.seq_at_next)
                state.fin_off = state.next_off + rel
                self._maybe_close(key, state)
            else:
                self.stats.keepalives += 1
            return out

        rel = _seq_delta(seq, state.seq_at_next)
        offset = state.next_off + rel
        end = offset + len(data)
        if offset < state.next_off and not state.delivered:
            # the anchor came from an out-of-order first arrival; nothing
            # has reached the scanner yet, so the stream start moves back
            state.seq_at_next = seq
            state.next_off = offset
        if end <= state.next_off:
            self.stats.retransmits += 1
            return out
        if offset < state.next_off:
            # leading bytes were already delivered and are final
            trim = state.next_off - offset
            self.stats.overlap_bytes += trim
            data = data[trim:]
            offset = state.next_off

        self._insert(state, offset, data)
        if flags & _FIN:
            state.fin_off = end

        if offset > state.next_off:
            self.stats.reordered += 1

        out.extend(self._drain(state, packet))
        if (
            state.buffered_bytes > self.max_flow_bytes
            or len(state.holes) > self.max_flow_segments
        ):
            self.stats.hole_flushes += 1
            out.extend(self._flush_state(state, packet))
        self._maybe_close(key, state)
        return out

    def process(self, packets: Sequence[Packet]) -> List[Packet]:
        """Feed a whole batch; returns the concatenated deliverable packets."""
        out: List[Packet] = []
        for packet in packets:
            out.extend(self.feed(packet))
        return out

    # ------------------------------------------------------------------
    def _create(self, key: FlowKey, packet: Packet, out: List[Packet]) -> _FlowState:
        while len(self._flows) >= self.max_flows:
            _, evicted = self._flows.popitem(last=False)
            self.stats.evicted_flows += 1
            if evicted.holes:
                out.extend(self._flush_evicted(evicted))
        seq = packet.tcp_seq
        flags = packet.tcp_flags or 0
        if seq is None or (seq == 0 and not flags & _SYN):
            # no usable sequence state (UDP-style source or a legacy
            # zero-seq capture): scan in arrival order, never worse than
            # not reassembling
            mode = "arrival"
            self.stats.fallback_flows += 1
            state = _FlowState(key, mode)
        else:
            anchor = (seq + 1) & _SEQ_MASK if flags & _SYN else seq
            state = _FlowState(key, "seq", seq_at_next=anchor)
        self._flows[key] = state
        return state

    def _insert(self, state: _FlowState, offset: int, data: bytes) -> None:
        """Insert one piece into the hole buffer under the overlap policy."""
        holes = state.holes
        if self.overlap_policy == "last":
            # the new bytes win: cut every overlapped range out of the
            # existing pieces, then insert the new piece whole
            replaced: List[List] = []
            end = offset + len(data)
            for piece_off, piece in holes:
                piece_end = piece_off + len(piece)
                if piece_end <= offset or piece_off >= end:
                    replaced.append([piece_off, piece])
                    continue
                if piece_off < offset:
                    replaced.append([piece_off, piece[: offset - piece_off]])
                if piece_end > end:
                    replaced.append([end, piece[end - piece_off:]])
                kept = max(0, min(piece_end, end) - max(piece_off, offset))
                self.stats.overlap_bytes += kept
            replaced.append([offset, data])
            replaced.sort(key=lambda item: item[0])
            state.holes = replaced
        else:
            # "first": bytes that arrived earlier win — trim the new piece
            # around every existing range it overlaps
            pieces: List[List] = [[offset, data]]
            for piece_off, piece in holes:
                piece_end = piece_off + len(piece)
                next_pieces: List[List] = []
                for new_off, new_data in pieces:
                    new_end = new_off + len(new_data)
                    if new_end <= piece_off or new_off >= piece_end:
                        next_pieces.append([new_off, new_data])
                        continue
                    if new_off < piece_off:
                        next_pieces.append([new_off, new_data[: piece_off - new_off]])
                    if new_end > piece_end:
                        next_pieces.append([piece_end, new_data[piece_end - new_off:]])
                    self.stats.overlap_bytes += (
                        min(new_end, piece_end) - max(new_off, piece_off)
                    )
                pieces = next_pieces
                if not pieces:
                    break
            state.holes = sorted(
                holes + [piece for piece in pieces if piece[1]],
                key=lambda item: item[0],
            )
        state.buffered_bytes = sum(len(piece[1]) for piece in state.holes)

    def _drain(self, state: _FlowState, template: Packet) -> List[Packet]:
        """Deliver every piece now contiguous with the delivery point."""
        out: List[Packet] = []
        holes = state.holes
        while holes and holes[0][0] <= state.next_off:
            offset, data = holes.pop(0)
            if offset < state.next_off:  # defensive: policy trimming left none
                data = data[state.next_off - offset:]
            if data:
                out.append(self._emit_piece(state, template, bytes(data)))
        state.buffered_bytes = sum(len(piece[1]) for piece in holes)
        return out

    def _flush_state(self, state: _FlowState, template: Packet) -> List[Packet]:
        """Deliver all buffered pieces in stream order, skipping the gaps."""
        out: List[Packet] = []
        for offset, data in state.holes:
            skipped = offset - state.next_off
            if skipped > 0:
                state.next_off = offset
                state.seq_at_next = (state.seq_at_next + skipped) & _SEQ_MASK
            out.append(self._emit_piece(state, template, bytes(data)))
        state.holes = []
        state.buffered_bytes = 0
        return out

    def _flush_evicted(self, state: _FlowState) -> List[Packet]:
        key = state.key
        header = FiveTuple(
            src_ip=key.src_ip,
            dst_ip=key.dst_ip,
            src_port=key.src_port,
            dst_port=key.dst_port,
            protocol=key.protocol,
        )
        template = Packet(payload=b"", header=header)
        return self._flush_state(state, template)

    def _maybe_close(self, key: FlowKey, state: _FlowState) -> None:
        if (
            state.fin_off is not None
            and state.next_off >= state.fin_off
            and not state.holes
        ):
            self._flows.pop(key, None)

    # ------------------------------------------------------------------
    def flush(self, key: FlowKey) -> List[Packet]:
        """Force-deliver one flow's buffered pieces (the flow stays tracked)."""
        state = self._flows.get(key)
        if state is None or not state.holes:
            return []
        out = self._flush_evicted(state)
        self._maybe_close(key, state)
        return out

    def flush_all(self) -> List[Packet]:
        """Force-deliver every flow's buffered pieces, LRU order first.

        Call once the source is exhausted so data waiting behind a hole that
        will never fill still reaches the scanner.
        """
        out: List[Packet] = []
        for key in list(self._flows):
            out.extend(self.flush(key))
        return out

    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict:
        """Serialise the reassembler (LRU order preserved) to plain data."""
        return {
            "overlap_policy": self.overlap_policy,
            "max_flows": self.max_flows,
            "max_flow_bytes": self.max_flow_bytes,
            "max_flow_segments": self.max_flow_segments,
            "next_packet_id": self._next_id,
            "flows": [state.as_dict() for state in self._flows.values()],
        }

    @classmethod
    def restore(
        cls,
        data: Dict,
        *,
        max_flows: Optional[int] = None,
        overlap_policy: Optional[str] = None,
    ) -> "TcpReassembler":
        """Rebuild a reassembler from :meth:`checkpoint` data.

        Mirrors :meth:`repro.streaming.flow.FlowTable.restore`: ``max_flows``
        (and ``overlap_policy``) override the checkpointed values, and a
        checkpoint holding more flows than fit drops the LRU head — counted
        in ``stats.restore_dropped``, buffered bytes included — so a restore
        never silently raises the memory bound.
        """
        reassembler = cls(
            overlap_policy=(
                str(data["overlap_policy"]) if overlap_policy is None else overlap_policy
            ),
            max_flows=int(data["max_flows"]) if max_flows is None else max_flows,
            max_flow_bytes=int(data["max_flow_bytes"]),
            max_flow_segments=int(data["max_flow_segments"]),
            first_packet_id=int(data.get("next_packet_id", 0)),
        )
        flows = data["flows"]
        overflow = max(0, len(flows) - reassembler.max_flows)
        reassembler.stats.restore_dropped = overflow
        for flow in flows[overflow:]:
            state = _FlowState.from_dict(flow)
            reassembler._flows[state.key] = state
        return reassembler


def reassemble_packets(
    packets: Sequence[Packet], **kwargs
) -> Tuple[List[Packet], ReassemblyStatistics]:
    """One-shot convenience: reassemble a finished packet list.

    Feeds every packet through a fresh :class:`TcpReassembler`, flushes the
    remaining holes, and returns ``(stream_order_packets, stats)``.
    """
    reassembler = TcpReassembler(**kwargs)
    out = reassembler.process(packets)
    out.extend(reassembler.flush_all())
    return out, reassembler.stats


__all__ = [
    "DEFAULT_MAX_FLOW_BYTES",
    "DEFAULT_MAX_FLOW_SEGMENTS",
    "DEFAULT_REASSEMBLY_FLOWS",
    "OVERLAP_POLICIES",
    "ReassemblyStatistics",
    "TcpReassembler",
    "reassemble_packets",
]
