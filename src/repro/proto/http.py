"""Incremental HTTP/1.x request normalizer: the sticky-buffer substrate.

Snort-style rules can pin a content to a *normalized* protocol buffer
(``http_uri``, ``http_header``) instead of the raw byte stream — the only
way to catch ``GET /%63%6d%64.exe`` with a rule for ``/cmd.exe``.  This
module supplies those buffers: :class:`HttpStream` consumes one flow's
*stream-order* bytes (the reassembler's output, or plain arrival order)
incrementally and maintains two append-only normalized views:

* ``uri`` — every request-target seen on the flow, percent-decoded
  (``%XX`` escapes with valid hex are decoded, malformed ones kept
  literal), one per line (``\\n``-separated so request boundaries cannot be
  spanned by accident);
* ``headers`` — every header line, normalized to ``Name: value\\r\\n`` with
  the name and value stripped of surrounding whitespace and internal runs
  of blanks in the value collapsed to one space.

The parser is deliberately conservative: a flow whose first line does not
look like ``METHOD SP TARGET SP HTTP/…`` is marked non-HTTP and never
produces buffers; bodies are skipped via ``Content-Length`` (a chunked or
length-less keep-alive body ends parsing for the flow rather than guessing
at request boundaries).  Both buffers and the pending-line accumulator are
size-capped so a hostile flow cannot grow them without bound.

State is tiny and JSON-serialisable (:meth:`as_dict` / :meth:`from_dict`),
so the confirm stage can carry normalizer state inside its flow checkpoints
— serial and parallel pipelines stay interchangeable.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Parser cap on one accumulated line; beyond it the flow is non-HTTP.
MAX_LINE_BYTES = 4096
#: Cap on each normalized buffer; further data is dropped, not an error.
MAX_BUFFER_BYTES = 16384

_METHODS = (
    b"GET", b"POST", b"HEAD", b"PUT", b"DELETE", b"OPTIONS", b"TRACE",
    b"CONNECT", b"PATCH",
)

#: Sticky-buffer names, in the order the rule grammar accepts them.
HTTP_BUFFERS = ("http_uri", "http_header")


def percent_decode(raw: bytes) -> bytes:
    """Decode ``%XX`` escapes; malformed escapes stay literal."""
    if b"%" not in raw:
        return raw
    out = bytearray()
    index = 0
    length = len(raw)
    while index < length:
        byte = raw[index]
        if byte == 0x25 and index + 2 < length:
            try:
                out.append(int(raw[index + 1:index + 3], 16))
                index += 3
                continue
            except ValueError:
                pass
        out.append(byte)
        index += 1
    return bytes(out)


def _normalize_header_line(line: bytes) -> Optional[bytes]:
    """``Name: value`` with stripped name/value and collapsed blanks."""
    colon = line.find(b":")
    if colon < 1:
        return None
    name = line[:colon].strip()
    value = b" ".join(line[colon + 1:].split())
    return name + b": " + value + b"\r\n"


class HttpStream:
    """One flow's incremental HTTP/1.x request-line + header normalizer."""

    __slots__ = ("_state", "_line", "_body_left", "_uri", "_headers", "requests")

    #: parser states
    _REQUEST = 0
    _HEADERS = 1
    _BODY = 2
    _OPAQUE = 3  # not HTTP (or unparseable): buffers are frozen

    def __init__(self):
        self._state = self._REQUEST
        self._line = b""
        self._body_left = 0
        self._uri = b""
        self._headers = b""
        self.requests = 0

    # ------------------------------------------------------------------
    @property
    def uri(self) -> bytes:
        """The normalized URI buffer (empty until a request line parsed)."""
        return self._uri

    @property
    def headers(self) -> bytes:
        """The normalized header buffer."""
        return self._headers

    @property
    def is_http(self) -> bool:
        """True once at least one request line has parsed."""
        return self.requests > 0

    def buffer(self, name: str) -> bytes:
        """The normalized buffer for a sticky-buffer name."""
        if name == "http_uri":
            return self._uri
        if name == "http_header":
            return self._headers
        raise ValueError(f"unknown HTTP buffer {name!r}")

    # ------------------------------------------------------------------
    def feed(self, data: bytes) -> bool:
        """Consume the flow's next stream-order bytes.

        Returns True when either normalized buffer grew (the confirm stage
        uses this to re-check buffer-targeted rules only when needed).
        """
        if self._state == self._OPAQUE or not data:
            return False
        before = len(self._uri) + len(self._headers)
        position = 0
        length = len(data)
        while position < length and self._state != self._OPAQUE:
            if self._state == self._BODY:
                skip = min(self._body_left, length - position)
                self._body_left -= skip
                position += skip
                if self._body_left == 0:
                    self._state = self._REQUEST
                continue
            newline = data.find(b"\n", position)
            if newline < 0:
                self._line += data[position:]
                if len(self._line) > MAX_LINE_BYTES:
                    self._state = self._OPAQUE
                break
            line = self._line + data[position:newline]
            self._line = b""
            position = newline + 1
            if len(line) > MAX_LINE_BYTES:
                self._state = self._OPAQUE
                break
            self._consume_line(line.rstrip(b"\r"))
        return len(self._uri) + len(self._headers) > before

    def _consume_line(self, line: bytes) -> None:
        if self._state == self._REQUEST:
            if not line:  # tolerate blank lines between pipelined requests
                return
            parts = line.split()
            if (
                len(parts) != 3
                or parts[0] not in _METHODS
                or not parts[2].startswith(b"HTTP/")
            ):
                self._state = self._OPAQUE
                return
            uri = percent_decode(parts[1])
            if len(self._uri) < MAX_BUFFER_BYTES:
                self._uri += uri + b"\n"
            self.requests += 1
            self._body_left = 0
            self._state = self._HEADERS
            return
        # headers
        if not line:  # end of the header block
            if self._body_left > 0:
                self._state = self._BODY
            elif self._body_left < 0:
                self._state = self._OPAQUE  # chunked/unknown body framing
            else:
                self._state = self._REQUEST
            return
        normalized = _normalize_header_line(line)
        if normalized is None:
            self._state = self._OPAQUE
            return
        if len(self._headers) < MAX_BUFFER_BYTES:
            self._headers += normalized
        lowered = normalized.lower()
        if lowered.startswith(b"content-length:"):
            try:
                self._body_left = int(normalized.split(b":", 1)[1])
            except ValueError:
                self._state = self._OPAQUE
        elif lowered.startswith(b"transfer-encoding:") and b"chunked" in lowered:
            self._body_left = -1  # flag: unframeable body

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict:
        return {
            "state": self._state,
            "line": self._line.hex(),
            "body_left": self._body_left,
            "uri": self._uri.hex(),
            "headers": self._headers.hex(),
            "requests": self.requests,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "HttpStream":
        stream = cls()
        stream._state = int(data["state"])
        stream._line = bytes.fromhex(data["line"])
        stream._body_left = int(data["body_left"])
        stream._uri = bytes.fromhex(data["uri"])
        stream._headers = bytes.fromhex(data["headers"])
        stream.requests = int(data.get("requests", 0))
        return stream


__all__ = ["HTTP_BUFFERS", "HttpStream", "MAX_BUFFER_BYTES", "percent_decode"]
