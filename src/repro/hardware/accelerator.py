"""The complete hardware accelerator: multiple string matching blocks.

For a ruleset that needs ``g`` blocks (one block per string group), the
device's ``B`` blocks are organised into ``B // g`` *packet groups*: every
block inside a packet group holds a different share of the ruleset and all of
them scan the same packets, while different packet groups scan different
packets concurrently.  With a single-block ruleset (g = 1) every block works
independently and throughput is maximised — the configuration behind the
44.2 Gbps figure in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..backend import FlowState, MatchList
from ..core.accelerator_config import AcceleratorProgram
from ..fpga.devices import FPGADevice
from ..fpga.throughput import accelerator_throughput_gbps
from ..traffic.packet import MatchEvent, Packet
from .block import ENGINES_PER_BLOCK, StringMatchingBlock


@dataclass
class AcceleratorScanResult:
    """Aggregate result of scanning a packet batch on the full accelerator."""

    events: List[MatchEvent]
    engine_cycles: int
    bytes_processed: int
    packet_groups: int
    blocks_per_group: int

    @property
    def active_engines(self) -> int:
        return self.packet_groups * ENGINES_PER_BLOCK

    @property
    def bytes_per_engine_cycle(self) -> float:
        """Payload bytes consumed per engine cycle, over the engines scanning
        *distinct* packets (blocks within a group scan the same bytes)."""
        if self.engine_cycles == 0:
            return 0.0
        return self.bytes_processed / (self.engine_cycles * self.active_engines)

    def throughput_gbps(self, memory_fmax_mhz: float) -> float:
        """Observed throughput if engine cycles ran at ``fmax / 3``."""
        engine_clock_hz = memory_fmax_mhz * 1e6 / 3.0
        if self.engine_cycles == 0:
            return 0.0
        seconds = self.engine_cycles / engine_clock_hz
        return self.bytes_processed * 8 / seconds / 1e9

    def events_for_packet(self, packet_id: int) -> List[MatchEvent]:
        return [event for event in self.events if event.packet_id == packet_id]


class HardwareAccelerator:
    """Cycle-level model of the multi-block accelerator.

    The model also honours the :class:`repro.backend.CompiledProgram`
    protocol so the IDS and any other consumer can treat it as one more
    backend: per-payload :meth:`match`/:meth:`scan_packets` run the full
    cycle-accurate pipeline (engines, memory ports, match schedulers), while
    the resumable :meth:`scan_from` path delegates to the compiled program —
    the cycle model contributes timing, never its own copy of the matching
    semantics.
    """

    backend_name = "dtp"

    def __init__(self, program: AcceleratorProgram, device: Optional[FPGADevice] = None):
        self.program = program
        self.device = device or program.device
        self.blocks_per_group = program.blocks_per_group
        self.packet_groups = self.device.num_matching_blocks // self.blocks_per_group
        if self.packet_groups < 1:
            raise ValueError(
                f"device {self.device.family} has {self.device.num_matching_blocks} blocks "
                f"but the program needs {self.blocks_per_group} per group"
            )
        # One set of StringMatchingBlocks per packet group, each loaded with
        # the same compiled program (the replication the paper describes).
        self.groups: List[List[StringMatchingBlock]] = [
            [
                StringMatchingBlock(block_program, block_id=group * self.blocks_per_group + index)
                for index, block_program in enumerate(program.blocks)
            ]
            for group in range(self.packet_groups)
        ]

    # ------------------------------------------------------------------
    @property
    def total_blocks_used(self) -> int:
        return self.packet_groups * self.blocks_per_group

    def idle_blocks(self) -> int:
        """Blocks that cannot be used because the group size does not divide evenly."""
        return self.device.num_matching_blocks - self.total_blocks_used

    def nominal_throughput_gbps(self) -> float:
        return accelerator_throughput_gbps(
            self.device.memory_fmax_mhz,
            self.device.num_matching_blocks,
            self.blocks_per_group,
        )

    # ------------------------------------------------------------------
    def scan(self, packets):
        """Scan ``packets``: round-robin across packet groups, merge matches.

        Accepts either a packet batch (returning the cycle-level
        :class:`AcceleratorScanResult`) or, per the
        :class:`repro.backend.CompiledProgram` protocol, one raw payload
        (returning its match list) — a ``bytes`` value is never a packet
        sequence, so the dispatch is unambiguous.
        """
        if isinstance(packets, (bytes, bytearray, memoryview)):
            return self.match(bytes(packets))
        per_group_packets: List[List[Packet]] = [[] for _ in range(self.packet_groups)]
        for index, packet in enumerate(packets):
            per_group_packets[index % self.packet_groups].append(packet)

        events: List[MatchEvent] = []
        max_cycles = 0
        bytes_processed = 0
        for group, group_packets in zip(self.groups, per_group_packets):
            if not group_packets:
                continue
            group_cycles = 0
            for block in group:
                result = block.scan_packets(group_packets)
                events.extend(result.events)
                group_cycles = max(group_cycles, result.engine_cycles)
            bytes_processed += sum(len(packet.payload) for packet in group_packets)
            max_cycles = max(max_cycles, group_cycles)

        # Deduplicate events: blocks inside a group hold disjoint string
        # groups, so duplicates only arise if the same packet was scanned by
        # several groups (never the case here), but be defensive.
        unique = sorted(
            set((e.packet_id, e.end_offset, e.string_number) for e in events)
        )
        merged = [
            MatchEvent(packet_id=p, end_offset=o, string_number=n) for p, o, n in unique
        ]
        return AcceleratorScanResult(
            events=merged,
            engine_cycles=max_cycles,
            bytes_processed=bytes_processed,
            packet_groups=self.packet_groups,
            blocks_per_group=self.blocks_per_group,
        )

    # ------------------------------------------------------------------
    # CompiledProgram protocol surface (cycle-accurate where possible)
    # ------------------------------------------------------------------
    @property
    def patterns(self) -> Tuple[bytes, ...]:
        return self.program.patterns

    def match(self, payload: bytes) -> MatchList:
        """Scan one payload through the cycle model; report (offset, number)."""
        result = self.scan([Packet(payload=payload, packet_id=0)])
        return [(event.end_offset, event.string_number) for event in result.events]

    def scan_packets(self, payloads: Iterable[bytes]) -> List[MatchList]:
        """Scan several payloads through the cycle model, one result list each."""
        packets = [
            Packet(payload=payload, packet_id=index)
            for index, payload in enumerate(payloads)
        ]
        result = self.scan(packets)
        per_packet: List[MatchList] = [[] for _ in packets]
        for event in result.events:
            per_packet[event.packet_id].append((event.end_offset, event.string_number))
        return per_packet

    def initial_scan_states(self, offset: int = 0) -> FlowState:
        return self.program.initial_scan_states(offset=offset)

    def scan_from(self, states, chunk: bytes):
        """Resumable streaming scan.

        Delegated to the compiled program: the per-engine flow checkpointing
        the hardware exposes (:meth:`StringMatchingEngine.resume_flow`) is
        not yet driven by a flow-aware scheduler, and the functional result
        is identical by construction.
        """
        return self.program.scan_from(states, chunk)

    # ------------------------------------------------------------------
    def alerts_by_sid(self, result: AcceleratorScanResult) -> Dict[int, List[MatchEvent]]:
        """Group match events by the rule sid they correspond to."""
        number_to_sid = self.program.string_number_to_sid()
        alerts: Dict[int, List[MatchEvent]] = {}
        for event in result.events:
            sid = number_to_sid[event.string_number]
            alerts.setdefault(sid, []).append(event)
        return alerts
