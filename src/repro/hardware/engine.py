"""Cycle-level model of one string matching engine (Section IV.C / Figure 5).

The engine is a short pipeline built around registers for the input
character, the previous two input characters, the state information returned
from the search structure memory and the default transition information from
the lookup table:

* cycle ``n``   — the payload byte is presented; its default transition
  information is read from the lookup table and both are registered.
* cycle ``n+1`` — the registered byte is compared against the pointers of the
  current state (whose word arrived from memory in the same cycle); the
  winning pointer (or default) addresses the next state, whose memory word is
  requested.  One byte is consumed every cycle, unconditionally.

A match is signalled when the state just entered has its match bit set; the
match-memory address and engine number are handed to the match scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .image import BlockImage, LookupEntry, StateAddress, StateEntry
from .memory import DualPortMemory


@dataclass
class EngineMatch:
    """A raw match signal produced by an engine (before the scheduler)."""

    engine_id: int
    packet_id: int
    end_offset: int           # offset one past the matching byte
    match_address: int        # address in the matching-string-number memory


@dataclass(frozen=True)
class EngineFlowState:
    """Checkpoint of an engine's architectural registers between segments.

    Saving these four registers when a flow's segment ends and restoring them
    when its next segment is scheduled (possibly on a different engine) makes
    the engine behave as if the flow's byte stream had never been
    interrupted — the hardware analogue of
    :class:`repro.core.dtp_automaton.ScanState`.
    """

    address: StateAddress
    prev1: Optional[int]
    prev2: Optional[int]
    offset: int


@dataclass
class EngineStatistics:
    cycles: int = 0
    bytes_processed: int = 0
    state_reads: int = 0
    lookup_reads: int = 0
    matches_signalled: int = 0

    @property
    def bytes_per_cycle(self) -> float:
        return self.bytes_processed / self.cycles if self.cycles else 0.0


class StringMatchingEngine:
    """One of the six engines inside a string matching block."""

    def __init__(
        self,
        engine_id: int,
        image: BlockImage,
        state_memory: DualPortMemory,
        lookup_memory: DualPortMemory,
        port: int,
    ):
        self.engine_id = engine_id
        self.image = image
        self.state_memory = state_memory
        self.lookup_memory = lookup_memory
        self.port = port
        self.stats = EngineStatistics()
        # architectural registers
        self._current_address: StateAddress = image.root_address
        self._current_entry: StateEntry = image.states[image.root_address]
        self._prev1: Optional[int] = None
        self._prev2: Optional[int] = None
        self._packet_id: Optional[int] = None
        self._offset = 0

    # ------------------------------------------------------------------
    def start_packet(self, packet_id: int) -> None:
        """Assert the start signal: reset state and character history."""
        self._current_address = self.image.root_address
        self._current_entry = self.image.states[self.image.root_address]
        self._prev1 = None
        self._prev2 = None
        self._packet_id = packet_id
        self._offset = 0

    def export_flow_state(self) -> EngineFlowState:
        """Checkpoint the registers of the flow currently occupying the engine."""
        if self._packet_id is None:
            raise RuntimeError("no packet in flight; nothing to checkpoint")
        return EngineFlowState(
            address=self._current_address,
            prev1=self._prev1,
            prev2=self._prev2,
            offset=self._offset,
        )

    def resume_flow(self, state: EngineFlowState, packet_id: int) -> None:
        """Load a checkpointed flow: restore registers instead of resetting them."""
        self._current_address = state.address
        self._current_entry = self.image.states[state.address]
        self._prev1 = state.prev1
        self._prev2 = state.prev2
        self._packet_id = packet_id
        self._offset = state.offset

    def process_byte(self, byte: int, cycle: int) -> Optional[EngineMatch]:
        """Consume one payload byte during engine ``cycle``.

        Returns a match signal when the state entered has its match bit set.
        """
        if self._packet_id is None:
            raise RuntimeError("start_packet must be called before process_byte")
        if not 0 <= byte <= 0xFF:
            raise ValueError(f"byte {byte} out of range")

        lookup_entry: LookupEntry = self.lookup_memory.read(byte, self.port, cycle)
        self.stats.lookup_reads += 1

        # matching semantics are delegated to the block image (the engine
        # model only contributes timing and memory-bandwidth accounting)
        next_address = self.image.resolve_transition(
            self._current_entry, lookup_entry, byte, self._prev1, self._prev2
        )
        next_entry: StateEntry = self.state_memory.read(next_address, self.port, cycle)
        self.stats.state_reads += 1

        self._prev2 = self._prev1
        self._prev1 = byte
        self._current_address = next_address
        self._current_entry = next_entry
        self._offset += 1
        self.stats.cycles += 1
        self.stats.bytes_processed += 1

        if next_entry.match_address is not None:
            self.stats.matches_signalled += 1
            return EngineMatch(
                engine_id=self.engine_id,
                packet_id=self._packet_id,
                end_offset=self._offset,
                match_address=next_entry.match_address,
            )
        return None

    # ------------------------------------------------------------------
    @property
    def current_address(self) -> StateAddress:
        return self._current_address
