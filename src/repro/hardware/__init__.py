"""Cycle-level hardware architecture simulation (engines, blocks, accelerator)."""

from .accelerator import AcceleratorScanResult, HardwareAccelerator
from .block import ENGINES_PER_BLOCK, ENGINES_PER_PORT, BlockScanResult, StringMatchingBlock
from .engine import EngineFlowState, EngineMatch, EngineStatistics, StringMatchingEngine
from .image import BlockImage, LookupEntry, StateEntry, build_block_image
from .memory import DualPortMemory, PortOversubscribedError, PortStatistics
from .scheduler import MatchScheduler, SchedulerStatistics

__all__ = [
    "AcceleratorScanResult",
    "HardwareAccelerator",
    "ENGINES_PER_BLOCK",
    "ENGINES_PER_PORT",
    "BlockScanResult",
    "StringMatchingBlock",
    "EngineFlowState",
    "EngineMatch",
    "EngineStatistics",
    "StringMatchingEngine",
    "BlockImage",
    "LookupEntry",
    "StateEntry",
    "build_block_image",
    "DualPortMemory",
    "PortOversubscribedError",
    "PortStatistics",
    "MatchScheduler",
    "SchedulerStatistics",
]
