"""Memory models for the hardware simulation.

The string matching block uses true dual-port memories running at three times
the engine clock; three engines share each port, so every engine is
guaranteed one read per engine cycle on its port and the read data returns on
the following engine cycle (Section IV.B).  The model tracks per-cycle access
counts so tests can assert that the architecture never needs more bandwidth
than the time-multiplexed port provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Hashable, List, Tuple, TypeVar

Key = TypeVar("Key", bound=Hashable)
Value = TypeVar("Value")


class PortOversubscribedError(RuntimeError):
    """Raised when more engines read a port in one cycle than it can serve."""


@dataclass
class PortStatistics:
    """Access accounting for one memory port."""

    reads: int = 0
    busiest_cycle: int = 0
    max_reads_in_cycle: int = 0


class DualPortMemory(Generic[Key, Value]):
    """A keyed true dual-port memory with per-engine-cycle bandwidth limits.

    ``reads_per_cycle_per_port`` is 3 in the paper's architecture (memory
    clock = 3 x engine clock).  The content is stored as a dictionary so the
    same class serves the 324-bit state machine memory (keyed by
    (word, type)), the lookup table (keyed by character) and the match-number
    memory (keyed by address).
    """

    def __init__(
        self,
        contents: Dict[Key, Value],
        name: str = "memory",
        reads_per_cycle_per_port: int = 3,
        ports: int = 2,
    ):
        if reads_per_cycle_per_port < 1:
            raise ValueError(
                f"reads_per_cycle_per_port must be positive, got {reads_per_cycle_per_port}"
            )
        if ports < 1:
            raise ValueError(f"ports must be positive, got {ports}")
        self.name = name
        self._contents = dict(contents)
        self.reads_per_cycle_per_port = reads_per_cycle_per_port
        self.ports = ports
        self._cycle_reads: Dict[Tuple[int, int], int] = {}
        self.port_stats: List[PortStatistics] = [PortStatistics() for _ in range(ports)]

    def __len__(self) -> int:
        return len(self._contents)

    def __contains__(self, key: Key) -> bool:
        return key in self._contents

    def read(self, key: Key, port: int, cycle: int) -> Value:
        """Read ``key`` through ``port`` during engine ``cycle``."""
        if not 0 <= port < self.ports:
            raise ValueError(f"{self.name}: invalid port {port}")
        slot = (port, cycle)
        used = self._cycle_reads.get(slot, 0)
        if used >= self.reads_per_cycle_per_port:
            raise PortOversubscribedError(
                f"{self.name}: port {port} already served {used} reads in cycle "
                f"{cycle} (limit {self.reads_per_cycle_per_port})"
            )
        self._cycle_reads[slot] = used + 1
        stats = self.port_stats[port]
        stats.reads += 1
        if used + 1 > stats.max_reads_in_cycle:
            stats.max_reads_in_cycle = used + 1
            stats.busiest_cycle = cycle
        try:
            return self._contents[key]
        except KeyError as exc:
            raise KeyError(f"{self.name}: no word at {key!r}") from exc

    def write(self, key: Key, value: Value) -> None:
        """Configuration-time write (rule updates); not bandwidth limited."""
        self._contents[key] = value

    def reset_cycle_tracking(self) -> None:
        """Start a new scan: cycle numbering restarts at zero.

        Cumulative read statistics are preserved; only the per-cycle
        bandwidth accounting is cleared.
        """
        self._cycle_reads.clear()

    def total_reads(self) -> int:
        return sum(stats.reads for stats in self.port_stats)
