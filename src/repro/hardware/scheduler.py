"""Match scheduler model (Section IV.B).

Engines only signal "a matching state was entered" together with the address
of its matching-string-number list; turning that into actual string numbers
is the job of the match scheduler, which owns the second port's worth of
bandwidth into the match-number memory.  It buffers pending match addresses
(the paper's buffer covers the three engines sharing a port), then walks each
list one word per memory cycle until the stop bit, emitting two string
numbers per word.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Tuple

from ..core.match_memory import EMPTY_SLOT
from ..traffic.packet import MatchEvent
from .engine import EngineMatch


@dataclass
class SchedulerStatistics:
    matches_buffered: int = 0
    words_read: int = 0
    events_emitted: int = 0
    max_buffer_depth: int = 0


class MatchScheduler:
    """Walks matching-string-number lists for the engines it serves."""

    def __init__(self, match_words: Dict[int, Tuple[int, int, bool]]):
        self._match_words = match_words
        self._queue: Deque[EngineMatch] = deque()
        self.stats = SchedulerStatistics()

    # ------------------------------------------------------------------
    def push(self, match: EngineMatch) -> None:
        """Buffer a match signalled by an engine."""
        self._queue.append(match)
        self.stats.matches_buffered += 1
        self.stats.max_buffer_depth = max(self.stats.max_buffer_depth, len(self._queue))

    def pending(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    def step(self) -> List[MatchEvent]:
        """Process the match at the head of the buffer to completion.

        The hardware walks one word per memory cycle; the model processes a
        whole list per call and accounts the number of words read, which is
        what the latency/bandwidth statistics need.
        """
        if not self._queue:
            return []
        match = self._queue.popleft()
        events: List[MatchEvent] = []
        address = match.match_address
        while True:
            try:
                first, second, last = self._match_words[address]
            except KeyError as exc:
                raise KeyError(f"match memory has no word at address {address}") from exc
            self.stats.words_read += 1
            for raw in (first, second):
                if raw == EMPTY_SLOT:
                    continue
                events.append(
                    MatchEvent(
                        packet_id=match.packet_id,
                        end_offset=match.end_offset,
                        string_number=raw,
                    )
                )
            if last:
                break
            address += 1
        self.stats.events_emitted += len(events)
        return events

    def drain(self) -> List[MatchEvent]:
        """Process every buffered match."""
        events: List[MatchEvent] = []
        while self._queue:
            events.extend(self.step())
        return events
