"""Cycle-level model of a string matching block (Section IV.B / Figure 4).

A block owns three true dual-port memories (state machine, lookup table,
match numbers) and six string matching engines.  Three engines share each
memory port; because the memories run at three times the engine clock, every
engine gets exactly one state-machine read and one lookup read per engine
cycle, which is what guarantees one payload byte per engine per cycle.

The block model scans packets, checks the bandwidth guarantee through the
:class:`repro.hardware.memory.DualPortMemory` accounting, collects matches
through per-port match schedulers and reports throughput statistics in
bytes per engine cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.accelerator_config import BlockProgram
from ..traffic.packet import MatchEvent, Packet
from .engine import StringMatchingEngine
from .image import BlockImage, build_block_image
from .memory import DualPortMemory
from .scheduler import MatchScheduler

ENGINES_PER_BLOCK = 6
ENGINES_PER_PORT = 3


@dataclass
class BlockScanResult:
    """Outcome of scanning a batch of packets on one block."""

    events: List[MatchEvent]
    engine_cycles: int
    bytes_processed: int

    @property
    def bytes_per_engine_cycle(self) -> float:
        if self.engine_cycles == 0:
            return 0.0
        return self.bytes_processed / (self.engine_cycles * ENGINES_PER_BLOCK)

    def events_for_packet(self, packet_id: int) -> List[MatchEvent]:
        return [event for event in self.events if event.packet_id == packet_id]


class StringMatchingBlock:
    """One string matching block loaded with a compiled block program."""

    def __init__(self, program: BlockProgram, block_id: int = 0):
        self.block_id = block_id
        self.program = program
        self.image: BlockImage = build_block_image(program)
        self.state_memory: DualPortMemory = DualPortMemory(
            self.image.states, name=f"block{block_id}.state_machine"
        )
        self.lookup_memory: DualPortMemory = DualPortMemory(
            self.image.lookup, name=f"block{block_id}.lookup_table"
        )
        self.engines: List[StringMatchingEngine] = [
            StringMatchingEngine(
                engine_id=index,
                image=self.image,
                state_memory=self.state_memory,
                lookup_memory=self.lookup_memory,
                port=index // ENGINES_PER_PORT,
            )
            for index in range(ENGINES_PER_BLOCK)
        ]
        self.schedulers: List[MatchScheduler] = [
            MatchScheduler(self.image.match_words) for _ in range(2)
        ]

    # ------------------------------------------------------------------
    def scan_packets(self, packets: Sequence[Packet]) -> BlockScanResult:
        """Scan ``packets``, six at a time (one per engine), cycle by cycle."""
        events: List[MatchEvent] = []
        total_cycles = 0
        total_bytes = 0
        # cycle numbering restarts for every scan; clear the per-cycle
        # bandwidth accounting (cumulative statistics are preserved)
        self.state_memory.reset_cycle_tracking()
        self.lookup_memory.reset_cycle_tracking()

        for wave_start in range(0, len(packets), ENGINES_PER_BLOCK):
            wave = packets[wave_start:wave_start + ENGINES_PER_BLOCK]
            for engine, packet in zip(self.engines, wave):
                engine.start_packet(packet.packet_id)
            wave_length = max(len(packet.payload) for packet in wave) if wave else 0
            for cycle in range(wave_length):
                global_cycle = total_cycles + cycle
                for engine, packet in zip(self.engines, wave):
                    if cycle >= len(packet.payload):
                        continue
                    match = engine.process_byte(packet.payload[cycle], global_cycle)
                    total_bytes += 1
                    if match is not None:
                        self.schedulers[engine.port].push(match)
                # the match schedulers work concurrently with scanning
                for scheduler in self.schedulers:
                    events.extend(scheduler.step())
            total_cycles += wave_length

        for scheduler in self.schedulers:
            events.extend(scheduler.drain())
        events.sort(key=lambda e: (e.packet_id, e.end_offset, e.string_number))
        return BlockScanResult(
            events=events, engine_cycles=total_cycles, bytes_processed=total_bytes
        )

    # ------------------------------------------------------------------
    def matches_as_tuples(self, result: BlockScanResult) -> List[Tuple[int, int, int]]:
        """(packet_id, end_offset, string_number) triples, convenient for tests."""
        return [(e.packet_id, e.end_offset, e.string_number) for e in result.events]
