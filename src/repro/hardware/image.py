"""Hardware memory images: what actually gets loaded into a string matching block.

The compiler (:mod:`repro.core.accelerator_config`) produces logical
structures (packed state machine, lookup table, match memory).  This module
lowers them to the address-level view the hardware works with:

* states are identified by their *(word address, state type)* pair — exactly
  the 12+4 bits a transition pointer stores;
* the lookup table maps a character to its depth-1/2/3 default information,
  where each default refers to a fixed state address;
* the match memory maps an 11-bit address to two string numbers plus the
  stop bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..automata.trie import ROOT
from ..core.accelerator_config import BlockProgram

StateAddress = Tuple[int, int]  # (word address, state type id)


@dataclass
class StateEntry:
    """Decoded contents of one state as the engine sees it."""

    pointers: Dict[int, StateAddress] = field(default_factory=dict)
    match_address: Optional[int] = None


@dataclass
class LookupEntry:
    """Default-transition information returned by the lookup table for one character."""

    d1_address: Optional[StateAddress]                 # None -> start state
    d2: List[Tuple[int, StateAddress]] = field(default_factory=list)
    d3: Optional[Tuple[int, int, StateAddress]] = None  # (prev2, prev1, address)


@dataclass
class BlockImage:
    """Everything one string matching block needs at run time."""

    root_address: StateAddress
    states: Dict[StateAddress, StateEntry]
    lookup: Dict[int, LookupEntry]
    match_words: Dict[int, Tuple[int, int, bool]]
    string_numbers: Dict[int, int]
    state_machine_words: int

    def state_count(self) -> int:
        return len(self.states)

    def resolve_transition(
        self,
        entry: StateEntry,
        lookup_entry: LookupEntry,
        byte: int,
        prev1: Optional[int],
        prev2: Optional[int],
    ) -> StateAddress:
        """The comparator blocks of Figure 5: explicit pointer, else default.

        This is the single address-level implementation of the DTP matching
        semantics; the cycle-level engine delegates here so its model adds
        *timing* (register stages, memory-port accounting) but never its own
        copy of the match logic.
        """
        pointer = entry.pointers.get(byte)
        if pointer is not None:
            return pointer
        d3 = lookup_entry.d3
        if d3 is not None and prev2 == d3[0] and prev1 == d3[1]:
            return d3[2]
        for preceding, address in lookup_entry.d2:
            if prev1 == preceding:
                return address
        if lookup_entry.d1_address is not None:
            return lookup_entry.d1_address
        return self.root_address


def build_block_image(program: BlockProgram) -> BlockImage:
    """Lower a compiled :class:`BlockProgram` to its hardware image."""
    packed = program.packed
    dtp = program.dtp

    address_of: Dict[int, StateAddress] = {
        state_id: packed.address_of(state_id) for state_id in packed.placements
    }

    states: Dict[StateAddress, StateEntry] = {}
    for state_id, record in packed.records.items():
        entry = StateEntry(match_address=record.match_address)
        for char, target in record.pointers:
            entry.pointers[char] = address_of[target]
        states[address_of[state_id]] = entry

    lookup: Dict[int, LookupEntry] = {}
    defaults = dtp.defaults
    for byte in range(len(defaults.d1)):
        depth1 = int(defaults.d1[byte])
        entry = LookupEntry(
            d1_address=address_of[depth1] if depth1 != ROOT else None
        )
        for d2 in defaults.d2.get(byte, []):
            entry.d2.append((d2.preceding_byte, address_of[d2.state]))
        d3 = defaults.d3.get(byte)
        if d3 is not None:
            entry.d3 = (d3.preceding_bytes[0], d3.preceding_bytes[1], address_of[d3.state])
        lookup[byte] = entry

    match_words = {
        address: word for address, word in enumerate(program.match_memory.words)
    }

    return BlockImage(
        root_address=address_of[ROOT],
        states=states,
        lookup=lookup,
        match_words=match_words,
        string_numbers=dict(program.string_numbers),
        state_machine_words=packed.num_words,
    )
