"""Command line interface: ``repro-dpi`` / ``python -m repro``.

Subcommands map one-to-one onto the paper's artefacts so every table and
figure can be regenerated from a shell:

* ``generate-ruleset`` — synthesise a Snort-like ruleset and dump it to disk;
* ``compile``          — compile a ruleset for a device and print statistics;
* ``scan``             — scan synthetic traffic (cycle-level hardware model for
  the ``dtp`` backend, functional scan for every other backend);
* ``scan-stream``      — stateful flow scanning: patterns split across packets;
* ``scan-pcap``        — replay a pcap/pcapng capture through the scan service;
* ``serve``            — scan a *live* source: TCP/UDP socket listeners or a
  tail-followed pcap capture, batched through the same scan service;
* ``ids``              — the end-to-end mini IDS over streamed flows (takes
  ``--pcap`` to run on a capture instead of synthetic flows);
* ``run``              — execute a declarative pipeline config file (JSON or
  TOML) through :class:`repro.api.Session`;
* ``lint``             — lint a ruleset (shadowed/duplicate patterns, sid
  conflicts, hardware-capacity overruns) or, with ``--code``, run the CLI
  error-idiom AST checker over source paths;
* ``verify``           — statically prove a compiled program correct (DTP
  pruning exactness, packing round-trips, cross-backend equivalence) without
  scanning a byte of traffic;
* ``table1`` / ``table2`` / ``table3`` — regenerate the paper's tables;
* ``fig6`` / ``fig7`` / ``fig8``       — regenerate the paper's figures as text.

The scanning subcommands are thin adapters: each builds a
:class:`repro.api.PipelineConfig` from its flags and delegates construction
to :class:`repro.api.Session`, so the CLI, the config-file path (``run``)
and programmatic use share one composition of sources, rules, engines and
sinks.  ``scan``, ``scan-stream``, ``scan-pcap`` and ``ids`` take
``--backend`` with any name from :mod:`repro.backend` (``dtp``, ``dense``,
``bitmap``, ``path``, ``wu-manber``, ``ac``); every backend is driven
through the same :class:`repro.backend.CompiledProgram` protocol, so the
reported match sets are identical by construction.

Error idiom: bad input *values* (a negative count, a corrupt capture, an
unparseable rule) raise their raw ``ValueError``-family tracebacks;
empty-result and flag-combination errors print one line to stderr and
exit 1.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from .analysis.metrics import (
    PAPER_TABLE1_REFERENCE,
    PAPER_TABLE2_REFERENCE,
    PAPER_TABLE3_REFERENCE,
    TABLE2_CYCLONE_SIZES,
    TABLE2_STRATIX_SIZES,
    power_curves,
    table1_row,
    table2_row,
    table3_rows,
)
from .analysis.tables import ascii_chart, format_histogram, format_table
from .api import (
    EmptyRulesetError,
    EngineSpec,
    PipelineConfig,
    RulesSpec,
    Session,
    SinkSpec,
    SourceSpec,
    load_config,
    repro_version,
)
from .backend import backend_names
from .core.accelerator_config import compile_ruleset
from .fpga.devices import CYCLONE_III, DEVICES, STRATIX_III, get_device
from .proto.reassembly import OVERLAP_POLICIES
from .rulesets.generator import generate_paper_rulesets, generate_snort_like_ruleset
from .rulesets.reducer import reduce_to_character_count
from .streaming.scanner import StreamScanner


def _add_ruleset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--size", type=int, default=634, help="number of strings")
    parser.add_argument("--seed", type=int, default=2010, help="generation seed")


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default="dtp",
        choices=backend_names(),
        help="matcher backend (all report identical match sets)",
    )


def _add_reassembly_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--reassemble", action="store_true",
        help="order TCP segments by sequence number before scanning "
             "(the repro.proto reassembler; non-TCP traffic passes through)",
    )
    parser.add_argument(
        "--overlap-policy", default="first", choices=sorted(OVERLAP_POLICIES),
        help="with --reassemble: which copy wins when a retransmitted "
             "TCP segment disagrees with already-buffered bytes",
    )


def _print_reassembly_summary(session) -> None:
    """One gauge line when the reassembler ran (shared by the scan commands)."""
    stats = session.stats().get("reassembly")
    if stats is None:
        return
    print(
        f"reassembled               : {stats['segments_in']} segments -> "
        f"{stats['packets_out']} packets "
        f"(reordered={stats['reordered']}, retransmits={stats['retransmits']}, "
        f"hole_flushes={stats['hole_flushes']})"
    )


def _cmd_generate_ruleset(args: argparse.Namespace) -> int:
    from .rulesets.parser import render_content

    ruleset = generate_snort_like_ruleset(args.size, seed=args.seed)
    lines = [
        f"# synthetic Snort-like ruleset: {len(ruleset)} strings, "
        f"{ruleset.total_characters} characters"
    ]
    for rule in ruleset:
        # full parseable rules: the output round-trips through parse_rules /
        # scan-pcap --rules (render_content hex-escapes every byte the rule
        # grammar gives meaning to)
        lines.append(
            "alert ip any any -> any any "
            f'(content:"{render_content(rule.pattern)}"; sid:{rule.sid};)'
        )
    text = "\n".join(lines) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(ruleset)} rules to {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    ruleset = generate_snort_like_ruleset(args.size, seed=args.seed)
    program = compile_ruleset(ruleset, device)
    row = table2_row(ruleset, device, program=program)
    print(format_table([row.as_dict()], title=f"compiled {ruleset.name} for {device.family}"))
    print(f"blocks per group : {program.blocks_per_group}")
    print(f"packet groups    : {program.packet_groups}")
    print(f"words per block  : {[block.words_used for block in program.blocks]}")
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    _require_count("--packets", args.packets)
    _require_count("--payload", args.payload)
    config = PipelineConfig(
        mode="packets",
        source=SourceSpec(
            kind="generator",
            count=args.packets,
            mean_payload=args.payload,
            attack_rate=args.attack_rate,
            seed=args.seed + 1,
        ),
        rules=RulesSpec(kind="synthetic", size=args.size, seed=args.seed),
        engine=EngineSpec(backend=args.backend, device=args.device),
    )
    with Session.from_config(config) as session:
        packets = session.packets

        if args.backend == "dtp":
            # the paper's backend runs through the cycle-level hardware model
            result = session.hardware_scan()
            print(f"scanned {len(packets)} packets ({result.bytes_processed} bytes)")
            print(f"engine cycles          : {result.engine_cycles}")
            print(f"bytes per engine cycle : {result.bytes_per_engine_cycle:.3f}")
            print(f"match events           : {len(result.events)}")
            print(
                f"nominal throughput     : "
                f"{session.hardware.nominal_throughput_gbps():.1f} Gbps"
            )
            return 0

        # every other backend: functional scan through the unified protocol
        session.program  # compiled here so compile_seconds excludes the scan
        total_bytes = sum(len(packet.payload) for packet in packets)
        scan_start = time.perf_counter()
        per_packet = session.scan_stateless()
        scan_seconds = time.perf_counter() - scan_start
        events = sum(len(matches) for matches in per_packet)
        print(f"scanned {len(packets)} packets ({total_bytes} bytes)")
        print(f"backend                : {args.backend}")
        print(f"compile time           : {session.compile_seconds * 1e3:.1f} ms")
        print(f"match events           : {events}")
        if scan_seconds > 0:
            print(f"software throughput    : {total_bytes / scan_seconds / 1e6:.2f} MB/s")
    return 0


def _require_count(name: str, value: Optional[int], minimum: int = 1) -> None:
    """Range-check a count flag at the CLI layer (same raw-``ValueError``
    idiom as every other bad input value; the spec layer re-checks for
    programmatic callers, so both surfaces reject ``--workers 0``)."""
    if value is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")


def _parse_endpoint(value: str) -> Tuple[str, int]:
    """``HOST:PORT``, ``:PORT`` or bare ``PORT`` (host defaults to loopback).

    A non-numeric port raises its raw ``ValueError`` — the CLI's bad-input
    idiom — and the port *range* is checked by :class:`SourceSpec`.
    """
    host, _, port = value.rpartition(":")
    return host or "127.0.0.1", int(port)


def _print_event_report(events, sid_of) -> None:
    """The backend-independent per-event report shared by the scan commands."""
    print("match report:")
    for event in events:
        print(
            f"  packet={event.packet_id} offset={event.end_offset} "
            f"sid={sid_of[event.string_number]}"
        )


def _print_scan_summary(service, result, show_workers: bool, extra_lines=()) -> None:
    """The service-state summary shared by ``scan-stream`` and ``scan-pcap``.

    ``extra_lines`` are printed between the match counters and the flow-table
    gauges (scan-stream's split-pattern ground truth goes there).
    """
    if show_workers:
        print(f"worker processes          : {service.num_workers}")
    print(f"match events              : {len(result.events)}")
    print(f"cross-segment matches     : {service.cross_segment_matches}")
    for line in extra_lines:
        print(line)
    print(f"active flows              : {service.active_flows}")
    print(f"evicted flows             : {service.evicted_flows}")
    print(f"shard occupancy           : {service.shard_occupancy()}")


def _cmd_scan_stream(args: argparse.Namespace) -> int:
    _require_count("--shards", args.shards)
    _require_count("--workers", args.workers)
    _require_count("--flow-capacity", args.flow_capacity)
    _require_count("--flows", args.flows)
    _require_count("--packets-per-flow", args.packets_per_flow)
    sinks = ()
    if args.export_pcap:
        # the sink follows the extension so the file's magic matches its name
        sinks = (SinkSpec(kind="pcap", path=args.export_pcap),)
    config = PipelineConfig(
        mode="stream",
        source=SourceSpec(
            kind="generator",
            flows=args.flows,
            packets_per_flow=args.packets_per_flow,
            split_patterns=1,
            split_segments=args.split_segments,
            segment_bytes=args.segment_bytes,
            seed=args.seed + 1,
        ),
        rules=RulesSpec(kind="synthetic", size=args.size, seed=args.seed),
        engine=EngineSpec(
            backend=args.backend,
            device=args.device,
            shards=args.shards,
            workers=args.workers,
            flow_capacity=args.flow_capacity,
        ),
        sinks=sinks,
    )
    with Session.from_config(config) as session:
        run = session.run()
        result = run.scan_result
        if args.export_pcap:
            print(f"wrote {run.sinks[0]['frames']} frames to {args.export_pcap}")

        # ground truth: every flow carries one deliberately split pattern
        # (string numbers follow ruleset order for every backend)
        sid_of = session.sid_of
        program = session.program
        events_by_flow = result.events_by_flow()
        found_split = 0
        stateless_split = 0
        for flow in session.flows:
            key = StreamScanner.flow_key(flow.packets[0])
            streamed = {sid_of[event.string_number] for event in events_by_flow.get(key, ())}
            stateless = {
                sid_of[number]
                for packet in flow.packets
                for _, number in program.match(packet.payload)
            }
            for sid in flow.split_sids:
                found_split += sid in streamed
                stateless_split += sid in stateless

        num_flows = len(session.flows)
        print(f"backend                   : {args.backend}")
        print(
            f"scanned {result.packets} packets / {num_flows} flows "
            f"({result.bytes_scanned} bytes) on {session.service.num_shards} shard(s)"
        )
        _print_scan_summary(
            session.service,
            result,
            show_workers=args.workers is not None,
            extra_lines=(
                f"split patterns detected   : {found_split}/{num_flows} (streaming)",
                f"split patterns detected   : {stateless_split}/{num_flows} (per-packet scan)",
            ),
        )
    if args.print_events:
        # the match report proper: identical for every backend on the same
        # workload (the equivalence the backend protocol guarantees)
        _print_event_report(result.events, sid_of)
    return 0


def _cmd_scan_pcap(args: argparse.Namespace) -> int:
    _require_count("--shards", args.shards)
    _require_count("--workers", args.workers)
    _require_count("--flow-capacity", args.flow_capacity)
    if args.rules:
        rules = RulesSpec(kind="file", path=args.rules, strict=args.strict_rules)
    else:
        rules = RulesSpec(kind="synthetic", size=args.size, seed=args.seed)
    config = PipelineConfig(
        mode="stream",
        source=SourceSpec(kind="pcap", path=args.pcap),
        rules=rules,
        engine=EngineSpec(
            backend=args.backend,
            device=args.device,
            shards=args.shards,
            workers=args.workers,
            flow_capacity=args.flow_capacity,
            strict=args.strict,
            reassemble=args.reassemble,
            overlap_policy=args.overlap_policy,
        ),
    )
    try:
        with Session.from_config(config) as session:
            ruleset = session.ruleset
            result = session.run().scan_result
            capture = session.capture
            stats = session.capture_stats
            flow_count = len(
                {StreamScanner.flow_key(packet) for packet in session.packets}
            )
            print(f"backend                   : {args.backend}")
            print(
                f"capture                   : {args.pcap} "
                f"({capture.fmt}, linktype {capture.linktype}, {stats.frames} frames)"
            )
            print(
                f"decoded {stats.decoded} packets / {flow_count} flows "
                f"({stats.payload_bytes} payload bytes)"
            )
            print(f"skipped frames            : {stats.skipped_total}"
                  + (f" (fragments={stats.skipped_fragments}, "
                     f"other={stats.skipped_other})"
                     if stats.skipped_total else ""))
            # remaps cover genuine collisions and the extra contents of
            # multi-content rules — both are sids that differ from the rule file
            remapped = len(session.sid_remap)
            print(f"rules loaded              : {len(ruleset)}"
                  + (f" ({remapped} reassigned sids)" if remapped else ""))
            _print_reassembly_summary(session)
            _print_scan_summary(
                session.service, result, show_workers=args.workers is not None
            )
            sid_of = session.sid_of
    except EmptyRulesetError as exc:
        print(exc, file=sys.stderr)
        return 1
    if args.print_events:
        _print_event_report(result.events, sid_of)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    _require_count("--shards", args.shards)
    _require_count("--workers", args.workers)
    _require_count("--flow-capacity", args.flow_capacity)
    _require_count("--max-packets", args.max_packets)
    _require_count("--batch-packets", args.batch_packets)

    chosen = [flag for flag, value in
              (("--tcp", args.tcp), ("--udp", args.udp), ("--pcap-tail", args.pcap_tail))
              if value]
    if len(chosen) != 1:
        print("serve needs exactly one live source: --tcp, --udp or --pcap-tail",
              file=sys.stderr)
        return 1
    if args.follow and not args.pcap_tail:
        print("--follow only applies to --pcap-tail", file=sys.stderr)
        return 1

    limits = dict(
        max_packets=args.max_packets,
        idle_timeout=args.idle_seconds,
        batch_packets=args.batch_packets,
    )
    if args.tcp:
        host, port = _parse_endpoint(args.tcp)
        source = SourceSpec(kind="tcp", host=host, port=port, **limits)
    elif args.udp:
        host, port = _parse_endpoint(args.udp)
        source = SourceSpec(kind="udp", host=host, port=port, **limits)
    else:
        source = SourceSpec(kind="pcap-tail", path=args.pcap_tail,
                            follow=args.follow, poll_interval=args.poll_interval,
                            **limits)

    if args.rules:
        rules = RulesSpec(kind="file", path=args.rules, strict=args.strict_rules)
    else:
        rules = RulesSpec(kind="synthetic", size=args.size, seed=args.seed)
    config = PipelineConfig(
        mode="stream",
        source=source,
        rules=rules,
        engine=EngineSpec(
            backend=args.backend,
            device=args.device,
            shards=args.shards,
            workers=args.workers,
            flow_capacity=args.flow_capacity,
            strict=args.strict,
            reassemble=args.reassemble,
            overlap_policy=args.overlap_policy,
        ),
    )
    try:
        with Session.from_config(config) as session:
            ruleset = session.ruleset
            print(f"backend                   : {args.backend}")
            print(f"source                    : {source.kind} "
                  + (args.pcap_tail if args.pcap_tail
                     else f"{source.host}:{source.port}")
                  + (" (follow)" if args.follow else ""))
            remapped = len(session.sid_remap)
            print(f"rules loaded              : {len(ruleset)}"
                  + (f" ({remapped} reassigned sids)" if remapped else ""))
            report = session.serve()
            counters = ", ".join(
                f"{name}={count}" for name, count in sorted(report.source_stats.items())
            )
            print(
                f"served {report.packets} packets / {report.batches} batches "
                f"({report.payload_bytes} payload bytes) "
                f"in {report.elapsed_seconds:.2f}s"
            )
            print(f"stop reason               : {report.stop_reason}"
                  + (f" ({counters})" if counters else ""))
            _print_reassembly_summary(session)
            _print_scan_summary(
                session.service, report, show_workers=args.workers is not None
            )
            sid_of = session.sid_of
    except EmptyRulesetError as exc:
        print(exc, file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    if args.print_events:
        _print_event_report(report.events, sid_of)
    return 0


def _cmd_ids(args: argparse.Namespace) -> int:
    _require_count("--workers", args.workers)
    _require_count("--flows", args.flows)
    _require_count("--packets-per-flow", args.packets_per_flow)
    if args.rules:
        # real rules only make sense against real traffic: the synthetic
        # flow generator injects patterns from the synthetic ruleset
        if not args.pcap:
            print("--rules requires --pcap (a capture to match against)",
                  file=sys.stderr)
            return 1
        rules = RulesSpec(kind="file", path=args.rules, strict=args.strict_rules)
    else:
        rules = RulesSpec(kind="synthetic", size=args.size, seed=args.seed)
    if args.pcap:
        # replay a capture through the stateful pipeline instead of
        # generating flows (no injection ground truth on the wire)
        source = SourceSpec(kind="pcap", path=args.pcap)
    else:
        source = SourceSpec(
            kind="generator",
            flows=args.flows,
            packets_per_flow=args.packets_per_flow,
            split_patterns=1,
            seed=args.seed + 1,
        )
    config = PipelineConfig(
        mode="ids",
        source=source,
        rules=rules,
        engine=EngineSpec(
            backend=args.backend,
            device=args.device,
            workers=args.workers,
            strict=args.strict,
            reassemble=args.reassemble,
            overlap_policy=args.overlap_policy,
        ),
    )
    try:
        with Session.from_config(config) as session:
            ids = session.ids
            flows = session.flows
            flow_count = (
                len(flows)
                if flows is not None
                else len({StreamScanner.flow_key(packet) for packet in session.packets})
            )
            alerts = session.run().alerts

            print(f"backend              : {args.backend}")
            if args.pcap:
                stats = session.capture_stats
                print(
                    f"capture              : {args.pcap} "
                    f"({stats.frames} frames, {stats.skipped_total} skipped)"
                )
            print(
                f"processed {ids.stats.packets_processed} packets / {flow_count} flows "
                f"({ids.stats.payload_bytes} payload bytes)"
            )
            remapped = len(session.sid_remap)
            print(f"rules loaded         : {len(ids.rules)}"
                  + (f" ({remapped} reassigned sids)" if remapped else ""))
            if session.specs is not None:
                skipped = session.skipped_rules
                ignored = sum(len(e.unparsed_options) for e in session.specs)
                if skipped:
                    print(f"rules skipped        : {skipped} (no positive content)")
                if ignored:
                    print(f"options ignored      : {ignored} "
                          "(lenient parse; --strict-rules rejects them)")
            reassembly = session.stats().get("reassembly")
            if reassembly is not None:
                print(
                    f"reassembled          : {reassembly['segments_in']} "
                    f"segments -> {reassembly['packets_out']} packets "
                    f"(reordered={reassembly['reordered']}, "
                    f"retransmits={reassembly['retransmits']})"
                )
            print(f"alerts raised        : {len(alerts)}")
            if flows is not None:
                alerted_sids = {alert.sid for alert in alerts}
                split_detected = sum(
                    1 for flow in flows for sid in flow.split_sids if sid in alerted_sids
                )
                split_total = sum(len(flow.split_sids) for flow in flows)
                print(f"split-pattern alerts : {split_detected}/{split_total}")
    except EmptyRulesetError as exc:
        print(exc, file=sys.stderr)
        return 1
    if args.print_alerts:
        print("alert report:")
        for alert in alerts:
            print(f"  packet={alert.packet_id} sid={alert.sid}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = load_config(args.config)
    try:
        with Session.from_config(config) as session:
            run = session.run()
            print(f"pipeline              : {args.config}")
            print(f"version               : {repro_version()}")
            print(f"mode                  : {config.mode}")
            print(f"backend               : {config.engine.backend}")
            print(f"rules loaded          : {len(session.ruleset)}")
            print(f"packets               : {len(session.packets)}")
            if config.mode == "ids":
                print(f"alerts raised         : {len(run.alerts)}")
            else:
                print(f"match events          : {len(run.events)}")
            for index, (spec, output) in enumerate(zip(config.sinks, run.sinks)):
                if spec.kind == "ndjson":
                    summary = f"wrote {output['records']} {output['what']} to {output['path']}"
                elif spec.kind == "pcap":
                    summary = f"wrote {output['frames']} frames to {output['path']}"
                else:
                    summary = f"collected {len(output)} {spec.kind}"
                print(f"sink[{index}] {spec.kind:<13s}: {summary}")
    except EmptyRulesetError as exc:
        print(exc, file=sys.stderr)
        return 1
    return 0


def _ruleset_for_check(args: argparse.Namespace):
    """The ruleset ``lint``/``verify`` operate on: a Snort rules file when
    ``--rules`` is given, else the synthetic ``--size``/``--seed`` ruleset.
    Parse errors raise their raw tracebacks (the bad-input idiom)."""
    if args.rules:
        from .rulesets import parse_rules, ruleset_from_specs

        with open(args.rules, "r", encoding="utf-8") as handle:
            return ruleset_from_specs(parse_rules(handle))
    return generate_snort_like_ruleset(args.size, seed=args.seed)


def _write_report_json(report, path: Optional[str]) -> None:
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2)
            handle.write("\n")


def _cmd_lint(args: argparse.Namespace) -> int:
    from .check import check_paths, lint_rule_file, lint_ruleset

    if args.code:
        report = check_paths(args.code)
    elif args.rules:
        report = lint_rule_file(args.rules)
    else:
        report = lint_ruleset(generate_snort_like_ruleset(args.size, seed=args.seed))
    _write_report_json(report, args.json)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from .backend import get_backend
    from .check import (
        AUTOMATON_BACKENDS,
        merge_reports,
        verify_cross_backend,
        verify_program,
    )

    ruleset = _ruleset_for_check(args)
    patterns = tuple(ruleset.patterns)
    reports = []
    if args.backend == "all":
        for name in AUTOMATON_BACKENDS:
            reports.append(verify_program(get_backend(name).compile(patterns)))
        reports.append(verify_cross_backend(patterns))
    elif args.backend == "dtp":
        # the paper's backend gets the full hardware-level audit: per-block
        # DTP exactness, lookup encoding, word packing, match memory, image
        program = compile_ruleset(ruleset, get_device(args.device))
        reports.append(verify_program(program))
        reports.append(verify_cross_backend(patterns))
    else:
        reports.append(verify_program(get_backend(args.backend).compile(patterns)))
    report = merge_reports(
        f"verify {args.backend} over {len(patterns)} pattern(s) "
        f"({ruleset.name})",
        reports,
    )
    _write_report_json(report, args.json)
    print(report.render())
    for sub in reports:
        status = "proved" if sub.ok else "FAILED"
        print(f"  {status}: {sub.subject}")
    return 0 if report.ok else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = []
    for device in (CYCLONE_III, STRATIX_III):
        measured = table1_row(device).as_dict()
        reference = PAPER_TABLE1_REFERENCE[device.family]
        measured["paper_logic"] = f"{reference['logic_used']:,}"
        measured["paper_m9k"] = reference["m9k_used"]
        rows.append(measured)
    print(format_table(rows, title="Table I — resource utilisation (model vs paper)"))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    sizes = TABLE2_STRATIX_SIZES if device is STRATIX_III else TABLE2_CYCLONE_SIZES
    family = generate_paper_rulesets(seed=args.seed)
    rows = []
    for size in sizes:
        row = table2_row(family[size], device).as_dict()
        reference = PAPER_TABLE2_REFERENCE[device.family].get(size, {})
        row["paper_blocks"] = reference.get("blocks", "-")
        row["paper_speed"] = reference.get("speed_gbps", "-")
        rows.append(row)
    print(format_table(rows, title=f"Table II — {device.family}"))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    family = generate_paper_rulesets(seed=args.seed)
    workload = reduce_to_character_count(family[6275], 19_124, seed=args.seed)
    rows = [row.as_dict() for row in table3_rows(workload, (CYCLONE_III, STRATIX_III))]
    print(format_table(rows, title="Table III — comparison at ~19,124 characters"))
    print()
    print(format_table(PAPER_TABLE3_REFERENCE, title="Table III — as reported in the paper"))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    family = generate_paper_rulesets(seed=args.seed)
    for size in sorted(family):
        histogram = family[size].bucketed_histogram()
        print(format_histogram(histogram, title=f"Figure 6 — {size} strings"))
        print()
    return 0


def _power_figure(device, sizes: Sequence[int], seed: int) -> str:
    family = generate_paper_rulesets(seed=seed)
    blocks: Dict[str, int] = {}
    for size in sizes:
        program = compile_ruleset(family[size], device)
        blocks[f"{size} strings"] = program.blocks_per_group
    output: List[str] = []
    for curve in power_curves(device, blocks):
        output.append(
            format_table(
                curve.points,
                title=f"{device.family} — {curve.label} ({curve.blocks_per_group} block(s)/group)",
            )
        )
        output.append(
            ascii_chart(curve.points, "power_watts", "throughput_gbps", label=curve.label)
        )
        output.append("")
    return "\n".join(output)


def _cmd_fig7(args: argparse.Namespace) -> int:
    print("Figure 7 — power vs throughput, Cyclone III")
    print(_power_figure(CYCLONE_III, (500, 1204, 2588), args.seed))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    print("Figure 8 — power vs throughput, Stratix III")
    print(_power_figure(STRATIX_III, (634, 1603, 2588, 6275), args.seed))
    return 0


def build_parser() -> argparse.ArgumentParser:
    version = repro_version()
    parser = argparse.ArgumentParser(
        prog="repro-dpi",
        description="Reproduction of 'Ultra-High Throughput String Matching for DPI' (DATE 2010)",
        epilog=f"version {version} — pipeline configs produced by this build "
               "record it in their 'version' field (see `run` and repro.api)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {version}",
        help="print the package version and exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate-ruleset", help="synthesise a Snort-like ruleset")
    _add_ruleset_arguments(generate)
    generate.add_argument("--output", help="file to write rules to (stdout if omitted)")
    generate.set_defaults(handler=_cmd_generate_ruleset)

    compile_parser = subparsers.add_parser("compile", help="compile a ruleset for a device")
    _add_ruleset_arguments(compile_parser)
    compile_parser.add_argument("--device", default="stratix3", choices=sorted(DEVICES))
    compile_parser.set_defaults(handler=_cmd_compile)

    scan = subparsers.add_parser("scan", help="scan synthetic traffic with any backend")
    _add_ruleset_arguments(scan)
    _add_backend_argument(scan)
    scan.add_argument("--device", default="stratix3", choices=sorted(DEVICES))
    scan.add_argument("--packets", type=int, default=60)
    scan.add_argument("--payload", type=int, default=300, help="mean payload bytes")
    scan.add_argument("--attack-rate", type=float, default=0.3)
    scan.set_defaults(handler=_cmd_scan)

    scan_stream = subparsers.add_parser(
        "scan-stream", help="stateful flow scanning with cross-packet patterns"
    )
    _add_ruleset_arguments(scan_stream)
    _add_backend_argument(scan_stream)
    scan_stream.add_argument("--device", default="stratix3", choices=sorted(DEVICES))
    scan_stream.add_argument("--flows", type=int, default=24, help="concurrent flows")
    scan_stream.add_argument("--packets-per-flow", type=int, default=4)
    scan_stream.add_argument(
        "--split-segments", type=int, default=2, choices=(2, 3),
        help="segments each injected pattern is split across",
    )
    scan_stream.add_argument("--segment-bytes", type=int, default=None)
    scan_stream.add_argument("--shards", type=int, default=4, help="scan engine pool size")
    scan_stream.add_argument("--workers", type=int, default=None,
                             help="scan shards on this many worker processes "
                                  "(default: serial in-process scan)")
    scan_stream.add_argument("--flow-capacity", type=int, default=4096,
                             help="LRU flow-table capacity per shard")
    scan_stream.add_argument("--print-events", action="store_true",
                             help="print every match event (backend-independent report)")
    scan_stream.add_argument("--export-pcap", metavar="PATH",
                             help="also write the generated workload as a capture "
                                  "(pcapng when PATH ends in .pcapng, else pcap; "
                                  "replayable with scan-pcap)")
    scan_stream.set_defaults(handler=_cmd_scan_stream)

    scan_pcap = subparsers.add_parser(
        "scan-pcap", help="replay a pcap/pcapng capture through the scan service"
    )
    scan_pcap.add_argument("pcap", help="capture file (pcap or pcapng, auto-detected)")
    scan_pcap.add_argument("--rules", metavar="FILE",
                           help="Snort rules file to match against (default: "
                                "the synthetic --size/--seed ruleset)")
    scan_pcap.add_argument("--strict-rules", action="store_true",
                           help="reject rules with unsupported options instead "
                                "of keeping them unparsed (lenient default)")
    _add_ruleset_arguments(scan_pcap)
    _add_backend_argument(scan_pcap)
    scan_pcap.add_argument("--device", default="stratix3", choices=sorted(DEVICES))
    scan_pcap.add_argument("--shards", type=int, default=4, help="scan engine pool size")
    scan_pcap.add_argument("--workers", type=int, default=None,
                           help="scan shards on this many worker processes "
                                "(default: serial in-process scan)")
    scan_pcap.add_argument("--flow-capacity", type=int, default=4096,
                           help="LRU flow-table capacity per shard")
    scan_pcap.add_argument("--strict", action="store_true",
                           help="fail on frames that cannot be decoded "
                                "(default: skip and count them)")
    _add_reassembly_arguments(scan_pcap)
    scan_pcap.add_argument("--print-events", action="store_true",
                           help="print every match event (backend-independent report)")
    scan_pcap.set_defaults(handler=_cmd_scan_pcap)

    serve = subparsers.add_parser(
        "serve", help="scan a live source: socket listeners or a growing capture"
    )
    serve.add_argument("--tcp", metavar="HOST:PORT",
                       help="listen for TCP connections (each connection is one "
                            "flow; port 0 binds an ephemeral port)")
    serve.add_argument("--udp", metavar="HOST:PORT",
                       help="listen for UDP datagrams (each peer address is one flow)")
    serve.add_argument("--pcap-tail", metavar="PATH",
                       help="stream records from a pcap capture as they are "
                            "written (classic pcap only, not pcapng)")
    serve.add_argument("--follow", action="store_true",
                       help="with --pcap-tail: keep polling for appended records "
                            "instead of stopping at end of file")
    serve.add_argument("--poll-interval", type=float, default=0.2,
                       help="with --follow: seconds between polls for new records")
    serve.add_argument("--rules", metavar="FILE",
                       help="Snort rules file to match against (default: "
                            "the synthetic --size/--seed ruleset)")
    serve.add_argument("--strict-rules", action="store_true",
                       help="reject rules with unsupported options instead "
                            "of keeping them unparsed (lenient default)")
    _add_ruleset_arguments(serve)
    _add_backend_argument(serve)
    serve.add_argument("--device", default="stratix3", choices=sorted(DEVICES))
    serve.add_argument("--shards", type=int, default=4, help="scan engine pool size")
    serve.add_argument("--workers", type=int, default=None,
                       help="scan shards on this many worker processes "
                            "(default: serial in-process scan)")
    serve.add_argument("--flow-capacity", type=int, default=4096,
                       help="LRU flow-table capacity per shard")
    serve.add_argument("--max-packets", type=int, default=None,
                       help="stop after scanning this many packets")
    serve.add_argument("--idle-seconds", type=float, default=None,
                       help="stop after this long with no arrivals")
    serve.add_argument("--batch-packets", type=int, default=256,
                       help="scan a batch once this many packets are queued")
    serve.add_argument("--strict", action="store_true",
                       help="with --pcap-tail: fail on frames that cannot be "
                            "decoded (default: skip and count them)")
    _add_reassembly_arguments(serve)
    serve.add_argument("--print-events", action="store_true",
                       help="print every match event (backend-independent report)")
    serve.set_defaults(handler=_cmd_serve)

    ids = subparsers.add_parser(
        "ids", help="run the mini IDS pipeline over streamed flows"
    )
    ids.add_argument("--size", type=int, default=80, help="number of strings")
    ids.add_argument("--seed", type=int, default=2010, help="generation seed")
    _add_backend_argument(ids)
    ids.add_argument("--device", default="stratix3", choices=sorted(DEVICES))
    ids.add_argument("--flows", type=int, default=12, help="concurrent flows")
    ids.add_argument("--packets-per-flow", type=int, default=3)
    ids.add_argument("--workers", type=int, default=None,
                     help="run content scanning on this many worker processes")
    ids.add_argument("--pcap", metavar="PATH",
                     help="replay this capture instead of generating flows")
    ids.add_argument("--rules", metavar="FILE",
                     help="build the IDS from this Snort rules file instead of "
                          "the synthetic ruleset (requires --pcap)")
    ids.add_argument("--strict-rules", action="store_true",
                     help="reject rules with unsupported options instead "
                          "of keeping them unparsed (lenient default)")
    ids.add_argument("--strict", action="store_true",
                     help="with --pcap: fail on frames that cannot be decoded "
                          "(default: skip and count them)")
    _add_reassembly_arguments(ids)
    ids.add_argument("--print-alerts", action="store_true",
                     help="print every alert (backend-independent report)")
    ids.set_defaults(handler=_cmd_ids)

    run = subparsers.add_parser(
        "run", help="execute a declarative pipeline config file (JSON or TOML)"
    )
    run.add_argument("config",
                     help="pipeline config file; relative paths inside it "
                          "resolve against its own directory")
    run.set_defaults(handler=_cmd_run)

    lint = subparsers.add_parser(
        "lint", help="lint a ruleset (or code paths) without compiling it"
    )
    lint.add_argument("--rules", metavar="FILE",
                      help="Snort rules file to lint line by line (default: "
                           "the synthetic --size/--seed ruleset)")
    _add_ruleset_arguments(lint)
    lint.add_argument("--code", nargs="+", metavar="PATH",
                      help="run the CLI error-idiom AST checker over these "
                           "files/directories instead of linting a ruleset")
    lint.add_argument("--json", metavar="PATH",
                      help="also write the diagnostics as a JSON report")
    lint.set_defaults(handler=_cmd_lint)

    verify = subparsers.add_parser(
        "verify", help="statically prove a compiled program correct "
                       "(no traffic scanned)"
    )
    verify.add_argument("--rules", metavar="FILE",
                        help="Snort rules file to compile and verify (default: "
                             "the synthetic --size/--seed ruleset)")
    _add_ruleset_arguments(verify)
    verify.add_argument("--backend", default="dtp",
                        choices=backend_names() + ["all"],
                        help="backend to verify; 'dtp' adds the hardware-level "
                             "checks, 'all' proves cross-backend equivalence")
    verify.add_argument("--device", default="stratix3", choices=sorted(DEVICES))
    verify.add_argument("--json", metavar="PATH",
                        help="also write the diagnostics as a JSON report")
    verify.set_defaults(handler=_cmd_verify)

    table1 = subparsers.add_parser("table1", help="regenerate Table I")
    table1.set_defaults(handler=_cmd_table1)

    table2 = subparsers.add_parser("table2", help="regenerate Table II")
    table2.add_argument("--device", default="stratix3", choices=sorted(DEVICES))
    table2.add_argument("--seed", type=int, default=2010)
    table2.set_defaults(handler=_cmd_table2)

    table3 = subparsers.add_parser("table3", help="regenerate Table III")
    table3.add_argument("--seed", type=int, default=2010)
    table3.set_defaults(handler=_cmd_table3)

    fig6 = subparsers.add_parser("fig6", help="regenerate Figure 6")
    fig6.add_argument("--seed", type=int, default=2010)
    fig6.set_defaults(handler=_cmd_fig6)

    fig7 = subparsers.add_parser("fig7", help="regenerate Figure 7")
    fig7.add_argument("--seed", type=int, default=2010)
    fig7.set_defaults(handler=_cmd_fig7)

    fig8 = subparsers.add_parser("fig8", help="regenerate Figure 8")
    fig8.add_argument("--seed", type=int, default=2010)
    fig8.set_defaults(handler=_cmd_fig8)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
