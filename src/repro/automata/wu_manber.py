"""Wu-Manber multi-pattern matching (Manber & Wu, TR-94-17).

A software baseline cited in the paper's related work.  Wu-Manber uses a
shift table over character blocks to skip ahead, which performs very well on
average but has a poor worst case — the property that disqualifies it for the
paper's guaranteed-rate hardware goal.  The benchmark harness uses it to put
the paper's one-character-per-cycle argument into context.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..backend import CompiledProgramMixin, FlowState, ScanState, advance_history

MatchList = List[Tuple[int, int]]


class WuManber(CompiledProgramMixin):
    """Wu-Manber matcher with configurable block size.

    ``block_size`` is the classic *B* parameter (2 for small pattern sets,
    3 for large ones).  Patterns shorter than ``block_size`` are handled by a
    dedicated prefix scan so correctness never depends on the block size.

    Conforms to the :class:`repro.backend.CompiledProgram` protocol (backend
    name ``"wu-manber"``).  Wu-Manber has no automaton state to carry, so the
    resumable flow state keeps the last ``max_pattern_len - 1`` stream bytes
    in ``ScanState.tail``; each segment is matched over ``tail + chunk`` and
    hits ending inside the tail (already reported) are dropped.
    """

    backend_name = "wu-manber"

    def __init__(self, patterns: Sequence[bytes], block_size: int = 2):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if not patterns:
            raise ValueError("at least one pattern is required")
        for pattern in patterns:
            if len(pattern) == 0:
                raise ValueError("empty patterns are not allowed")
        self.patterns = tuple(bytes(p) for p in patterns)
        self._max_length = max(len(p) for p in self.patterns)
        self.block_size = block_size
        self._short_patterns = [
            (i, p) for i, p in enumerate(self.patterns) if len(p) < block_size
        ]
        long_patterns = [(i, p) for i, p in enumerate(self.patterns) if len(p) >= block_size]
        self._long_patterns = long_patterns
        self._minimum_length = (
            min(len(p) for _, p in long_patterns) if long_patterns else block_size
        )
        self._shift: Dict[bytes, int] = {}
        self._hash: Dict[bytes, List[int]] = {}
        self._build_tables()

    def _build_tables(self) -> None:
        block = self.block_size
        m = self._minimum_length
        default_shift = m - block + 1
        self._default_shift = max(1, default_shift)
        for pattern_id, pattern in self._long_patterns:
            window = pattern[:m]
            for offset in range(m - block + 1):
                chunk = window[offset:offset + block]
                shift = m - block - offset
                previous = self._shift.get(chunk, self._default_shift)
                self._shift[chunk] = min(previous, shift)
            suffix = window[m - block:m]
            self._hash.setdefault(suffix, []).append(pattern_id)

    # ------------------------------------------------------------------
    def match(self, data: bytes) -> MatchList:
        matches: MatchList = []
        block = self.block_size
        m = self._minimum_length

        if self._long_patterns and len(data) >= m:
            position = m - 1
            n = len(data)
            while position < n:
                chunk = bytes(data[position - block + 1:position + 1])
                shift = self._shift.get(chunk, self._default_shift)
                if shift > 0:
                    position += shift
                    continue
                # candidate window ends here: verify every pattern hashed on the chunk
                for pattern_id in self._hash.get(chunk, ()):
                    pattern = self.patterns[pattern_id]
                    start = position - m + 1
                    end = start + len(pattern)
                    if end <= n and data[start:end] == pattern:
                        matches.append((end, pattern_id))
                position += 1

        for pattern_id, pattern in self._short_patterns:
            length = len(pattern)
            start = 0
            while True:
                index = data.find(pattern, start)
                if index < 0:
                    break
                matches.append((index + length, pattern_id))
                start = index + 1

        matches.sort()
        return matches

    def _scan_chunk(self, states: FlowState, chunk: bytes) -> Tuple[MatchList, FlowState]:
        """Resumable scan of one stream segment via the tail carry buffer."""
        (scan_state,) = states
        tail = scan_state.tail or b""
        buffer = tail + chunk
        base = scan_state.offset - len(tail)
        # matches ending at or before len(tail) were reported by the
        # previous segment's scan; only keep hits completing in this chunk
        matches = [
            (base + end, pid) for end, pid in self.match(buffer) if end > len(tail)
        ]
        carry = self._max_length - 1
        prev1, prev2 = advance_history(scan_state.prev1, scan_state.prev2, chunk)
        return matches, (
            ScanState(
                prev1=prev1,
                prev2=prev2,
                offset=scan_state.offset + len(chunk),
                tail=buffer[-carry:] if carry > 0 else b"",
            ),
        )

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Approximate table footprint (shift + hash tables + pattern bytes)."""
        shift_bytes = len(self._shift) * (self.block_size + 2)
        hash_bytes = sum(self.block_size + 4 * len(ids) for ids in self._hash.values())
        pattern_bytes = sum(len(p) for p in self.patterns)
        return shift_bytes + hash_bytes + pattern_bytes
