"""Trie (keyword tree) used as the construction substrate for Aho-Corasick.

The trie is stored in flat parallel arrays indexed by a dense integer state
id.  State ``0`` is always the root.  Each non-root state corresponds to a
unique prefix of one or more patterns; its *label* is the final byte of that
prefix and its *depth* is the prefix length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

ROOT = 0
ALPHABET_SIZE = 256


@dataclass
class TrieStats:
    """Summary statistics of a built trie."""

    num_states: int
    num_patterns: int
    total_pattern_bytes: int
    max_depth: int
    states_per_depth: Dict[int, int] = field(default_factory=dict)


class Trie:
    """Byte-alphabet keyword trie.

    Patterns are arbitrary ``bytes``.  Duplicate patterns are accepted and
    both pattern ids are attached to the same terminal state.
    """

    def __init__(self) -> None:
        # children[state] maps byte value -> child state id
        self.children: List[Dict[int, int]] = [{}]
        self.parent: List[int] = [ROOT]
        self.label: List[int] = [-1]  # byte that leads into the state, -1 for root
        self.depth: List[int] = [0]
        # outputs[state] -> list of pattern ids terminating at the state
        self.outputs: List[List[int]] = [[]]
        self.patterns: List[bytes] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_pattern(self, pattern: bytes) -> int:
        """Insert ``pattern`` and return its pattern id.

        Raises ``ValueError`` for empty patterns: an empty pattern would make
        every position of every packet a match and has no state in the
        automaton.
        """
        if not isinstance(pattern, (bytes, bytearray)):
            raise TypeError(f"pattern must be bytes, got {type(pattern).__name__}")
        if len(pattern) == 0:
            raise ValueError("empty patterns are not allowed")
        pattern = bytes(pattern)
        pattern_id = len(self.patterns)
        self.patterns.append(pattern)

        state = ROOT
        for byte in pattern:
            nxt = self.children[state].get(byte)
            if nxt is None:
                nxt = self._new_state(parent=state, label=byte)
                self.children[state][byte] = nxt
            state = nxt
        self.outputs[state].append(pattern_id)
        return pattern_id

    def add_patterns(self, patterns: Iterable[bytes]) -> List[int]:
        """Insert every pattern and return the assigned pattern ids."""
        return [self.add_pattern(p) for p in patterns]

    def _new_state(self, parent: int, label: int) -> int:
        state = len(self.children)
        self.children.append({})
        self.parent.append(parent)
        self.label.append(label)
        self.depth.append(self.depth[parent] + 1)
        self.outputs.append([])
        return state

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.children)

    @property
    def num_patterns(self) -> int:
        return len(self.patterns)

    def goto(self, state: int, byte: int) -> Optional[int]:
        """The goto function: child of ``state`` on ``byte`` or ``None``."""
        return self.children[state].get(byte)

    def find_node(self, prefix: bytes) -> Optional[int]:
        """Return the state reached by walking ``prefix`` from the root."""
        state = ROOT
        for byte in prefix:
            nxt = self.children[state].get(byte)
            if nxt is None:
                return None
            state = nxt
        return state

    def string_of(self, state: int) -> bytes:
        """Reconstruct the prefix (path string) for ``state``."""
        out = bytearray()
        while state != ROOT:
            out.append(self.label[state])
            state = self.parent[state]
        out.reverse()
        return bytes(out)

    def states_at_depth(self, depth: int) -> List[int]:
        return [s for s in range(self.num_states) if self.depth[s] == depth]

    def iter_bfs(self) -> Iterator[int]:
        """Yield states in breadth-first (depth) order, root first."""
        queue: List[int] = [ROOT]
        index = 0
        while index < len(queue):
            state = queue[index]
            index += 1
            yield state
            queue.extend(self.children[state].values())

    def stats(self) -> TrieStats:
        per_depth: Dict[int, int] = {}
        for depth in self.depth:
            per_depth[depth] = per_depth.get(depth, 0) + 1
        return TrieStats(
            num_states=self.num_states,
            num_patterns=self.num_patterns,
            total_pattern_bytes=sum(len(p) for p in self.patterns),
            max_depth=max(self.depth),
            states_per_depth=per_depth,
        )

    @classmethod
    def from_patterns(cls, patterns: Sequence[bytes]) -> "Trie":
        trie = cls()
        trie.add_patterns(patterns)
        return trie
