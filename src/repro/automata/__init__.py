"""Classic string matching automata used as substrates and baselines."""

from .aho_corasick import (
    AhoCorasickDFA,
    AhoCorasickNFA,
    NFAMatchStats,
    verify_equivalent_matches,
)
from .bitmap_ac import (
    TUCK_BITMAP_REFERENCE_BYTES,
    BitmapAhoCorasick,
    BitmapNodeLayout,
)
from .path_compressed_ac import (
    TUCK_PATH_COMPRESSED_REFERENCE_BYTES,
    PathCompressedAhoCorasick,
    PathNodeLayout,
)
from .single_pattern import BoyerMoore, KnuthMorrisPratt, NaiveMultiPattern
from .trie import ALPHABET_SIZE, ROOT, Trie, TrieStats
from .wu_manber import WuManber

__all__ = [
    "AhoCorasickDFA",
    "AhoCorasickNFA",
    "NFAMatchStats",
    "verify_equivalent_matches",
    "BitmapAhoCorasick",
    "BitmapNodeLayout",
    "TUCK_BITMAP_REFERENCE_BYTES",
    "PathCompressedAhoCorasick",
    "PathNodeLayout",
    "TUCK_PATH_COMPRESSED_REFERENCE_BYTES",
    "BoyerMoore",
    "KnuthMorrisPratt",
    "NaiveMultiPattern",
    "ALPHABET_SIZE",
    "ROOT",
    "Trie",
    "TrieStats",
    "WuManber",
]
