"""Bitmap-compressed Aho-Corasick (Tuck, Sherwood, Calder, Varghese — Infocom 2004).

This is the first of the two comparison structures in Table III of the DATE
2010 paper.  Each node replaces the 256-entry next-state array with:

* a 256-bit bitmap marking which byte values have an explicit (goto) child;
* a pointer to the node's packed array of children (children are stored
  contiguously, so the child for byte ``c`` is found by popcounting the
  bitmap below ``c``);
* a failure pointer (this variant keeps the failure function, which is what
  costs it the one-character-per-cycle guarantee);
* match metadata.

Memory accounting follows the node layout described by Tuck et al.; the
per-field widths are parameters of :class:`BitmapNodeLayout` so the Table III
comparison can be run both with our byte-exact layout and with the figures
reported in the original paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..backend import CompiledProgramMixin, FlowState, ScanState, advance_history
from .aho_corasick import AhoCorasickNFA
from .trie import ROOT, Trie

MatchList = List[Tuple[int, int]]


@dataclass(frozen=True)
class BitmapNodeLayout:
    """Bit widths of one bitmap node (defaults follow Tuck et al.)."""

    bitmap_bits: int = 256
    failure_pointer_bits: int = 32
    child_pointer_bits: int = 32
    match_bits: int = 32  # rule-id / match metadata

    @property
    def node_bits(self) -> int:
        return (
            self.bitmap_bits
            + self.failure_pointer_bits
            + self.child_pointer_bits
            + self.match_bits
        )

    @property
    def node_bytes(self) -> float:
        return self.node_bits / 8.0


class BitmapAhoCorasick(CompiledProgramMixin):
    """Bitmap-compressed AC automaton with failure transitions.

    Conforms to the :class:`repro.backend.CompiledProgram` protocol (backend
    name ``"bitmap"``).  Because a failure walk depends only on the current
    state, the resumable flow state is just the trie state id — but the
    walk may follow several failure links per byte, which is exactly the
    property that costs this structure the one-character-per-cycle guarantee.
    """

    backend_name = "bitmap"

    def __init__(self, trie: Trie, layout: Optional[BitmapNodeLayout] = None):
        self.trie = trie
        self.layout = layout or BitmapNodeLayout()
        nfa = AhoCorasickNFA(trie)
        self.fail = nfa.fail
        self.outputs = nfa.outputs
        # bitmap[state] is a 256-bit integer; child_index[state][byte] resolves
        # the popcount lookup that hardware would perform.
        self.bitmaps: List[int] = [0] * trie.num_states
        self.children_arrays: List[List[int]] = [[] for _ in range(trie.num_states)]
        for state in range(trie.num_states):
            bitmap = 0
            packed: List[int] = []
            for byte in sorted(trie.children[state]):
                bitmap |= 1 << byte
                packed.append(trie.children[state][byte])
            self.bitmaps[state] = bitmap
            self.children_arrays[state] = packed

    @classmethod
    def from_patterns(
        cls, patterns: Sequence[bytes], layout: Optional[BitmapNodeLayout] = None
    ) -> "BitmapAhoCorasick":
        return cls(Trie.from_patterns(patterns), layout=layout)

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def _child(self, state: int, byte: int) -> Optional[int]:
        bitmap = self.bitmaps[state]
        if not (bitmap >> byte) & 1:
            return None
        below = bitmap & ((1 << byte) - 1)
        return self.children_arrays[state][bin(below).count("1")]

    def children_of(self, state: int) -> Iterator[Tuple[int, int]]:
        """Decode a state's ``(byte, child)`` edges through the bitmap and
        popcount indexing — the exact lookup the scan performs, exposed so
        the static verifier checks the encoding rather than the source
        trie."""
        bitmap = self.bitmaps[state]
        for byte in range(256):
            if (bitmap >> byte) & 1:
                below = bitmap & ((1 << byte) - 1)
                yield byte, self.children_arrays[state][bin(below).count("1")]

    @property
    def patterns(self) -> Tuple[bytes, ...]:
        """The compiled patterns; pattern ids index this tuple."""
        return tuple(self.trie.patterns)

    def _scan_chunk(self, states: FlowState, chunk: bytes) -> Tuple[MatchList, FlowState]:
        """The failure-walk scan (single copy; the mixin derives ``match``)."""
        (scan_state,) = states
        matches: MatchList = []
        state = scan_state.state
        base = scan_state.offset
        for position, byte in enumerate(chunk):
            child = self._child(state, byte)
            while child is None and state != ROOT:
                state = self.fail[state]
                child = self._child(state, byte)
            state = child if child is not None else ROOT
            if self.outputs[state]:
                matches.extend((base + position + 1, pid) for pid in self.outputs[state])
        prev1, prev2 = advance_history(scan_state.prev1, scan_state.prev2, chunk)
        return matches, (
            ScanState(state=state, prev1=prev1, prev2=prev2, offset=base + len(chunk)),
        )

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return self.trie.num_states

    def memory_bits(self) -> int:
        return self.num_states * self.layout.node_bits

    def memory_bytes(self) -> int:
        return (self.memory_bits() + 7) // 8


#: The total memory reported by Tuck et al. / quoted in Table III for their
#: Snort subset with 19,124 characters, used as the literature reference point.
TUCK_BITMAP_REFERENCE_BYTES = 2_800_000
