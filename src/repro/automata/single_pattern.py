"""Single-pattern baselines: Knuth-Morris-Pratt and Boyer-Moore.

Section II cites these as the classic single-string algorithms; they are
included as software baselines so the benchmark harness can show why a
multi-pattern automaton is required for DPI-scale rulesets (running one
single-pattern matcher per rule scales linearly with the ruleset size).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

MatchList = List[Tuple[int, int]]  # (end_position, pattern_id)


class KnuthMorrisPratt:
    """Knuth-Morris-Pratt single pattern matcher."""

    def __init__(self, pattern: bytes, pattern_id: int = 0):
        if len(pattern) == 0:
            raise ValueError("pattern must not be empty")
        self.pattern = bytes(pattern)
        self.pattern_id = pattern_id
        self.prefix_function = self._build_prefix_function(self.pattern)

    @staticmethod
    def _build_prefix_function(pattern: bytes) -> List[int]:
        prefix = [0] * len(pattern)
        k = 0
        for i in range(1, len(pattern)):
            while k > 0 and pattern[k] != pattern[i]:
                k = prefix[k - 1]
            if pattern[k] == pattern[i]:
                k += 1
            prefix[i] = k
        return prefix

    def match(self, data: bytes) -> MatchList:
        matches: MatchList = []
        pattern = self.pattern
        prefix = self.prefix_function
        k = 0
        for position, byte in enumerate(data):
            while k > 0 and pattern[k] != byte:
                k = prefix[k - 1]
            if pattern[k] == byte:
                k += 1
            if k == len(pattern):
                matches.append((position + 1, self.pattern_id))
                k = prefix[k - 1]
        return matches


class BoyerMoore:
    """Boyer-Moore single pattern matcher (bad character + good suffix rules)."""

    def __init__(self, pattern: bytes, pattern_id: int = 0):
        if len(pattern) == 0:
            raise ValueError("pattern must not be empty")
        self.pattern = bytes(pattern)
        self.pattern_id = pattern_id
        self._bad_character = self._build_bad_character(self.pattern)
        self._good_suffix = self._build_good_suffix(self.pattern)

    @staticmethod
    def _build_bad_character(pattern: bytes) -> List[int]:
        table = [-1] * 256
        for index, byte in enumerate(pattern):
            table[byte] = index
        return table

    @staticmethod
    def _build_good_suffix(pattern: bytes) -> List[int]:
        m = len(pattern)
        suffix = [0] * m
        suffix[m - 1] = m
        g = m - 1
        f = 0
        for i in range(m - 2, -1, -1):
            if i > g and suffix[i + m - 1 - f] < i - g:
                suffix[i] = suffix[i + m - 1 - f]
            else:
                if i < g:
                    g = i
                f = i
                while g >= 0 and pattern[g] == pattern[g + m - 1 - f]:
                    g -= 1
                suffix[i] = f - g
        shift = [m] * m
        j = 0
        for i in range(m - 1, -1, -1):
            if suffix[i] == i + 1:
                while j < m - 1 - i:
                    if shift[j] == m:
                        shift[j] = m - 1 - i
                    j += 1
        for i in range(m - 1):
            shift[m - 1 - suffix[i]] = m - 1 - i
        return shift

    def match(self, data: bytes) -> MatchList:
        matches: MatchList = []
        pattern = self.pattern
        m = len(pattern)
        n = len(data)
        j = 0
        while j <= n - m:
            i = m - 1
            while i >= 0 and pattern[i] == data[j + i]:
                i -= 1
            if i < 0:
                matches.append((j + m, self.pattern_id))
                j += self._good_suffix[0]
            else:
                bad_char_shift = i - self._bad_character[data[j + i]]
                j += max(self._good_suffix[i], bad_char_shift, 1)
        return matches


class NaiveMultiPattern:
    """Run one single-pattern matcher per rule; the obvious non-solution.

    Used by benchmarks to illustrate the scaling argument that motivates
    Aho-Corasick style automata for DPI.
    """

    def __init__(self, patterns: Sequence[bytes], algorithm: str = "kmp"):
        if algorithm not in ("kmp", "boyer-moore"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        factory = KnuthMorrisPratt if algorithm == "kmp" else BoyerMoore
        self.matchers = [factory(p, pattern_id=i) for i, p in enumerate(patterns)]

    def match(self, data: bytes) -> MatchList:
        matches: MatchList = []
        for matcher in self.matchers:
            matches.extend(matcher.match(data))
        matches.sort()
        return matches
