"""Path-compressed Aho-Corasick (Tuck et al., Infocom 2004).

The second comparison structure of Table III.  Long chains of states that
each have exactly one child (very common in the deep parts of an IDS trie)
are collapsed into a single *path node* that stores the run of characters
directly.  Branching states keep the bitmap representation of
:mod:`repro.automata.bitmap_ac`.

The matcher keeps failure pointers; a partial mismatch inside a path node
falls back via the failure pointer of the node's first state, which is the
behaviour that breaks the one-character-per-cycle guarantee and motivates the
paper's move-function design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..backend import CompiledProgramMixin, FlowState, ScanState, advance_history
from .aho_corasick import AhoCorasickNFA
from .trie import ROOT, Trie

MatchList = List[Tuple[int, int]]


@dataclass(frozen=True)
class PathNodeLayout:
    """Bit widths for path-compressed nodes (defaults follow Tuck et al.).

    A *branch* node keeps the 256-bit bitmap; a *path* node stores up to
    ``max_path_length`` characters, one next pointer, one failure pointer per
    stored character (Tuck et al. keep a failure pointer for every position so
    a mismatch mid-path can restart correctly) and per-character match bits.
    """

    bitmap_bits: int = 256
    pointer_bits: int = 32
    match_bits: int = 32
    character_bits: int = 8
    max_path_length: int = 8

    def branch_node_bits(self) -> int:
        return self.bitmap_bits + 2 * self.pointer_bits + self.match_bits

    def path_node_bits(self, characters: int) -> int:
        if characters < 1:
            raise ValueError("path node must hold at least one character")
        if characters > self.max_path_length:
            raise ValueError("path node longer than max_path_length")
        return (
            characters * self.character_bits     # the compressed run
            + self.pointer_bits                  # next node
            + characters * self.pointer_bits     # per-position failure pointers
            + characters                         # per-position match flag
            + self.match_bits                    # match metadata
        )


@dataclass
class _PathNode:
    """One node of the path-compressed automaton."""

    kind: str                              # "branch" or "path"
    states: List[int] = field(default_factory=list)   # original trie states covered
    characters: bytes = b""                # for path nodes


class PathCompressedAhoCorasick(CompiledProgramMixin):
    """Path-compressed AC automaton built on top of the trie + failure function.

    Conforms to the :class:`repro.backend.CompiledProgram` protocol (backend
    name ``"path"``).  Compression only changes storage, not the state-level
    walk, so the resumable flow state is the underlying trie state id.
    """

    backend_name = "path"

    def __init__(self, trie: Trie, layout: Optional[PathNodeLayout] = None):
        self.trie = trie
        self.layout = layout or PathNodeLayout()
        nfa = AhoCorasickNFA(trie)
        self.fail = nfa.fail
        self.outputs = nfa.outputs
        self.nodes: List[_PathNode] = []
        self._node_of_state: Dict[int, int] = {}
        self._compress()

    @classmethod
    def from_patterns(
        cls, patterns: Sequence[bytes], layout: Optional[PathNodeLayout] = None
    ) -> "PathCompressedAhoCorasick":
        return cls(Trie.from_patterns(patterns), layout=layout)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _compress(self) -> None:
        """Group trie states into branch nodes and path nodes."""
        trie = self.trie
        visited = [False] * trie.num_states
        order = list(trie.iter_bfs())
        for state in order:
            if visited[state]:
                continue
            children = trie.children[state]
            is_chain_start = (
                state != ROOT
                and len(children) == 1
                and not trie.outputs[state]  # a match point must stay addressable
            )
            if not is_chain_start:
                visited[state] = True
                node_id = len(self.nodes)
                self.nodes.append(_PathNode(kind="branch", states=[state]))
                self._node_of_state[state] = node_id
                continue
            # Collect the maximal single-child chain starting at ``state``.
            chain = [state]
            visited[state] = True
            current = next(iter(children.values()))
            while (
                len(chain) < self.layout.max_path_length
                and len(trie.children[current]) == 1
                and not trie.outputs[current]
                and not visited[current]
            ):
                chain.append(current)
                visited[current] = True
                current = next(iter(trie.children[current].values()))
            node_id = len(self.nodes)
            characters = bytes(trie.label[s] for s in chain)
            self.nodes.append(_PathNode(kind="path", states=chain, characters=characters))
            for s in chain:
                self._node_of_state[s] = node_id

    def node_of(self, state: int) -> int:
        """Index into :attr:`nodes` of the node storing ``state`` — the
        compression cover, exposed for the static verifier."""
        return self._node_of_state[state]

    # ------------------------------------------------------------------
    # matching (state-level semantics are unchanged; compression only
    # affects storage, so we scan with the underlying failure automaton)
    # ------------------------------------------------------------------
    @property
    def patterns(self) -> Tuple[bytes, ...]:
        """The compiled patterns; pattern ids index this tuple."""
        return tuple(self.trie.patterns)

    def _scan_chunk(self, states: FlowState, chunk: bytes) -> Tuple[MatchList, FlowState]:
        """The failure-walk scan (single copy; the mixin derives ``match``)."""
        (scan_state,) = states
        trie = self.trie
        matches: MatchList = []
        state = scan_state.state
        base = scan_state.offset
        for position, byte in enumerate(chunk):
            while state != ROOT and byte not in trie.children[state]:
                state = self.fail[state]
            state = trie.children[state].get(byte, ROOT)
            if self.outputs[state]:
                matches.extend((base + position + 1, pid) for pid in self.outputs[state])
        prev1, prev2 = advance_history(scan_state.prev1, scan_state.prev2, chunk)
        return matches, (
            ScanState(state=state, prev1=prev1, prev2=prev2, offset=base + len(chunk)),
        )

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_path_nodes(self) -> int:
        return sum(1 for n in self.nodes if n.kind == "path")

    @property
    def num_branch_nodes(self) -> int:
        return sum(1 for n in self.nodes if n.kind == "branch")

    def compression_ratio(self) -> float:
        """Original state count divided by node count."""
        return self.trie.num_states / max(1, self.num_nodes)

    def memory_bits(self) -> int:
        bits = 0
        for node in self.nodes:
            if node.kind == "branch":
                bits += self.layout.branch_node_bits()
            else:
                bits += self.layout.path_node_bits(len(node.characters))
        return bits

    def memory_bytes(self) -> int:
        return (self.memory_bits() + 7) // 8


#: Memory reported by Tuck et al. / quoted in Table III for the same workload.
TUCK_PATH_COMPRESSED_REFERENCE_BYTES = 1_100_000
