"""Aho-Corasick multi-pattern matching automata.

Two variants are provided, mirroring Section III.A of the paper:

* :class:`AhoCorasickNFA` — the classic goto/failure formulation.  It is
  memory-frugal but a single input byte may follow several failure
  transitions, so the number of state traversals per byte is not bounded by
  one.  The matcher counts those wasted transitions so the paper's argument
  (fail pointers cannot guarantee one character per cycle) can be measured.

* :class:`AhoCorasickDFA` — the *move function* formulation: a full
  deterministic automaton where every state stores a next state for all 256
  byte values.  This is the structure the paper compresses; the transition
  table is kept as a dense ``numpy`` array so the compression analysis over
  hundreds of thousands of states stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..backend import CompiledProgramMixin, FlowState, ScanState, advance_history
from .trie import ALPHABET_SIZE, ROOT, Trie

MatchList = List[Tuple[int, int]]  # (end_position, pattern_id)


@dataclass
class NFAMatchStats:
    """Bookkeeping from an NFA scan used to quantify wasted transitions."""

    bytes_processed: int
    state_visits: int
    failure_transitions: int

    @property
    def visits_per_byte(self) -> float:
        if self.bytes_processed == 0:
            return 0.0
        return self.state_visits / self.bytes_processed


class AhoCorasickNFA:
    """Goto/failure Aho-Corasick automaton."""

    def __init__(self, trie: Trie):
        self.trie = trie
        self.fail: List[int] = [ROOT] * trie.num_states
        # output ids are propagated along failure links
        self.outputs: List[List[int]] = [list(o) for o in trie.outputs]
        self._build_failure_links()
        self._last_stats: Optional[NFAMatchStats] = None

    @classmethod
    def from_patterns(cls, patterns: Sequence[bytes]) -> "AhoCorasickNFA":
        return cls(Trie.from_patterns(patterns))

    def _build_failure_links(self) -> None:
        trie = self.trie
        queue: List[int] = []
        for child in trie.children[ROOT].values():
            self.fail[child] = ROOT
            queue.append(child)
        index = 0
        while index < len(queue):
            state = queue[index]
            index += 1
            for byte, child in trie.children[state].items():
                queue.append(child)
                fallback = self.fail[state]
                while fallback != ROOT and byte not in trie.children[fallback]:
                    fallback = self.fail[fallback]
                self.fail[child] = trie.children[fallback].get(byte, ROOT)
                if self.fail[child] == child:
                    self.fail[child] = ROOT
                self.outputs[child].extend(self.outputs[self.fail[child]])

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def match(self, data: bytes) -> MatchList:
        """Scan ``data`` and return ``(end_position, pattern_id)`` matches.

        ``end_position`` is the index *one past* the final byte of the match,
        so ``data[end_position - len(pattern):end_position] == pattern``.
        """
        trie = self.trie
        matches: MatchList = []
        state = ROOT
        visits = 0
        fail_steps = 0
        for position, byte in enumerate(data):
            visits += 1
            while state != ROOT and byte not in trie.children[state]:
                state = self.fail[state]
                visits += 1
                fail_steps += 1
            state = trie.children[state].get(byte, ROOT)
            if self.outputs[state]:
                matches.extend((position + 1, pid) for pid in self.outputs[state])
        self._last_stats = NFAMatchStats(
            bytes_processed=len(data),
            state_visits=visits,
            failure_transitions=fail_steps,
        )
        return matches

    @property
    def last_match_stats(self) -> Optional[NFAMatchStats]:
        """Statistics from the most recent :meth:`match` call."""
        return self._last_stats

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def stored_pointer_count(self) -> int:
        """Goto pointers plus one failure pointer per state."""
        goto_pointers = sum(len(c) for c in self.trie.children)
        return goto_pointers + self.trie.num_states

    def memory_bytes(self, pointer_bytes: int = 4) -> int:
        return self.stored_pointer_count() * pointer_bytes


class AhoCorasickDFA(CompiledProgramMixin):
    """Full-DFA (move function) Aho-Corasick automaton.

    Implements the :class:`repro.backend.CompiledProgram` protocol (backend
    name ``"ac"``): the per-flow state is a 1-tuple holding the current DFA
    state, so chunked :meth:`scan_from` delivery matches exactly like one
    contiguous :meth:`match`.

    Attributes
    ----------
    table:
        ``numpy`` array of shape ``(num_states, 256)``; ``table[s, c]`` is the
        next state when byte ``c`` is read in state ``s``.
    depth:
        Depth (prefix length) of every state.
    label:
        Final byte of every state's prefix (-1 for the root).
    parent_label:
        Byte of the state's parent (-1 when the parent is the root or the
        state itself is the root); used by the default-transition machinery.
    """

    backend_name = "ac"

    def __init__(self, trie: Trie):
        self.trie = trie
        self.num_states = trie.num_states
        self.depth = np.asarray(trie.depth, dtype=np.int32)
        self.label = np.asarray(trie.label, dtype=np.int32)
        parent = np.asarray(trie.parent, dtype=np.int32)
        self.parent = parent
        self.parent_label = np.where(parent == ROOT, -1, self.label[parent])
        self.parent_label[ROOT] = -1
        self.fail: List[int] = [ROOT] * trie.num_states
        self.outputs: List[List[int]] = [list(o) for o in trie.outputs]
        self.table = self._build_table()

    @classmethod
    def from_patterns(cls, patterns: Sequence[bytes]) -> "AhoCorasickDFA":
        return cls(Trie.from_patterns(patterns))

    def _build_table(self) -> np.ndarray:
        trie = self.trie
        table = np.zeros((self.num_states, ALPHABET_SIZE), dtype=np.int32)
        # Root row: its own goto edges, everything else stays at root.
        for byte, child in trie.children[ROOT].items():
            table[ROOT, byte] = child
            self.fail[child] = ROOT

        for state in trie.iter_bfs():
            if state == ROOT:
                continue
            # Inherit the fallback row, then overwrite with own goto edges.
            table[state] = table[self.fail[state]]
            for byte, child in trie.children[state].items():
                self.fail[child] = table[self.fail[state], byte]
                self.outputs[child] = list(trie.outputs[child]) + list(
                    self.outputs[self.fail[child]]
                )
                table[state, byte] = child
        return table

    @property
    def patterns(self) -> Tuple[bytes, ...]:
        """The compiled patterns; pattern ids index this tuple."""
        return tuple(self.trie.patterns)

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def step(self, state: int, byte: int) -> int:
        return int(self.table[state, byte])

    def _scan_chunk(self, states: FlowState, chunk: bytes) -> Tuple[MatchList, FlowState]:
        """Scan one stream segment; exactly one transition per input byte.

        This is the single copy of the matching walk — the mixin derives
        ``match``/``scan``/``scan_from`` from it.
        """
        (scan_state,) = states
        matches: MatchList = []
        table = self.table
        outputs = self.outputs
        state = scan_state.state
        base = scan_state.offset
        for position, byte in enumerate(chunk):
            state = int(table[state, byte])
            if outputs[state]:
                matches.extend((base + position + 1, pid) for pid in outputs[state])
        prev1, prev2 = advance_history(scan_state.prev1, scan_state.prev2, chunk)
        return matches, (
            ScanState(state=state, prev1=prev1, prev2=prev2, offset=base + len(chunk)),
        )

    def iter_states(self, data: bytes) -> Iterator[int]:
        """Yield the state after each input byte (useful for equivalence tests)."""
        state = ROOT
        for byte in data:
            state = int(self.table[state, byte])
            yield state

    # ------------------------------------------------------------------
    # memory accounting (Section V.C baseline)
    # ------------------------------------------------------------------
    def non_root_transition_mask(self) -> np.ndarray:
        """Boolean mask of transitions whose target is not the root.

        The paper's "Original Aho-Corasick / Avg.Pointers" rows count only the
        pointers that must be stored, i.e. transitions to states other than
        the start state.
        """
        return self.table != ROOT

    def stored_pointer_count(self) -> int:
        return int(self.non_root_transition_mask().sum())

    def average_pointers_per_state(self) -> float:
        return self.stored_pointer_count() / self.num_states

    def pointer_counts_per_state(self) -> np.ndarray:
        return self.non_root_transition_mask().sum(axis=1)

    def memory_bytes(self, pointer_bytes: int = 4) -> int:
        """Naive memory footprint storing one pointer per non-root transition."""
        return self.stored_pointer_count() * pointer_bytes

    def full_table_memory_bytes(self, pointer_bytes: int = 4) -> int:
        """Footprint of the uncompressed 256-wide transition table."""
        return self.num_states * ALPHABET_SIZE * pointer_bytes

    def unique_starting_bytes(self) -> int:
        """Number of distinct first characters over all patterns (Table II 'd1')."""
        return len(self.trie.children[ROOT])


def verify_equivalent_matches(
    reference: MatchList, candidate: MatchList
) -> Tuple[bool, List[Tuple[int, int]]]:
    """Compare two match lists ignoring ordering; return (equal, differences)."""
    ref = set(reference)
    cand = set(candidate)
    if ref == cand:
        return True, []
    return False, sorted(ref.symmetric_difference(cand))
