"""Packets and synthetic traffic generation."""

from .generator import GeneratedFlow, TrafficGenerator, TrafficProfile
from .packet import FiveTuple, MatchEvent, Packet

__all__ = [
    "GeneratedFlow",
    "TrafficGenerator",
    "TrafficProfile",
    "FiveTuple",
    "MatchEvent",
    "Packet",
]
