"""Packets and synthetic traffic generation."""

from .generator import MANGLE_MODES, GeneratedFlow, TrafficGenerator, TrafficProfile
from .packet import FiveTuple, MatchEvent, Packet

__all__ = [
    "GeneratedFlow",
    "MANGLE_MODES",
    "TrafficGenerator",
    "TrafficProfile",
    "FiveTuple",
    "MatchEvent",
    "Packet",
]
