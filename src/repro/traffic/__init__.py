"""Packets and synthetic traffic generation."""

from .generator import TrafficGenerator, TrafficProfile
from .packet import FiveTuple, MatchEvent, Packet

__all__ = [
    "TrafficGenerator",
    "TrafficProfile",
    "FiveTuple",
    "MatchEvent",
    "Packet",
]
