"""Synthetic traffic generation with controllable attack-string injection.

The paper measures worst-case guaranteed throughput, which is independent of
packet content, but functional verification and the software benchmarks need
realistic packet streams: background traffic that occasionally contains rule
strings at known offsets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..rulesets.ruleset import RuleSet
from .packet import FiveTuple, Packet

_PROTOCOLS = ("tcp", "udp")

_BACKGROUND_WORDS = (
    b"GET /index.html HTTP/1.1\r\n", b"Host: example.com\r\n", b"Accept: */*\r\n",
    b"Content-Type: text/html\r\n", b"the quick brown fox ", b"lorem ipsum dolor ",
    b"0123456789", b"abcdefghijklmnopqrstuvwxyz", b"\r\n\r\n",
)


@dataclass(frozen=True)
class TrafficProfile:
    """Shape of the generated packet stream."""

    mean_payload_bytes: int = 512
    min_payload_bytes: int = 40
    max_payload_bytes: int = 1460
    #: probability that a packet has at least one rule string injected
    attack_probability: float = 0.2
    #: maximum number of rule strings injected into an attack packet
    max_injected: int = 3
    #: fraction of background bytes drawn from ASCII protocol chatter
    ascii_fraction: float = 0.7

    def __post_init__(self) -> None:
        if self.min_payload_bytes <= 0 or self.max_payload_bytes < self.min_payload_bytes:
            raise ValueError("invalid payload size bounds")
        if not 0.0 <= self.attack_probability <= 1.0:
            raise ValueError("attack_probability must be in [0, 1]")
        if self.max_injected < 1:
            raise ValueError("max_injected must be at least 1")


class TrafficGenerator:
    """Deterministic packet stream generator."""

    def __init__(
        self,
        ruleset: Optional[RuleSet] = None,
        profile: Optional[TrafficProfile] = None,
        seed: int = 1,
    ):
        self.ruleset = ruleset
        self.profile = profile or TrafficProfile()
        self._rng = random.Random(seed)
        self._next_id = 0

    # ------------------------------------------------------------------
    def packet(self) -> Packet:
        """Generate the next packet."""
        profile = self.profile
        rng = self._rng
        size = self._payload_size()
        payload = bytearray(self._background_bytes(size))

        injected: List[int] = []
        occupied: List[tuple] = []
        if (
            self.ruleset is not None
            and len(self.ruleset) > 0
            and rng.random() < profile.attack_probability
        ):
            count = rng.randint(1, profile.max_injected)
            for _ in range(count):
                rule = self.ruleset[rng.randrange(len(self.ruleset))]
                length = len(rule.pattern)
                if length >= len(payload):
                    offset = len(payload)
                    payload.extend(rule.pattern)
                else:
                    # avoid clobbering a previously injected pattern so that
                    # injected_sids is reliable ground truth
                    offset = None
                    for _attempt in range(8):
                        candidate = rng.randrange(0, len(payload) - length + 1)
                        if all(
                            candidate + length <= lo or candidate >= hi
                            for lo, hi in occupied
                        ):
                            offset = candidate
                            break
                    if offset is None:
                        offset = len(payload)
                        payload.extend(rule.pattern)
                    else:
                        payload[offset:offset + length] = rule.pattern
                occupied.append((offset, offset + length))
                injected.append(rule.sid)

        packet = Packet(
            payload=bytes(payload),
            header=self._header(),
            packet_id=self._next_id,
            injected_sids=injected,
        )
        self._next_id += 1
        return packet

    def packets(self, count: int) -> List[Packet]:
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.packet() for _ in range(count)]

    def stream(self) -> Iterator[Packet]:
        """Endless packet stream."""
        while True:
            yield self.packet()

    # ------------------------------------------------------------------
    def _payload_size(self) -> int:
        profile = self.profile
        size = int(self._rng.expovariate(1.0 / profile.mean_payload_bytes))
        return max(profile.min_payload_bytes, min(profile.max_payload_bytes, size))

    def _background_bytes(self, size: int) -> bytes:
        rng = self._rng
        out = bytearray()
        while len(out) < size:
            if rng.random() < self.profile.ascii_fraction:
                out += rng.choice(_BACKGROUND_WORDS)
            else:
                out += bytes(rng.randrange(0, 256) for _ in range(rng.randint(4, 16)))
        return bytes(out[:size])

    def _header(self) -> FiveTuple:
        rng = self._rng
        return FiveTuple(
            src_ip=f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(256)}",
            dst_ip=f"192.168.{rng.randrange(256)}.{rng.randrange(256)}",
            src_port=rng.randrange(1024, 65536),
            dst_port=rng.choice((80, 443, 25, 21, 139, 445, 8080, 3306)),
            protocol=rng.choice(_PROTOCOLS),
        )
