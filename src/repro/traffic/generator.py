"""Synthetic traffic generation with controllable attack-string injection.

The paper measures worst-case guaranteed throughput, which is independent of
packet content, but functional verification and the software benchmarks need
realistic packet streams: background traffic that occasionally contains rule
strings at known offsets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Sequence, Tuple

from ..rulesets.ruleset import PatternRule, RuleSet
from .packet import FiveTuple, Packet

_PROTOCOLS = ("tcp", "udp")

_TCP_FIN = 0x01
_TCP_SYN = 0x02
_TCP_ACK = 0x10

#: Wire-level adversities :meth:`TrafficGenerator.mangle` can apply.
MANGLE_MODES = ("reorder", "retransmit", "overlap-split")

_BACKGROUND_WORDS = (
    b"GET /index.html HTTP/1.1\r\n", b"Host: example.com\r\n", b"Accept: */*\r\n",
    b"Content-Type: text/html\r\n", b"the quick brown fox ", b"lorem ipsum dolor ",
    b"0123456789", b"abcdefghijklmnopqrstuvwxyz", b"\r\n\r\n",
)


@dataclass(frozen=True)
class TrafficProfile:
    """Shape of the generated packet stream."""

    mean_payload_bytes: int = 512
    min_payload_bytes: int = 40
    max_payload_bytes: int = 1460
    #: probability that a packet has at least one rule string injected
    attack_probability: float = 0.2
    #: maximum number of rule strings injected into an attack packet
    max_injected: int = 3
    #: fraction of background bytes drawn from ASCII protocol chatter
    ascii_fraction: float = 0.7

    def __post_init__(self) -> None:
        if self.mean_payload_bytes <= 0:
            raise ValueError(f"mean_payload_bytes must be positive, got {self.mean_payload_bytes}")
        if self.min_payload_bytes <= 0 or self.max_payload_bytes < self.min_payload_bytes:
            raise ValueError("invalid payload size bounds")
        if not 0.0 <= self.attack_probability <= 1.0:
            raise ValueError(f"attack_probability must be in [0, 1], got {self.attack_probability}")
        if self.max_injected < 1:
            raise ValueError(f"max_injected must be at least 1, got {self.max_injected}")


@dataclass
class GeneratedFlow:
    """A multi-packet flow emitted by :meth:`TrafficGenerator.flow`.

    All packets share one 5-tuple header.  ``injected_sids`` is the ground
    truth of every rule string embedded in the flow's byte stream;
    ``split_sids`` is the subset whose pattern was deliberately cut across
    consecutive segments, so per-packet scanning misses it while stateful
    flow scanning must find it.
    """

    header: FiveTuple
    packets: List[Packet]
    injected_sids: List[int] = field(default_factory=list)
    split_sids: List[int] = field(default_factory=list)

    @property
    def payload(self) -> bytes:
        """The reassembled byte stream of the whole flow."""
        return b"".join(packet.payload for packet in self.packets)

    def __len__(self) -> int:
        return len(self.packets)


class TrafficGenerator:
    """Deterministic packet stream generator."""

    def __init__(
        self,
        ruleset: Optional[RuleSet] = None,
        profile: Optional[TrafficProfile] = None,
        seed: int = 1,
    ):
        self.ruleset = ruleset
        self.profile = profile or TrafficProfile()
        self._rng = random.Random(seed)
        self._next_id = 0

    # ------------------------------------------------------------------
    def packet(self) -> Packet:
        """Generate the next packet."""
        profile = self.profile
        rng = self._rng
        size = self._payload_size()
        payload = bytearray(self._background_bytes(size))

        injected: List[int] = []
        occupied: List[tuple] = []
        if (
            self.ruleset is not None
            and len(self.ruleset) > 0
            and rng.random() < profile.attack_probability
        ):
            count = rng.randint(1, profile.max_injected)
            for _ in range(count):
                rule = self.ruleset[rng.randrange(len(self.ruleset))]
                length = len(rule.pattern)
                if length >= len(payload):
                    offset = len(payload)
                    payload.extend(rule.pattern)
                else:
                    # avoid clobbering a previously injected pattern so that
                    # injected_sids is reliable ground truth
                    offset = None
                    for _attempt in range(8):
                        candidate = rng.randrange(0, len(payload) - length + 1)
                        if all(
                            candidate + length <= lo or candidate >= hi
                            for lo, hi in occupied
                        ):
                            offset = candidate
                            break
                    if offset is None:
                        offset = len(payload)
                        payload.extend(rule.pattern)
                    else:
                        payload[offset:offset + length] = rule.pattern
                occupied.append((offset, offset + length))
                injected.append(rule.sid)

        packet = Packet(
            payload=bytes(payload),
            header=self._header(),
            packet_id=self._next_id,
            injected_sids=injected,
        )
        self._next_id += 1
        return packet

    def packets(self, count: int) -> List[Packet]:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.packet() for _ in range(count)]

    def stream(self) -> Iterator[Packet]:
        """Endless packet stream."""
        while True:
            yield self.packet()

    # ------------------------------------------------------------------
    # multi-packet flows (segments of one byte stream)
    # ------------------------------------------------------------------
    def flow(
        self,
        num_packets: int = 4,
        split_patterns: int = 1,
        split_segments: int = 2,
        whole_patterns: int = 0,
        segment_bytes: Optional[int] = None,
    ) -> GeneratedFlow:
        """Generate one flow of ``num_packets`` segments sharing a 5-tuple.

        ``split_patterns`` rule strings are deliberately cut across
        ``split_segments`` (2 or 3) consecutive segments: the head of the
        pattern ends one segment, the tail opens a later one (for three
        segments the middle segment consists of nothing but the pattern's
        middle fragment).  The reassembled :attr:`GeneratedFlow.payload`
        therefore contains each split pattern contiguously while no single
        packet does — the adversarial case for per-packet scanning.
        ``whole_patterns`` additionally embeds rule strings entirely inside
        single segments (detectable either way).
        """
        if num_packets < 1:
            raise ValueError(f"num_packets must be at least 1, got {num_packets}")
        if segment_bytes is not None and segment_bytes < 1:
            # 0 must not silently fall back to the profile's random size
            raise ValueError(f"segment_bytes must be at least 1, got {segment_bytes}")
        if split_segments not in (2, 3):
            raise ValueError("split_segments must be 2 or 3")
        if split_patterns > 0 and num_packets < split_segments:
            raise ValueError(
                f"a {split_segments}-segment split needs at least {split_segments} packets"
            )
        if (split_patterns or whole_patterns) and not self.ruleset:
            raise ValueError("injections require a ruleset")
        rng = self._rng

        # 1. plan the splits: non-overlapping runs of consecutive segments
        split_plans: List[Tuple[int, PatternRule, Tuple[int, ...]]] = []
        used_segments: set = set()
        if split_patterns:
            candidates = [
                rule for rule in self.ruleset if len(rule.pattern) >= split_segments
            ]
            if not candidates:
                raise ValueError(
                    f"no rule pattern is long enough to span {split_segments} segments"
                )
            starts = list(range(0, num_packets - split_segments + 1))
            rng.shuffle(starts)
            for start in starts:
                if len(split_plans) == split_patterns:
                    break
                span = range(start, start + split_segments)
                if any(segment in used_segments for segment in span):
                    continue
                rule = candidates[rng.randrange(len(candidates))]
                length = len(rule.pattern)
                if split_segments == 2:
                    cuts: Tuple[int, ...] = (rng.randint(1, length - 1),)
                else:
                    first = rng.randint(1, length - 2)
                    cuts = (first, rng.randint(first + 1, length - 1))
                split_plans.append((start, rule, cuts))
                used_segments.update(span)
            if len(split_plans) < split_patterns:
                raise ValueError(
                    f"cannot place {split_patterns} non-overlapping "
                    f"{split_segments}-segment splits in {num_packets} packets"
                )

        # middle segments of 3-way splits are replaced outright below
        replaced = {
            start + 1 for start, _, cuts in split_plans if len(cuts) == 2
        }

        # 2. background bytes for every segment
        payloads = [
            bytearray(
                self._background_bytes(
                    segment_bytes if segment_bytes is not None else self._payload_size()
                )
            )
            for _ in range(num_packets)
        ]
        per_packet_sids: List[List[int]] = [[] for _ in range(num_packets)]
        injected: List[int] = []

        # 3. whole patterns, inserted inside one segment (never a replaced one)
        for _ in range(whole_patterns):
            segment = rng.choice([i for i in range(num_packets) if i not in replaced])
            rule = self.ruleset[rng.randrange(len(self.ruleset))]
            offset = rng.randint(0, len(payloads[segment]))
            payloads[segment][offset:offset] = rule.pattern
            per_packet_sids[segment].append(rule.sid)
            injected.append(rule.sid)

        # 4. apply the splits at the segment boundaries
        split_sids: List[int] = []
        for start, rule, cuts in split_plans:
            pattern = rule.pattern
            if len(cuts) == 1:
                cut = cuts[0]
                payloads[start] += pattern[:cut]
                payloads[start + 1][0:0] = pattern[cut:]
                end_segment = start + 1
            else:
                first, second = cuts
                payloads[start] += pattern[:first]
                payloads[start + 1] = bytearray(pattern[first:second])
                payloads[start + 2][0:0] = pattern[second:]
                end_segment = start + 2
            per_packet_sids[end_segment].append(rule.sid)
            injected.append(rule.sid)
            split_sids.append(rule.sid)

        header = self._header()
        packets = []
        for payload, sids in zip(payloads, per_packet_sids):
            packets.append(
                Packet(
                    payload=bytes(payload),
                    header=header,
                    packet_id=self._next_id,
                    injected_sids=sids,
                )
            )
            self._next_id += 1
        return GeneratedFlow(
            header=header,
            packets=packets,
            injected_sids=injected,
            split_sids=split_sids,
        )

    def flows(self, count: int, **kwargs) -> List[GeneratedFlow]:
        """Generate ``count`` independent flows (see :meth:`flow`)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.flow(**kwargs) for _ in range(count)]

    # ------------------------------------------------------------------
    # adversarial wire rendering (input for repro.proto reassembly)
    # ------------------------------------------------------------------
    def mangle(
        self,
        flow: GeneratedFlow,
        mode: str = "reorder",
        overlap_bytes: int = 4,
        fin: bool = True,
    ) -> GeneratedFlow:
        """Render ``flow`` as adversarial on-the-wire TCP segments.

        The returned flow carries the same byte *stream* and ground-truth
        sids, but its packets are what a hostile or lossy network would
        deliver: a SYN (random ISN) followed by data segments with explicit
        ``tcp_seq``/``tcp_flags``, disturbed per ``mode``:

        * ``"reorder"``       — data segments shuffled; sequence numbers
          carry the true order, payload boundaries are preserved;
        * ``"retransmit"``    — in order, but some segments delivered twice
          (byte-identical copies, so overlap policies agree);
        * ``"overlap-split"`` — the stream re-cut at new boundaries with
          each later segment re-sending the previous segment's last
          ``overlap_bytes`` bytes (consistent overlaps).

        With ``fin`` the last data segment carries FIN, so the reassembler
        retires the flow without waiting for an eviction or flush.  The
        header's protocol is forced to ``"tcp"`` (sequence numbers mean
        nothing elsewhere).  Per-packet scanning of the mangled flow is
        meaningless — only the reassembled stream is; that is the point.
        """
        if mode not in MANGLE_MODES:
            raise ValueError(
                f"unknown mangle mode {mode!r}; available: {', '.join(MANGLE_MODES)}"
            )
        if overlap_bytes < 1:
            raise ValueError(f"overlap_bytes must be at least 1, got {overlap_bytes}")
        rng = self._rng
        header = flow.header
        if header.protocol != "tcp":
            header = replace(header, protocol="tcp")
        isn = rng.randrange(1, 2**32)

        # (stream offset, payload) data segments
        segments: List[Tuple[int, bytes]] = []
        if mode == "overlap-split":
            stream = flow.payload
            position = 0
            cuts: List[int] = []
            while position < len(stream):
                position = min(len(stream), position + rng.randint(8, 64))
                cuts.append(position)
            start = 0
            for index, end in enumerate(cuts):
                low = max(0, start - overlap_bytes) if index else 0
                segments.append((low, stream[low:end]))
                start = end
        else:
            offset = 0
            for packet in flow.packets:
                segments.append((offset, packet.payload))
                offset += len(packet.payload)
        segments = [(off, data) for off, data in segments if data]

        flag_of = {off: _TCP_ACK for off, _ in segments}
        if fin and segments:
            flag_of[segments[-1][0]] |= _TCP_FIN
        if mode == "reorder" and len(segments) > 1:
            shuffled = segments[:]
            while shuffled == segments:
                rng.shuffle(shuffled)
            segments = shuffled
        elif mode == "retransmit" and segments:
            # duplicates land before the FIN segment: a copy arriving after
            # the close would re-open the flow as a new best-effort stream
            limit = len(segments) - 1 if fin else len(segments)
            for _ in range(max(1, limit // 3)):
                if limit < 1:
                    break
                victim = rng.randrange(limit)
                segments.insert(rng.randint(victim + 1, limit), segments[victim])
                limit += 1

        packets = [
            Packet(
                payload=b"",
                header=header,
                packet_id=self._next_id,
                tcp_seq=isn,
                tcp_flags=_TCP_SYN,
            )
        ]
        self._next_id += 1
        for off, data in segments:
            packets.append(
                Packet(
                    payload=data,
                    header=header,
                    packet_id=self._next_id,
                    tcp_seq=(isn + 1 + off) % 2**32,
                    tcp_flags=flag_of[off],
                )
            )
            self._next_id += 1
        return GeneratedFlow(
            header=header,
            packets=packets,
            injected_sids=list(flow.injected_sids),
            split_sids=list(flow.split_sids),
        )

    @staticmethod
    def export_pcap(
        destination,
        traffic: Sequence,
        fmt: str = "pcap",
        nanosecond: bool = False,
    ) -> int:
        """Write generated traffic to a capture file (pcap or pcapng).

        ``traffic`` is either a packet list or a flow list (flows are
        interleaved into the arrival order a scan service would see).  The
        written capture round-trips: reading it back with
        :func:`repro.capture.load_packets` yields the same headers and
        payloads in the same order, so replayed scans find the same matches.
        Packet *ids* are not on the wire — a replay renumbers them in capture
        order, so event streams are byte-identical to an in-memory scan of
        the packets renumbered the same way (arrival order), and match
        in-memory events of the original list modulo ``packet_id``.
        Returns the number of frames written.
        """
        # imported lazily: repro.capture depends on repro.traffic.packet
        from ..capture.replay import write_packets

        if traffic and isinstance(traffic[0], GeneratedFlow):
            traffic = TrafficGenerator.interleave(traffic)
        return write_packets(destination, traffic, fmt=fmt, nanosecond=nanosecond)

    @staticmethod
    def interleave(flows: Sequence[GeneratedFlow]) -> List[Packet]:
        """Round-robin merge: one packet per flow per round, order preserved.

        This is the arrival pattern a scan service sees: segments of many
        concurrent flows interleaved, with each flow's own segments in order.
        """
        merged: List[Packet] = []
        round_index = 0
        remaining = True
        while remaining:
            remaining = False
            for flow in flows:
                if round_index < len(flow.packets):
                    merged.append(flow.packets[round_index])
                    remaining = True
            round_index += 1
        return merged

    # ------------------------------------------------------------------
    def _payload_size(self) -> int:
        profile = self.profile
        size = int(self._rng.expovariate(1.0 / profile.mean_payload_bytes))
        return max(profile.min_payload_bytes, min(profile.max_payload_bytes, size))

    def _background_bytes(self, size: int) -> bytes:
        rng = self._rng
        out = bytearray()
        while len(out) < size:
            if rng.random() < self.profile.ascii_fraction:
                out += rng.choice(_BACKGROUND_WORDS)
            else:
                out += bytes(rng.randrange(0, 256) for _ in range(rng.randint(4, 16)))
        return bytes(out[:size])

    def _header(self) -> FiveTuple:
        rng = self._rng
        return FiveTuple(
            src_ip=f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(256)}",
            dst_ip=f"192.168.{rng.randrange(256)}.{rng.randrange(256)}",
            src_port=rng.randrange(1024, 65536),
            dst_port=rng.choice((80, 443, 25, 21, 139, 445, 8080, 3306)),
            protocol=rng.choice(_PROTOCOLS),
        )
