"""Packet abstraction used by the traffic generator, IDS pipeline and hardware model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class FiveTuple:
    """The classic 5-tuple a router's header classifier operates on."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: str

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"port {port} out of range")


@dataclass
class Packet:
    """A packet: header 5-tuple plus payload bytes.

    ``injected_sids`` records the ground truth of which rules' patterns were
    deliberately embedded in the payload by the traffic generator; scanning
    may legitimately find more matches (patterns can occur by accident).

    ``tcp_seq``/``tcp_flags`` are the on-the-wire TCP sequence number and
    flag byte when known (capture replay and adversarial traffic set them);
    ``None`` means "no usable sequence state" and the :mod:`repro.proto`
    reassembler falls back to arrival order for the flow.
    """

    payload: bytes
    header: Optional[FiveTuple] = None
    packet_id: int = 0
    injected_sids: List[int] = field(default_factory=list)
    tcp_seq: Optional[int] = None
    tcp_flags: Optional[int] = None

    @property
    def length(self) -> int:
        return len(self.payload)

    def __len__(self) -> int:
        return len(self.payload)


@dataclass(frozen=True)
class MatchEvent:
    """A reported match: which packet, where it ended, which string number."""

    packet_id: int
    end_offset: int
    string_number: int
