"""FPGA device models for the two targets of the paper (Table I).

The paper implements the accelerator in VHDL on an Altera Cyclone III
EP3C120F484C7 (4 string matching blocks) and a Stratix III EP3SE260H780C2
(6 blocks).  We cannot run Quartus II, so the devices are captured as
parametric models: block-RAM geometry, the memory fmax measured by the paper,
and logic-cost coefficients calibrated against the Table I utilisation
figures.  The calibration constants are data, not derivations — they make the
resource/power models reproduce the paper's operating points so the
*trends* (scaling with block count, ruleset size and clock frequency) can be
explored; see DESIGN.md section 2 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class BlockRAMGeometry:
    """Geometry of one embedded memory block (Altera M9K)."""

    name: str
    bits: int
    #: (depth, width) configurations available in true dual-port mode.
    true_dual_port_configs: Tuple[Tuple[int, int], ...]
    #: (depth, width) configurations available in simple dual-port mode.
    simple_dual_port_configs: Tuple[Tuple[int, int], ...]


#: Altera M9K block: 9,216 bits.  True dual-port mode tops out at x18 data
#: width; simple dual-port allows x36.
M9K = BlockRAMGeometry(
    name="M9K",
    bits=9216,
    true_dual_port_configs=((8192, 1), (4096, 2), (2048, 4), (1024, 9), (512, 18)),
    simple_dual_port_configs=(
        (8192, 1),
        (4096, 2),
        (2048, 4),
        (1024, 9),
        (512, 18),
        (256, 36),
    ),
)


@dataclass(frozen=True)
class FPGADevice:
    """One FPGA target plus the paper's measured/configured operating point."""

    name: str
    family: str
    process_nm: int
    core_voltage: float
    logic_elements: int
    m9k_blocks: int
    m144k_blocks: int
    block_ram: BlockRAMGeometry
    #: memory clock achieved by the paper's implementation (Table I)
    memory_fmax_mhz: float
    #: string matching blocks instantiated by the paper on this device
    num_matching_blocks: int
    #: 324-bit words available per block for the state machine
    state_machine_words: int
    #: calibrated logic cost coefficients (logic cells per ...)
    logic_per_engine: int
    logic_per_block: int
    logic_top_level: int
    #: additional block RAMs per matching block for packet/match buffering
    m9k_overhead_per_block: int
    #: power model calibration (see repro.fpga.power)
    static_power_watts: float
    dynamic_watts_per_mhz_per_block: float

    @property
    def engines_per_block(self) -> int:
        """Six engines per block, three per memory port (Section IV.B)."""
        return 6

    @property
    def engine_fmax_mhz(self) -> float:
        """Engines run at one third of the memory clock."""
        return self.memory_fmax_mhz / 3.0

    @property
    def total_engines(self) -> int:
        return self.num_matching_blocks * self.engines_per_block

    def logic_estimate(self, num_blocks: int | None = None) -> int:
        """Logic-cell estimate for ``num_blocks`` matching blocks."""
        blocks = self.num_matching_blocks if num_blocks is None else num_blocks
        per_block = self.engines_per_block * self.logic_per_engine + self.logic_per_block
        return blocks * per_block + self.logic_top_level

    def describe(self) -> Dict[str, object]:
        return {
            "device": self.name,
            "family": self.family,
            "process_nm": self.process_nm,
            "core_voltage": self.core_voltage,
            "logic_elements": self.logic_elements,
            "m9k_blocks": self.m9k_blocks,
            "memory_fmax_mhz": self.memory_fmax_mhz,
            "matching_blocks": self.num_matching_blocks,
            "state_machine_words_per_block": self.state_machine_words,
        }


#: Cyclone III EP3C120F484C7 — the low-power target (4 blocks, OC-192 class).
#: Logic/power coefficients calibrated to Table I (35,511 LEs, 404 M9Ks,
#: 233.15 MHz) and Figure 7 (2.78 W peak).
CYCLONE_III = FPGADevice(
    name="EP3C120F484C7",
    family="Cyclone III",
    process_nm=65,
    core_voltage=1.2,
    logic_elements=119_088,
    m9k_blocks=432,
    m144k_blocks=0,
    block_ram=M9K,
    memory_fmax_mhz=233.15,
    num_matching_blocks=4,
    state_machine_words=2560,
    logic_per_engine=1235,
    logic_per_block=1360,
    logic_top_level=691,
    m9k_overhead_per_block=2,
    static_power_watts=0.35,
    dynamic_watts_per_mhz_per_block=0.0026,
)

#: Stratix III EP3SE260H780C2 — the high-throughput target (6 blocks, OC-768
#: class).  Calibrated to Table I (69,585 ALUTs, 822 M9Ks, 460.19 MHz) and
#: Figure 8 (13.28 W peak).
STRATIX_III = FPGADevice(
    name="EP3SE260H780C2",
    family="Stratix III",
    process_nm=65,
    core_voltage=1.1,
    logic_elements=254_400,
    m9k_blocks=864,
    m144k_blocks=48,
    block_ram=M9K,
    memory_fmax_mhz=460.19,
    num_matching_blocks=6,
    state_machine_words=3584,
    logic_per_engine=1707,
    logic_per_block=1253,
    logic_top_level=825,
    m9k_overhead_per_block=2,
    static_power_watts=1.40,
    dynamic_watts_per_mhz_per_block=0.0043,
)

#: Devices by short name, used by the CLI and benchmark harness.
DEVICES: Dict[str, FPGADevice] = {
    "cyclone3": CYCLONE_III,
    "stratix3": STRATIX_III,
}


def get_device(name: str) -> FPGADevice:
    """Look up a device by short name (``cyclone3`` / ``stratix3``)."""
    key = name.lower().replace(" ", "").replace("-", "")
    if key in DEVICES:
        return DEVICES[key]
    for device in DEVICES.values():
        if device.name.lower() == key:
            return device
    raise KeyError(f"unknown device {name!r}; known: {sorted(DEVICES)}")
