"""Power model (reproduces Figures 7 and 8).

The paper measured power with Quartus PowerPlay driven by ModelSim VCD
traces while sweeping the accelerator clock.  An FPGA's power at fixed
voltage decomposes into a static term and a dynamic term proportional to
clock frequency and the amount of switching logic, so we model

    P(f) = P_static + k_dyn * f * active_blocks

with ``P_static`` and ``k_dyn`` calibrated per device to the paper's peak
operating points (2.78 W for Cyclone III at 233.15 MHz with 4 blocks,
13.28 W for Stratix III at 460.19 MHz with 6 blocks).  Sweeping ``f`` then
yields the power-vs-throughput lines of Figures 7 and 8: every ruleset sees
the same power at a given clock, but the achievable *throughput* differs by
the number of block groups, which is what fans the curves out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .devices import FPGADevice
from .throughput import accelerator_throughput_gbps


@dataclass(frozen=True)
class PowerPoint:
    """One (clock, power, throughput) sample of the sweep."""

    memory_clock_mhz: float
    power_watts: float
    throughput_gbps: float


class PowerModel:
    """Static + dynamic power model for one device."""

    def __init__(
        self,
        device: FPGADevice,
        static_watts: Optional[float] = None,
        dynamic_watts_per_mhz_per_block: Optional[float] = None,
    ):
        self.device = device
        self.static_watts = (
            device.static_power_watts if static_watts is None else static_watts
        )
        self.dynamic_coefficient = (
            device.dynamic_watts_per_mhz_per_block
            if dynamic_watts_per_mhz_per_block is None
            else dynamic_watts_per_mhz_per_block
        )
        if self.static_watts < 0 or self.dynamic_coefficient < 0:
            raise ValueError(
                f"power coefficients must be non-negative, got "
                f"static={self.static_watts}, dynamic={self.dynamic_coefficient}"
            )

    def power_watts(
        self, memory_clock_mhz: float, active_blocks: Optional[int] = None
    ) -> float:
        """Power at ``memory_clock_mhz`` with ``active_blocks`` blocks toggling."""
        if memory_clock_mhz < 0:
            raise ValueError(f"memory_clock_mhz must be non-negative, got {memory_clock_mhz}")
        blocks = (
            self.device.num_matching_blocks if active_blocks is None else active_blocks
        )
        if blocks < 0 or blocks > self.device.num_matching_blocks:
            raise ValueError(
                f"active_blocks must be between 0 and {self.device.num_matching_blocks}"
            )
        return self.static_watts + self.dynamic_coefficient * memory_clock_mhz * blocks

    def peak_power_watts(self) -> float:
        return self.power_watts(self.device.memory_fmax_mhz)

    def sweep(
        self,
        blocks_per_group: int,
        num_points: int = 12,
        max_clock_mhz: Optional[float] = None,
        active_blocks: Optional[int] = None,
    ) -> List[PowerPoint]:
        """Power/throughput samples from 0 to the maximum memory clock.

        ``blocks_per_group`` is the number of blocks the ruleset occupies,
        which sets the throughput achieved at each clock frequency.
        """
        if num_points < 2:
            raise ValueError(f"num_points must be at least 2, got {num_points}")
        top = self.device.memory_fmax_mhz if max_clock_mhz is None else max_clock_mhz
        points: List[PowerPoint] = []
        for index in range(num_points):
            clock = top * index / (num_points - 1)
            throughput = (
                accelerator_throughput_gbps(
                    clock, self.device.num_matching_blocks, blocks_per_group
                )
                if clock > 0
                else 0.0
            )
            points.append(
                PowerPoint(
                    memory_clock_mhz=clock,
                    power_watts=self.power_watts(clock, active_blocks),
                    throughput_gbps=throughput,
                )
            )
        return points

    def energy_per_bit_nanojoules(self, blocks_per_group: int) -> float:
        """Energy efficiency at the peak operating point (nJ per payload bit)."""
        throughput_bps = (
            accelerator_throughput_gbps(
                self.device.memory_fmax_mhz,
                self.device.num_matching_blocks,
                blocks_per_group,
            )
            * 1e9
        )
        if throughput_bps == 0:
            return float("inf")
        return self.peak_power_watts() / throughput_bps * 1e9
