"""FPGA device, resource, power and throughput models."""

from .devices import CYCLONE_III, DEVICES, M9K, STRATIX_III, BlockRAMGeometry, FPGADevice, get_device
from .power import PowerModel, PowerPoint
from .resources import (
    MemorySpec,
    ResourceEstimate,
    block_memories,
    block_rams_for_memory,
    estimate_resources,
    max_blocks_that_fit,
)
from .throughput import (
    BITS_PER_CYCLE_PER_BLOCK,
    OC192_GBPS,
    OC768_GBPS,
    ThroughputPoint,
    accelerator_throughput_gbps,
    block_throughput_gbps,
    device_throughput,
    engine_throughput_gbps,
    line_rates_met,
    scan_time_seconds,
)

__all__ = [
    "CYCLONE_III",
    "STRATIX_III",
    "DEVICES",
    "M9K",
    "BlockRAMGeometry",
    "FPGADevice",
    "get_device",
    "PowerModel",
    "PowerPoint",
    "MemorySpec",
    "ResourceEstimate",
    "block_memories",
    "block_rams_for_memory",
    "estimate_resources",
    "max_blocks_that_fit",
    "BITS_PER_CYCLE_PER_BLOCK",
    "OC192_GBPS",
    "OC768_GBPS",
    "ThroughputPoint",
    "accelerator_throughput_gbps",
    "block_throughput_gbps",
    "device_throughput",
    "engine_throughput_gbps",
    "line_rates_met",
    "scan_time_seconds",
]
