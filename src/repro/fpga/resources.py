"""Analytical FPGA resource estimation (reproduces Table I).

Block RAM usage is computed by tiling each logical memory (state machine,
matching-string-number memory, lookup table — all true dual-port) onto M9K
blocks using the best available aspect ratio, exactly the optimisation a
synthesis tool performs.  Logic usage uses the per-engine / per-block
coefficients calibrated in :mod:`repro.fpga.devices`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.lookup_table import LOOKUP_TABLE_WORDS, LOOKUP_WORD_BITS
from ..core.match_memory import MATCH_MEMORY_WORDS, MATCH_WORD_BITS
from ..core.state_types import WORD_BITS
from .devices import BlockRAMGeometry, FPGADevice


@dataclass(frozen=True)
class MemorySpec:
    """A logical memory to be mapped onto block RAM."""

    name: str
    width_bits: int
    depth_words: int
    true_dual_port: bool = True

    @property
    def total_bits(self) -> int:
        return self.width_bits * self.depth_words


def block_rams_for_memory(spec: MemorySpec, geometry: BlockRAMGeometry) -> int:
    """Minimum number of block RAMs needed to implement ``spec``.

    For every legal (depth, width) configuration the tile count is
    ``ceil(width / tile_width) * ceil(depth / tile_depth)``; the synthesis
    tool picks the cheapest.
    """
    if spec.width_bits <= 0 or spec.depth_words <= 0:
        raise ValueError("memory must have positive width and depth")
    configs = (
        geometry.true_dual_port_configs
        if spec.true_dual_port
        else geometry.simple_dual_port_configs
    )
    best: Optional[int] = None
    for depth, width in configs:
        tiles = math.ceil(spec.width_bits / width) * math.ceil(spec.depth_words / depth)
        if best is None or tiles < best:
            best = tiles
    assert best is not None
    return best


def block_memories(device: FPGADevice, state_machine_words: Optional[int] = None) -> List[MemorySpec]:
    """The three true dual-port memories inside one string matching block."""
    words = device.state_machine_words if state_machine_words is None else state_machine_words
    return [
        MemorySpec("state_machine", WORD_BITS, words),
        MemorySpec("match_numbers", MATCH_WORD_BITS, MATCH_MEMORY_WORDS),
        MemorySpec("lookup_table", LOOKUP_WORD_BITS, LOOKUP_TABLE_WORDS),
    ]


@dataclass
class ResourceEstimate:
    """Resource utilisation of a full accelerator on one device."""

    device: FPGADevice
    num_blocks: int
    logic_cells: int
    m9k_blocks: int
    memory_breakdown: Dict[str, int] = field(default_factory=dict)

    @property
    def logic_utilisation(self) -> float:
        return self.logic_cells / self.device.logic_elements

    @property
    def m9k_utilisation(self) -> float:
        return self.m9k_blocks / self.device.m9k_blocks

    def fits(self) -> bool:
        return (
            self.logic_cells <= self.device.logic_elements
            and self.m9k_blocks <= self.device.m9k_blocks
        )

    def as_table_row(self) -> Dict[str, object]:
        """Row matching the columns of Table I."""
        return {
            "device": self.device.family,
            "logic": f"{self.logic_cells:,}/{self.device.logic_elements:,}",
            "m9k": f"{self.m9k_blocks}/{self.device.m9k_blocks}",
            "fmax_mhz": self.device.memory_fmax_mhz,
        }


def estimate_resources(
    device: FPGADevice,
    num_blocks: Optional[int] = None,
    state_machine_words: Optional[int] = None,
) -> ResourceEstimate:
    """Estimate logic and block-RAM usage for ``num_blocks`` matching blocks."""
    blocks = device.num_matching_blocks if num_blocks is None else num_blocks
    if blocks <= 0:
        raise ValueError(f"num_blocks must be positive, got {blocks}")

    breakdown: Dict[str, int] = {}
    per_block_m9k = 0
    for spec in block_memories(device, state_machine_words):
        tiles = block_rams_for_memory(spec, device.block_ram)
        breakdown[spec.name] = tiles
        per_block_m9k += tiles
    per_block_m9k += device.m9k_overhead_per_block
    breakdown["buffers"] = device.m9k_overhead_per_block

    return ResourceEstimate(
        device=device,
        num_blocks=blocks,
        logic_cells=device.logic_estimate(blocks),
        m9k_blocks=per_block_m9k * blocks,
        memory_breakdown=breakdown,
    )


def max_blocks_that_fit(device: FPGADevice, state_machine_words: Optional[int] = None) -> int:
    """Largest number of matching blocks the device can host (memory + logic)."""
    blocks = 0
    while True:
        estimate = estimate_resources(device, blocks + 1, state_machine_words)
        if not estimate.fits():
            return blocks
        blocks += 1
        if blocks > 64:  # safety net; no realistic device hosts more
            return blocks
