"""Throughput model (Sections IV.B and V.C).

Each string matching block contains six engines, each consuming one payload
byte per engine clock cycle; engines run at one third of the memory clock, so
a block processes ``6 * 8 * fmax / 3 = 16 * fmax`` bits per second — the
"16 x fmax" law quoted in the paper.

When a ruleset needs ``g`` blocks to hold its state machines, those ``g``
blocks scan the same packets together, so only ``total_blocks // g``
independent packet streams run concurrently and the aggregate throughput is
``(total_blocks // g) * 16 * fmax``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .devices import FPGADevice

#: bits of payload processed per memory-clock cycle by one block
BITS_PER_CYCLE_PER_BLOCK = 16


def block_throughput_gbps(memory_fmax_mhz: float) -> float:
    """Throughput of a single string matching block in Gbit/s."""
    if memory_fmax_mhz <= 0:
        raise ValueError(f"memory_fmax_mhz must be positive, got {memory_fmax_mhz}")
    return BITS_PER_CYCLE_PER_BLOCK * memory_fmax_mhz * 1e6 / 1e9


def accelerator_throughput_gbps(
    memory_fmax_mhz: float, total_blocks: int, blocks_per_group: int
) -> float:
    """Aggregate throughput when the ruleset occupies ``blocks_per_group`` blocks."""
    if total_blocks <= 0 or blocks_per_group <= 0:
        raise ValueError(
            f"block counts must be positive, got total_blocks={total_blocks}, "
            f"blocks_per_group={blocks_per_group}"
        )
    if blocks_per_group > total_blocks:
        raise ValueError(
            f"ruleset needs {blocks_per_group} blocks but the device has only {total_blocks}"
        )
    groups = total_blocks // blocks_per_group
    return groups * block_throughput_gbps(memory_fmax_mhz)


def engine_throughput_gbps(memory_fmax_mhz: float) -> float:
    """Throughput of one engine (one byte per engine cycle, engine at fmax/3)."""
    return 8 * (memory_fmax_mhz / 3.0) * 1e6 / 1e9


@dataclass(frozen=True)
class ThroughputPoint:
    """One operating point of the accelerator."""

    memory_clock_mhz: float
    blocks_per_group: int
    total_blocks: int

    @property
    def packet_groups(self) -> int:
        return self.total_blocks // self.blocks_per_group

    @property
    def throughput_gbps(self) -> float:
        return accelerator_throughput_gbps(
            self.memory_clock_mhz, self.total_blocks, self.blocks_per_group
        )

    @property
    def bytes_per_second(self) -> float:
        return self.throughput_gbps * 1e9 / 8.0


def device_throughput(device: FPGADevice, blocks_per_group: int) -> ThroughputPoint:
    """Operating point of ``device`` at its maximum memory clock."""
    return ThroughputPoint(
        memory_clock_mhz=device.memory_fmax_mhz,
        blocks_per_group=blocks_per_group,
        total_blocks=device.num_matching_blocks,
    )


def scan_time_seconds(payload_bytes: int, point: ThroughputPoint) -> float:
    """Time to stream ``payload_bytes`` through the accelerator."""
    if payload_bytes < 0:
        raise ValueError(f"payload_bytes must be non-negative, got {payload_bytes}")
    return payload_bytes / point.bytes_per_second if payload_bytes else 0.0


#: Line rates the paper positions itself against (Section I / abstract).
OC192_GBPS = 10.0
OC768_GBPS = 40.0


def line_rates_met(point: ThroughputPoint) -> List[str]:
    """Which reference line rates the operating point sustains."""
    rates = []
    if point.throughput_gbps >= OC192_GBPS:
        rates.append("OC-192")
    if point.throughput_gbps >= OC768_GBPS:
        rates.append("OC-768")
    return rates
