"""Plain-text rendering of tables and figure series.

The benchmark harness prints these so that running a bench regenerates the
paper's tables/figures as readable text (there is no plotting dependency in
the offline environment; the figure functions emit the series data plus a
crude ASCII chart).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]], title: Optional[str] = None
) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def format_comparison(
    measured: Mapping[str, object],
    reference: Mapping[str, object],
    title: str = "",
) -> str:
    """Two-column 'measured vs paper' rendering for EXPERIMENTS.md style output."""
    keys = [key for key in measured if key in reference]
    rows = [
        {"metric": key, "measured": measured[key], "paper": reference[key]}
        for key in keys
    ]
    return format_table(rows, title=title or "measured vs paper")


def ascii_chart(
    points: Sequence[Mapping[str, float]],
    x_key: str,
    y_key: str,
    width: int = 60,
    height: int = 12,
    label: str = "",
) -> str:
    """Very small ASCII scatter/line chart for figure-style outputs."""
    if not points:
        return f"{label}: (no points)"
    xs = [float(p[x_key]) for p in points]
    ys = [float(p[y_key]) for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        column = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        grid[row][column] = "*"
    lines = [f"{label} ({y_key} vs {x_key})"] if label else []
    for index, row in enumerate(grid):
        y_value = y_max - index * y_span / (height - 1)
        lines.append(f"{y_value:10.2f} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{x_min:<10.2f}" + " " * (width - 20) + f"{x_max:>10.2f}")
    return "\n".join(lines)


def format_histogram(
    histogram: Mapping[str, int], title: str = "", bar_width: int = 50
) -> str:
    """Horizontal bar rendering of a bucketed histogram (Figure 6 style)."""
    if not histogram:
        return f"{title}: (empty)"
    peak = max(histogram.values()) or 1
    lines = [title] if title else []
    for bucket, count in histogram.items():
        bar = "#" * max(1 if count else 0, int(count / peak * bar_width))
        lines.append(f"{bucket:>8} | {str(count).rjust(6)} {bar}")
    return "\n".join(lines)
