"""Metric collection and table/figure formatting for the benchmark harness."""

from .metrics import (
    PAPER_PEAK_POWER_WATTS,
    PAPER_TABLE1_REFERENCE,
    PAPER_TABLE2_REFERENCE,
    PAPER_TABLE3_REFERENCE,
    TABLE2_CYCLONE_SIZES,
    TABLE2_STRATIX_SIZES,
    PowerCurve,
    Table1Row,
    Table2Row,
    Table3Row,
    power_curves,
    table1_row,
    table2_row,
    table3_rows,
)
from .tables import ascii_chart, format_comparison, format_histogram, format_table

__all__ = [
    "PAPER_PEAK_POWER_WATTS",
    "PAPER_TABLE1_REFERENCE",
    "PAPER_TABLE2_REFERENCE",
    "PAPER_TABLE3_REFERENCE",
    "TABLE2_CYCLONE_SIZES",
    "TABLE2_STRATIX_SIZES",
    "PowerCurve",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "power_curves",
    "table1_row",
    "table2_row",
    "table3_rows",
    "ascii_chart",
    "format_comparison",
    "format_histogram",
    "format_table",
]
