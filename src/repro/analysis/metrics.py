"""Experiment metrics: the quantities reported in the paper's tables and figures.

Every function here returns plain dataclasses/dicts so the benchmark harness,
the CLI and the tests can share one implementation of "compute the Table II
row for this ruleset on this device".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..automata.aho_corasick import AhoCorasickDFA
from ..automata.bitmap_ac import TUCK_BITMAP_REFERENCE_BYTES, BitmapAhoCorasick
from ..automata.path_compressed_ac import (
    TUCK_PATH_COMPRESSED_REFERENCE_BYTES,
    PathCompressedAhoCorasick,
)
from ..core.accelerator_config import AcceleratorProgram, compile_ruleset
from ..fpga.devices import FPGADevice
from ..fpga.power import PowerModel
from ..fpga.resources import ResourceEstimate, estimate_resources
from ..rulesets.ruleset import RuleSet


# ----------------------------------------------------------------------
# Table II — reduction in transition pointers
# ----------------------------------------------------------------------
@dataclass
class Table2Row:
    """One column of Table II (the paper lays rulesets out as columns)."""

    ruleset_name: str
    num_strings: int
    device: str
    # original Aho-Corasick (move function) on the unpartitioned ruleset
    original_states: int
    original_avg_pointers: float
    # our method, after partitioning across blocks
    blocks: int
    states: int
    d1_defaults: int
    avg_after_d1: float
    d1_d2_defaults: int
    avg_after_d1_d2: float
    d1_d2_d3_defaults: int
    avg_after_d1_d2_d3: float
    reduction_percent: float
    memory_bytes: int
    throughput_gbps: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "strings": self.num_strings,
            "device": self.device,
            "orig_states": self.original_states,
            "orig_avg_ptrs": round(self.original_avg_pointers, 2),
            "blocks": self.blocks,
            "states": self.states,
            "d1": self.d1_defaults,
            "avg_d1": round(self.avg_after_d1, 2),
            "d1+d2": self.d1_d2_defaults,
            "avg_d1d2": round(self.avg_after_d1_d2, 2),
            "d1+d2+d3": self.d1_d2_d3_defaults,
            "avg_final": round(self.avg_after_d1_d2_d3, 2),
            "reduction_%": round(self.reduction_percent, 1),
            "memory_bytes": self.memory_bytes,
            "speed_gbps": round(self.throughput_gbps, 1),
        }


def table2_row(
    ruleset: RuleSet,
    device: FPGADevice,
    program: Optional[AcceleratorProgram] = None,
    original: Optional[AhoCorasickDFA] = None,
) -> Table2Row:
    """Compute one Table II column for ``ruleset`` on ``device``.

    ``program`` and ``original`` can be passed in when the caller already
    built them (they are the expensive parts).
    """
    if original is None:
        original = AhoCorasickDFA.from_patterns(ruleset.patterns)
    if program is None:
        program = compile_ruleset(ruleset, device)

    staged = program.staged_counts()
    defaults = program.default_pointer_counts()
    original_avg = original.average_pointers_per_state()
    final_avg = staged.after_d1_d2_d3 / staged.num_states
    reduction = 100.0 * (1.0 - final_avg / original_avg) if original_avg else 0.0

    return Table2Row(
        ruleset_name=ruleset.name,
        num_strings=len(ruleset),
        device=device.family,
        original_states=original.num_states,
        original_avg_pointers=original_avg,
        blocks=program.blocks_per_group,
        states=program.total_states,
        d1_defaults=defaults["d1"],
        avg_after_d1=staged.after_d1 / staged.num_states,
        d1_d2_defaults=defaults["d1+d2"],
        avg_after_d1_d2=staged.after_d1_d2 / staged.num_states,
        d1_d2_d3_defaults=defaults["d1+d2+d3"],
        avg_after_d1_d2_d3=final_avg,
        reduction_percent=reduction,
        memory_bytes=program.total_memory_bytes(),
        throughput_gbps=program.throughput_gbps,
    )


#: Table II reference values from the paper, for side-by-side reporting.
PAPER_TABLE2_REFERENCE: Dict[str, Dict[int, Dict[str, float]]] = {
    "Stratix III": {
        634: {"blocks": 1, "orig_avg_ptrs": 68.29, "avg_final": 2.39,
              "reduction_%": 96.5, "memory_bytes": 148_259, "speed_gbps": 44.2},
        1603: {"blocks": 2, "orig_avg_ptrs": 81.07, "avg_final": 2.01,
               "reduction_%": 97.5, "memory_bytes": 296_967, "speed_gbps": 22.1},
        2588: {"blocks": 3, "orig_avg_ptrs": 85.00, "avg_final": 1.90,
               "reduction_%": 97.8, "memory_bytes": 445_641, "speed_gbps": 14.7},
        6275: {"blocks": 6, "orig_avg_ptrs": 87.01, "avg_final": 1.54,
               "reduction_%": 98.2, "memory_bytes": 838_298, "speed_gbps": 7.4},
    },
    "Cyclone III": {
        500: {"blocks": 1, "orig_avg_ptrs": 67.28, "avg_final": 2.09,
              "reduction_%": 96.9, "memory_bytes": 105_599, "speed_gbps": 14.9},
        1204: {"blocks": 2, "orig_avg_ptrs": 77.07, "avg_final": 1.88,
               "reduction_%": 97.6, "memory_bytes": 214_141, "speed_gbps": 7.5},
        2588: {"blocks": 4, "orig_avg_ptrs": 85.00, "avg_final": 1.18,
               "reduction_%": 98.6, "memory_bytes": 429_656, "speed_gbps": 3.7},
    },
}

#: Which ruleset sizes appear in which half of Table II.
TABLE2_STRATIX_SIZES = (634, 1603, 2588, 6275)
TABLE2_CYCLONE_SIZES = (500, 1204, 2588)


# ----------------------------------------------------------------------
# Table I — resource utilisation
# ----------------------------------------------------------------------
@dataclass
class Table1Row:
    device: str
    logic_used: int
    logic_available: int
    m9k_used: int
    m9k_available: int
    fmax_mhz: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "device": self.device,
            "logic": f"{self.logic_used:,}/{self.logic_available:,}",
            "m9k": f"{self.m9k_used}/{self.m9k_available}",
            "fmax_mhz": self.fmax_mhz,
        }


#: Table I reference values from the paper.
PAPER_TABLE1_REFERENCE: Dict[str, Dict[str, float]] = {
    "Cyclone III": {"logic_used": 35_511, "m9k_used": 404, "fmax_mhz": 233.15},
    "Stratix III": {"logic_used": 69_585, "m9k_used": 822, "fmax_mhz": 460.19},
}


def table1_row(device: FPGADevice) -> Table1Row:
    estimate: ResourceEstimate = estimate_resources(device)
    return Table1Row(
        device=device.family,
        logic_used=estimate.logic_cells,
        logic_available=device.logic_elements,
        m9k_used=estimate.m9k_blocks,
        m9k_available=device.m9k_blocks,
        fmax_mhz=device.memory_fmax_mhz,
    )


# ----------------------------------------------------------------------
# Table III — comparison against Tuck et al.
# ----------------------------------------------------------------------
@dataclass
class Table3Row:
    approach: str
    device: str
    memory_bytes: int
    throughput_gbps: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "approach": self.approach,
            "device": self.device,
            "memory_bytes": self.memory_bytes,
            "throughput_gbps": round(self.throughput_gbps, 1),
        }


#: Table III reference values from the paper.
PAPER_TABLE3_REFERENCE = [
    {"approach": "Our method", "device": "Cyclone 3", "memory_bytes": 138_470, "throughput_gbps": 7.5},
    {"approach": "Our method", "device": "Stratix 3", "memory_bytes": 138_470, "throughput_gbps": 22.1},
    {"approach": "Bitmap [13]", "device": "ASIC", "memory_bytes": 2_800_000, "throughput_gbps": 7.8},
    {"approach": "Path compression [13]", "device": "ASIC", "memory_bytes": 1_100_000, "throughput_gbps": 7.8},
]


def table3_rows(
    ruleset: RuleSet,
    devices: Sequence[FPGADevice],
    reference_throughput_gbps: float = 7.8,
) -> List[Table3Row]:
    """Compute Table III for ``ruleset`` (the ~19,124-character workload)."""
    rows: List[Table3Row] = []
    for device in devices:
        program = compile_ruleset(ruleset, device)
        rows.append(
            Table3Row(
                approach="Our method (DTP)",
                device=device.family,
                memory_bytes=program.total_memory_bytes(),
                throughput_gbps=program.throughput_gbps,
            )
        )
    bitmap = BitmapAhoCorasick.from_patterns(ruleset.patterns)
    rows.append(
        Table3Row(
            approach="Bitmap AC (reimplemented, Tuck et al.)",
            device="ASIC model",
            memory_bytes=bitmap.memory_bytes(),
            throughput_gbps=reference_throughput_gbps,
        )
    )
    path = PathCompressedAhoCorasick.from_patterns(ruleset.patterns)
    rows.append(
        Table3Row(
            approach="Path-compressed AC (reimplemented, Tuck et al.)",
            device="ASIC model",
            memory_bytes=path.memory_bytes(),
            throughput_gbps=reference_throughput_gbps,
        )
    )
    rows.append(
        Table3Row(
            approach="Bitmap AC (as reported in [13])",
            device="ASIC",
            memory_bytes=TUCK_BITMAP_REFERENCE_BYTES,
            throughput_gbps=reference_throughput_gbps,
        )
    )
    rows.append(
        Table3Row(
            approach="Path-compressed AC (as reported in [13])",
            device="ASIC",
            memory_bytes=TUCK_PATH_COMPRESSED_REFERENCE_BYTES,
            throughput_gbps=reference_throughput_gbps,
        )
    )
    return rows


# ----------------------------------------------------------------------
# Figures 7 / 8 — power vs throughput
# ----------------------------------------------------------------------
@dataclass
class PowerCurve:
    """One line of Figure 7/8: a ruleset's power/throughput trade-off."""

    label: str
    blocks_per_group: int
    points: List[Dict[str, float]] = field(default_factory=list)


def power_curves(
    device: FPGADevice,
    rulesets_blocks: Dict[str, int],
    num_points: int = 12,
) -> List[PowerCurve]:
    """Power sweep for every (ruleset label -> blocks per group) entry."""
    model = PowerModel(device)
    curves: List[PowerCurve] = []
    for label, blocks in rulesets_blocks.items():
        sweep = model.sweep(blocks_per_group=blocks, num_points=num_points)
        curves.append(
            PowerCurve(
                label=label,
                blocks_per_group=blocks,
                points=[
                    {
                        "clock_mhz": round(point.memory_clock_mhz, 2),
                        "power_watts": round(point.power_watts, 3),
                        "throughput_gbps": round(point.throughput_gbps, 2),
                    }
                    for point in sweep
                ],
            )
        )
    return curves


#: Peak power figures quoted in Section V.D.
PAPER_PEAK_POWER_WATTS = {"Cyclone III": 2.78, "Stratix III": 13.28}
