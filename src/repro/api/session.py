"""The Session facade: one entry point over sources, rules, engines, sinks.

``Session.from_config`` turns a declarative :class:`repro.api.PipelineConfig`
into the exact object composition previously hand-wired per call site —
ruleset generation or Snort-file parsing, backend compilation (the ``dtp``
backend through the full device compiler, every other backend through
:func:`repro.backend.get_backend`), the serial
:class:`repro.streaming.ScanService` or process-parallel
:class:`repro.streaming.ParallelScanService`, and the
:class:`repro.ids.IntrusionDetectionSystem` — and exposes it through a small
surface: :meth:`Session.run`, :meth:`Session.scan`,
:meth:`Session.checkpoint` / :meth:`Session.restore`, :meth:`Session.stats`
and :meth:`Session.close` (sessions are context managers).

Everything is built lazily and cached, so a CLI adapter can ask only for
what it prints; the composition is the same one the direct constructors
produce, which is what makes the facade's output byte-identical to
hand-wiring (the contract ``tests/test_api.py`` enforces across backends,
worker counts and sources).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..backend import CompiledProgram, get_backend
from ..traffic.packet import MatchEvent, Packet
from .config import (
    EmptyRulesetError,
    PipelineConfig,
    get_sink,
    get_source,
    load_config,
)


@dataclass
class RunResult:
    """Outcome of one :meth:`Session.run` execution.

    ``events`` are :class:`repro.streaming.StreamMatch` objects in stream
    mode and :class:`repro.traffic.MatchEvent` objects in packets mode
    (empty in ids mode); ``alerts`` are the IDS alerts (ids mode only).
    ``scan_result`` is the stream mode's aggregate
    :class:`repro.streaming.StreamScanResult`; ``per_packet`` the packets
    mode's per-payload match lists.  ``sinks`` holds one output per
    configured sink, in config order.
    """

    mode: str
    events: List = field(default_factory=list)
    alerts: List = field(default_factory=list)
    scan_result: Optional[Any] = None
    per_packet: Optional[List] = None
    stats: Dict[str, Any] = field(default_factory=dict)
    sinks: List[Any] = field(default_factory=list)


_UNSET = object()


class Session:
    """A running pipeline built from one :class:`PipelineConfig`.

    All components are lazy cached properties — ``session.program`` compiles
    on first access, ``session.packets`` loads the source once,
    ``session.service`` / ``session.ids`` build the configured engine — so
    construction costs nothing and adapters pay only for what they use.
    Use as a context manager (or call :meth:`close`) to shut down worker
    pools.
    """

    def __init__(self, config: PipelineConfig):
        self.config = config
        self._ruleset = _UNSET
        self._specs = _UNSET
        self._program = _UNSET
        self._source = _UNSET
        self._service = _UNSET
        self._ids = _UNSET
        self._hardware = _UNSET
        self._reassembler = _UNSET
        self._sid_of = _UNSET
        self._payload_bytes = _UNSET
        # one remap dict per allocator pass: ruleset_from_specs assigns a sid
        # per *content*, IDS.from_specs one per *rule* — mixing their records
        # in one dict would mis-attribute reassignments (and over-count them)
        self._ruleset_sid_remap: Dict[int, int] = {}
        self._ids_sid_remap: Dict[int, int] = {}
        #: seconds spent compiling the program (set on first .program access)
        self.compile_seconds: Optional[float] = None

    @classmethod
    def from_config(
        cls, config: Union[PipelineConfig, Dict[str, Any], str]
    ) -> "Session":
        """Build a session from a config object, a plain dict, or a file path."""
        if isinstance(config, PipelineConfig):
            return cls(config)
        if isinstance(config, dict):
            return cls(PipelineConfig.from_dict(config))
        return cls(load_config(config))

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    @property
    def specs(self) -> Optional[List]:
        """Parsed :class:`SnortRuleSpec` list (``None`` for synthetic rules)."""
        if self._specs is _UNSET:
            spec = self.config.rules
            if spec.kind == "synthetic":
                self._specs = None
            elif spec.kind == "file":
                from ..rulesets.parser import parse_rules

                with open(self.config.resolve(spec.path), encoding="utf-8") as handle:
                    parsed = parse_rules(handle, strict=spec.strict)
                if not any(entry.contents for entry in parsed):
                    raise EmptyRulesetError(
                        f"no content patterns found in {spec.path}"
                    )
                self._specs = parsed
            else:  # explicit specs
                from ..rulesets.parser import spec_from_content

                self._specs = [
                    spec_from_content(
                        rule.content, sid=rule.sid, msg=rule.msg, nocase=rule.nocase
                    )
                    for rule in spec.rules
                ]
        return self._specs

    @property
    def skipped_rules(self) -> int:
        """Rules the ids engine cannot run: no positive content to anchor on.

        Lenient parsing keeps such rules in :attr:`specs` (the linter wants
        to see them); the IDS skips them because the prefilter has nothing
        to gate the confirm pass with.  Always 0 for synthetic rules and
        under ``strict`` parsing (which rejects them at load time).
        """
        if self.specs is None:
            return 0
        return sum(1 for entry in self.specs if not entry.positive_contents)

    @property
    def ruleset(self):
        """The compiled-against :class:`repro.rulesets.RuleSet`."""
        if self._ruleset is _UNSET:
            spec = self.config.rules
            if spec.kind == "synthetic":
                from ..rulesets.generator import generate_snort_like_ruleset

                self._ruleset = generate_snort_like_ruleset(spec.size, seed=spec.seed)
            else:
                from ..rulesets.parser import ruleset_from_specs

                name = spec.path if spec.kind == "file" else "specs"
                self._ruleset = ruleset_from_specs(
                    self.specs, name=name, sid_remap=self._ruleset_sid_remap
                )
        return self._ruleset

    @property
    def sid_remap(self) -> Dict[int, int]:
        """Sid reassignments recorded while ingesting file/explicit rules.

        In ids mode this is the :meth:`IDS.from_specs` allocator's record
        (one sid per rule); otherwise :func:`ruleset_from_specs`'s (one per
        unique content) — the record that matches the engine actually built.
        """
        if self.config.mode == "ids":
            self.ids  # ensure the IDS allocator pass ran
            return self._ids_sid_remap
        self.ruleset  # ensure the ruleset allocator pass ran
        return self._ruleset_sid_remap

    @property
    def sid_of(self) -> Dict[int, int]:
        """String number → sid (string numbers follow ruleset order)."""
        if self._sid_of is _UNSET:
            self._sid_of = {
                index: rule.sid for index, rule in enumerate(self.ruleset)
            }
        return self._sid_of

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------
    @property
    def device(self):
        from ..fpga.devices import get_device

        return get_device(self.config.engine.device)

    @property
    def program(self) -> CompiledProgram:
        """The compiled matcher program for the configured backend.

        The ``dtp`` backend goes through the full device compiler
        (partitioning, 324-bit word packing) so its program mirrors the
        hardware; every other backend compiles the bare pattern list.
        String numbers follow ruleset order either way.
        """
        if self._program is _UNSET:
            start = time.perf_counter()
            if self.config.engine.backend == "dtp":
                from ..core.accelerator_config import compile_ruleset

                self._program = compile_ruleset(self.ruleset, self.device)
            else:
                self._program = get_backend(self.config.engine.backend).compile(
                    self.ruleset.patterns
                )
            self.compile_seconds = time.perf_counter() - start
        return self._program

    @property
    def hardware(self):
        """The cycle-level hardware model (``dtp`` backend only)."""
        if self._hardware is _UNSET:
            if self.config.engine.backend != "dtp":
                raise ValueError(
                    "the cycle-level hardware model only executes the 'dtp' "
                    f"backend, not {self.config.engine.backend!r}"
                )
            from ..hardware.accelerator import HardwareAccelerator

            self._hardware = HardwareAccelerator(self.program)
        return self._hardware

    @property
    def _track_nocase(self) -> bool:
        """Does any loaded rule carry ``nocase``?

        When true, the scan services must dual-view scan (raw payload plus a
        lower-cased copy) — the patterns themselves are stored lower-cased by
        :func:`ruleset_from_specs`, so without the lowered view a ``nocase``
        rule silently misses uppercase payloads.
        """
        specs = self.specs
        if specs is None:
            return False
        return any(c.nocase for entry in specs for c in entry.contents)

    @property
    def service(self):
        """The configured (serial or process-parallel) sharded scan service."""
        if self._service is _UNSET:
            engine = self.config.engine
            if engine.workers is not None:  # 0 is invalid, not "serial"
                from ..streaming.executor import ParallelScanService

                ring_kwargs = {}
                if engine.ring_slots is not None:
                    ring_kwargs["ring_slots"] = engine.ring_slots
                if engine.ring_slot_bytes is not None:
                    ring_kwargs["ring_slot_bytes"] = engine.ring_slot_bytes
                self._service = ParallelScanService(
                    self.program,
                    num_shards=engine.shards,
                    flow_capacity_per_shard=engine.flow_capacity,
                    track_nocase=self._track_nocase,
                    workers=engine.workers,
                    **ring_kwargs,
                )
            else:
                from ..streaming.service import ScanService

                self._service = ScanService(
                    self.program,
                    num_shards=engine.shards,
                    flow_capacity_per_shard=engine.flow_capacity,
                    track_nocase=self._track_nocase,
                )
        return self._service

    @property
    def reassembler(self):
        """The configured :class:`repro.proto.TcpReassembler`.

        ``None`` unless the engine set ``reassemble=True``.  One instance
        persists across :meth:`scan` calls, so segments buffered behind a
        sequence hole carry over exactly like the scan services' flow
        state; :meth:`run` and :meth:`serve` flush it when their finite
        source ends.
        """
        if self._reassembler is _UNSET:
            engine = self.config.engine
            if not engine.reassemble:
                self._reassembler = None
            else:
                from ..proto.reassembly import TcpReassembler

                self._reassembler = TcpReassembler(
                    overlap_policy=engine.overlap_policy,
                    max_flows=engine.reassembly_flows,
                    max_flow_bytes=engine.reassembly_bytes,
                )
        return self._reassembler

    @property
    def ids(self):
        """The configured :class:`repro.ids.IntrusionDetectionSystem`."""
        if self._ids is _UNSET:
            from ..ids.pipeline import IntrusionDetectionSystem

            engine = self.config.engine
            if self.specs is None:
                ids = IntrusionDetectionSystem.from_ruleset(
                    self.ruleset,
                    device=self.device,
                    backend=engine.backend,
                    workers=engine.workers,
                )
            else:
                if all(not entry.positive_contents for entry in self.specs):
                    raise EmptyRulesetError(
                        "no rule has a positive content for the prefilter to "
                        "anchor on; the ids engine cannot run this ruleset"
                    )
                ids = IntrusionDetectionSystem.from_specs(
                    self.specs,
                    device=self.device,
                    backend=engine.backend,
                    workers=engine.workers,
                    sid_remap=self._ids_sid_remap,
                )
            from ..streaming.flow import DEFAULT_FLOW_CAPACITY

            if engine.flow_capacity != DEFAULT_FLOW_CAPACITY:
                ids.reset_flows(capacity=engine.flow_capacity)
            self._ids = ids
        return self._ids

    # ------------------------------------------------------------------
    # source
    # ------------------------------------------------------------------
    @property
    def _loaded_source(self):
        if self._source is _UNSET:
            factory = get_source(self.config.source.kind)
            self._source = factory.load(self, self.config.source)
        return self._source

    @property
    def packets(self) -> List[Packet]:
        """The run's packets, loaded once from the configured source."""
        return self._loaded_source.packets

    @property
    def payload_bytes(self) -> int:
        """Total payload bytes of the loaded source.

        Cached like every other composed artefact: the source is immutable
        once loaded, and benchmark drivers call :meth:`stats` per run — the
        per-packet sum must not be repaid on every call.
        """
        if self._payload_bytes is _UNSET:
            self._payload_bytes = sum(len(p.payload) for p in self.packets)
        return self._payload_bytes

    @property
    def flows(self) -> Optional[List]:
        """Generator ground truth (``None`` for non-generator sources)."""
        return self._loaded_source.flows

    @property
    def capture(self):
        """The parsed capture container (pcap sources only, else ``None``)."""
        return self._loaded_source.capture

    @property
    def capture_stats(self):
        """Capture decode statistics (pcap sources only, else ``None``)."""
        return self._loaded_source.stats

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def scan(self, packets: Optional[Sequence[Packet]] = None):
        """Stateful sharded scan of ``packets`` (default: the source's).

        Returns the service's :class:`repro.streaming.StreamScanResult`;
        repeated calls continue the same flow state, exactly as repeated
        ``service.scan`` calls would.  With ``reassemble`` on, segments
        pass through the session's :attr:`reassembler` first — data stuck
        behind a sequence hole stays buffered across calls; call
        :meth:`flush_reassembly` when no more segments will arrive.
        """
        if packets is None:
            packets = self.packets
        if self.reassembler is not None:
            packets = self.reassembler.process(packets)
        return self.service.scan(packets)

    def flush_reassembly(self):
        """Flush segments still buffered behind sequence holes into the scan.

        Returns the :class:`repro.streaming.StreamScanResult` of the
        flushed tail, or ``None`` when reassembly is off or nothing was
        buffered.  :meth:`run` and :meth:`serve` call this implicitly —
        their sources are finite — so it only needs calling after manual
        incremental :meth:`scan` use.
        """
        if self.reassembler is None:
            return None
        tail = self.reassembler.flush_all()
        if not tail:
            return None
        return self.service.scan(tail)

    def scan_stateless(
        self, payloads: Optional[Sequence[bytes]] = None
    ) -> List[List]:
        """Per-packet matching with state reset at every packet boundary."""
        if payloads is None:
            payloads = [packet.payload for packet in self.packets]
        return self.program.scan_packets(payloads)

    def hardware_scan(self):
        """Scan the source packets on the cycle-level hardware model (dtp)."""
        return self.hardware.scan(self.packets)

    def run(self) -> RunResult:
        """Execute the configured pipeline end to end, then emit every sink.

        * ``packets`` mode — stateless per-packet matching; events are
          :class:`repro.traffic.MatchEvent` records in arrival order;
        * ``stream`` mode  — one batched stateful scan through the sharded
          service (events in the canonical order);
        * ``ids`` mode     — :meth:`IntrusionDetectionSystem.scan_flow` over
          the source packets.

        With ``reassemble`` on, the source's TCP segments are re-ordered
        (and the reassembler flushed — the source is finite) before any
        mode scans them; packet ids then follow reassembled emission
        order.  Capture sinks still export the *source* packets verbatim.
        """
        packets = self.packets
        if self.reassembler is not None:
            packets = self.reassembler.process(packets) + self.reassembler.flush_all()
        run = RunResult(mode=self.config.mode)
        if self.config.mode == "stream":
            run.scan_result = self.service.scan(packets)
            run.events = run.scan_result.events
        elif self.config.mode == "ids":
            # the source is finite, so after the last segment the flows are
            # over: decide the pending negation verdicts too
            run.alerts = self.ids.scan_flow(packets) + self.ids.finish()
        else:
            run.per_packet = self.scan_stateless(
                [packet.payload for packet in packets]
            )
            run.events = [
                MatchEvent(
                    packet_id=packet.packet_id,
                    end_offset=offset,
                    string_number=number,
                )
                for packet, matches in zip(packets, run.per_packet)
                for offset, number in matches
            ]
        run.stats = self.stats()
        for spec in self.config.sinks:
            run.sinks.append(get_sink(spec.kind).emit(self, spec, run))
        return run

    def serve(self, *, collect_events: bool = True, on_batch=None):
        """Serve the configured **live** source through the stream engine.

        Builds the :mod:`repro.streaming.ingest` source the config's
        ``tcp``/``udp``/``pcap-tail`` spec describes, micro-batches its
        segments into :attr:`service` and returns the
        :class:`~repro.streaming.ingest.IngestReport`.  Packet ids are
        assigned in arrival order, so serving a finished capture through
        ``pcap-tail`` produces events byte-identical to an offline
        ``pcap``-source :meth:`run`.  The spec's ``max_packets`` /
        ``idle_timeout`` bound the loop; ``on_batch(result, packets)``
        observes every flushed batch as it happens.

        With ``engine.reassemble`` on, every batch is routed through the
        session's :class:`~repro.proto.reassembly.TcpReassembler` before
        scanning, and segments still parked behind sequence holes when the
        source closes are flushed and scanned as a final batch.
        """
        self._require_stream("serve")
        spec = self.config.source
        if not spec.is_live:
            raise ValueError(
                f"serve() needs a live source ({', '.join(spec.LIVE_KINDS)}); "
                f"{spec.kind!r} sources replay offline through run()"
            )
        from ..streaming.ingest import LiveIngestor
        from .config import _live_source_object

        preprocess = preprocess_flush = None
        if self.reassembler is not None:
            preprocess = self.reassembler.process
            preprocess_flush = self.reassembler.flush_all
        ingestor = LiveIngestor(
            self.service,
            batch_packets=spec.batch_packets,
            max_packets=spec.max_packets,
            idle_timeout=spec.idle_timeout,
            collect_events=collect_events,
            on_batch=on_batch,
            preprocess=preprocess,
            preprocess_flush=preprocess_flush,
        )
        return ingestor.serve(_live_source_object(self, spec))

    # ------------------------------------------------------------------
    # state and reporting
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict:
        """Serialise the stream engine's flow state (the service envelope).

        Without reassembly, checkpoints are interchangeable with ones taken
        directly from a :class:`ScanService` / :class:`ParallelScanService`
        with the same ``shards`` — the facade adds no envelope of its own.
        With ``reassemble`` on, the reassembler's in-flight state (buffered
        holes, per-flow anchors) must ride along, so the checkpoint becomes
        ``{"service": ..., "reassembly": ...}``; :meth:`restore` accepts
        both shapes.
        """
        self._require_stream("checkpoint")
        data = self.service.checkpoint()
        if self.reassembler is not None:
            return {"service": data, "reassembly": self.reassembler.checkpoint()}
        return data

    def restore(self, data: Dict) -> None:
        """Restore flow state saved by :meth:`checkpoint` (or a raw service)."""
        self._require_stream("restore")
        if "reassembly" in data:
            from ..proto.reassembly import TcpReassembler

            self._reassembler = TcpReassembler.restore(data["reassembly"])
            self.service.restore(data["service"])
        else:
            self.service.restore(data)

    def _require_stream(self, what: str) -> None:
        if self.config.mode != "stream":
            raise ValueError(
                f"{what}() needs a stream-mode session; {self.config.mode!r} "
                "sessions keep no service flow state to exchange"
            )

    def event_record(self, event) -> Dict[str, Any]:
        """One match event as a plain JSON-serialisable record."""
        record = {
            "packet": event.packet_id,
            "offset": event.end_offset,
            "sid": self.sid_of[event.string_number],
        }
        flow = getattr(event, "flow", None)
        if flow is not None:
            record["flow"] = list(flow.as_tuple())
        return record

    def alert_record(self, alert) -> Dict[str, Any]:
        """One IDS alert as a plain JSON-serialisable record."""
        return {
            "packet": alert.packet_id,
            "sid": alert.sid,
            "msg": alert.msg,
            "action": alert.action,
        }

    def stats(self) -> Dict[str, Any]:
        """Gauges of whatever the session has built so far.

        Always includes the mode; adds source totals once the source loaded,
        the service's shard gauges once the stream engine exists, the IDS
        counters once the IDS exists, and capture decode statistics for pcap
        sources.
        """
        out: Dict[str, Any] = {"mode": self.config.mode}
        if self._source is not _UNSET:
            out["packets"] = len(self.packets)
            out["payload_bytes"] = self.payload_bytes
            if self.flows is not None:
                out["flows"] = len(self.flows)
            if self.capture_stats is not None:
                stats = self.capture_stats
                out["capture"] = {
                    "frames": stats.frames,
                    "decoded": stats.decoded,
                    "skipped": dict(stats.skipped),
                }
        if self._service is not _UNSET:
            out["service"] = self.service.stats()
        if self._reassembler not in (_UNSET, None):
            from dataclasses import asdict

            out["reassembly"] = asdict(self.reassembler.stats)
        if self._ids is not _UNSET:
            ids_stats = self.ids.stats
            out["ids"] = {
                "packets_processed": ids_stats.packets_processed,
                "payload_bytes": ids_stats.payload_bytes,
                "header_candidates": ids_stats.header_candidates,
                "content_matches": ids_stats.content_matches,
                "alerts_raised": ids_stats.alerts_raised,
            }
        return out

    def verify(self):
        """Statically verify this session's compiled program and ruleset.

        Returns a :class:`repro.check.Report` combining the program
        verifier (DTP exactness, packing round-trips, ...) and the ruleset
        linter — no traffic is scanned, so it is safe to call before
        serving.  A hot-reload supervisor can refuse to swap in a program
        whose report is not ``ok``.
        """
        from ..check import lint_ruleset, merge_reports, verify_program

        return merge_reports(
            f"session verify ({self.config.engine.backend})",
            [
                verify_program(self.program, patterns=self.ruleset.patterns),
                lint_ruleset(self.ruleset),
            ],
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release engine resources (worker pools); idempotent."""
        if self._service is not _UNSET:
            self._service.close()
        if self._ids is not _UNSET:
            self._ids.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


__all__ = ["RunResult", "Session"]
