"""Unified declarative pipeline API: one Session over the whole stack.

The rest of the package exposes the paper's pipeline as separately
constructed objects (rulesets, compiled programs, scan services, the IDS,
capture replay).  This package adds the single composable entry point a
production deployment wants: a :class:`PipelineConfig` document describing
*what* to run — source, rules, engine, sinks — and a :class:`Session`
facade that builds and drives exactly the composition the direct
constructors produce.  Configs round-trip through ``to_dict``/``from_dict``
and load from JSON or TOML files, so every run is a reproducible artifact
(stamped with the producing package version); the ``repro run`` CLI
subcommand executes a config file directly.

    >>> from repro.api import (
    ...     ContentRule, EngineSpec, PipelineConfig, RulesSpec, Session, SourceSpec,
    ... )
    >>> from repro.traffic import FiveTuple, Packet
    >>> packet = Packet(payload=b"xx evil yy",
    ...                 header=FiveTuple("1.1.1.1", "2.2.2.2", 1024, 80, "tcp"))
    >>> config = PipelineConfig(
    ...     mode="stream",
    ...     source=SourceSpec(kind="packets", packets=(packet,)),
    ...     rules=RulesSpec(kind="specs", rules=(ContentRule(content="evil", sid=7),)),
    ...     engine=EngineSpec(backend="dense", shards=1),
    ... )
    >>> with Session.from_config(config) as session:
    ...     [(e.packet_id, e.end_offset, session.sid_of[e.string_number])
    ...      for e in session.run().events]
    [(0, 7, 7)]

Source and sink kinds are registries (:func:`register_source` /
:func:`register_sink`) mirroring the backend registry, so new packet
sources and result sinks compose with every existing backend and engine
configuration instead of multiplying hand-wiring.
"""

from .config import (
    PIPELINE_MODES,
    ConfigError,
    ContentRule,
    EmptyRulesetError,
    EngineSpec,
    LoadedSource,
    PipelineConfig,
    RulesSpec,
    SinkFactory,
    SinkSpec,
    SourceFactory,
    SourceSpec,
    get_sink,
    get_source,
    load_config,
    register_sink,
    register_source,
    repro_version,
    sink_kinds,
    source_kinds,
)
from .session import RunResult, Session

__all__ = [
    "PIPELINE_MODES",
    "ConfigError",
    "ContentRule",
    "EmptyRulesetError",
    "EngineSpec",
    "LoadedSource",
    "PipelineConfig",
    "RulesSpec",
    "RunResult",
    "Session",
    "SinkFactory",
    "SinkSpec",
    "SourceFactory",
    "SourceSpec",
    "get_sink",
    "get_source",
    "load_config",
    "register_sink",
    "register_source",
    "repro_version",
    "sink_kinds",
    "source_kinds",
]
