"""Declarative pipeline configuration: one document describes a whole run.

A :class:`PipelineConfig` names everything a scan run is made of —

* a :class:`SourceSpec` (where packets come from: an in-memory list, the
  synthetic :class:`repro.traffic.TrafficGenerator`, or a pcap/pcapng file),
* a :class:`RulesSpec` (where patterns come from: the synthetic Snort-like
  ruleset, a Snort rules file, or explicit :class:`ContentRule` entries),
* an :class:`EngineSpec` (backend name, device, shard count, worker
  processes, per-shard flow capacity, strict capture decoding),
* zero or more :class:`SinkSpec` entries (collect alerts or events, write
  them as NDJSON, export the workload as a capture)

— and :class:`repro.api.Session` turns it into the exact object composition
(`ScanService` / `ParallelScanService` / `IntrusionDetectionSystem` / replay
adapters) the CLI and the test suite used to hand-wire.  Configs round-trip
through :meth:`PipelineConfig.to_dict` / :meth:`PipelineConfig.from_dict`
and load from JSON or TOML files (:func:`load_config`), so any run is a
reproducible artifact; ``to_dict`` stamps the producing package version.

Source and sink kinds live in registries mirroring the lazy-factory pattern
of :mod:`repro.backend` (:func:`register_source` / :func:`register_sink`),
so new packet sources and result sinks multiply with the existing backends
instead of forcing N×M hand-wiring.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..proto.reassembly import (
    DEFAULT_MAX_FLOW_BYTES,
    DEFAULT_REASSEMBLY_FLOWS,
    OVERLAP_POLICIES,
)
from ..traffic.packet import FiveTuple, Packet

#: Pipeline execution modes: stateless per-packet matching, stateful
#: sharded flow scanning, or the full header+content IDS pipeline.
PIPELINE_MODES = ("packets", "stream", "ids")


class ConfigError(ValueError):
    """Raised when a pipeline configuration document is malformed."""


class EmptyRulesetError(ValueError):
    """Raised when a rules source yields nothing to match on.

    The CLI treats this as an empty-result error (message to stderr, exit 1)
    rather than a traceback, per the repository's error idiom.
    """


def repro_version() -> str:
    """The producing package version, from installed metadata when available.

    Falls back to ``repro.__version__`` for source-tree (``PYTHONPATH=src``)
    runs where the distribution is not installed.
    """
    try:
        from importlib.metadata import version

        return version("repro-dpi")
    except Exception:
        import repro

        return getattr(repro, "__version__", "0+unknown")


def _check_keys(data: Dict, allowed: Sequence[str], where: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ConfigError(
            f"unknown {where} key(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


# ----------------------------------------------------------------------
# sources
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SourceSpec:
    """Where the pipeline's packets come from.

    ``kind`` is a name from the source registry (:func:`source_kinds`):

    * ``"packets"``   — the in-memory ``packets`` tuple, as given;
    * ``"generator"`` — synthetic traffic drawn from the pipeline's compiled
      ruleset: either ``flows`` interleaved multi-packet flows (each with
      ``split_patterns`` rule strings deliberately cut across
      ``split_segments`` consecutive segments) or ``count`` flat packets
      shaped by ``mean_payload`` / ``attack_rate``;
    * ``"pcap"``      — a pcap/pcapng capture at ``path`` (relative paths
      resolve against the config file's directory), decoded per the engine's
      ``strict`` flag.

    Three kinds are **live** (:attr:`is_live` is true): they cannot be
    loaded eagerly into a packet list, only served through
    :meth:`repro.api.Session.serve` / the ``serve`` CLI subcommand:

    * ``"tcp"``       — an asyncio TCP listener on ``host``:``port`` (each
      connection is a flow, each read a segment);
    * ``"udp"``       — a datagram endpoint on ``host``:``port`` (each
      sender is a flow, each datagram a segment);
    * ``"pcap-tail"`` — an incremental classic-pcap reader on ``path``;
      ``follow=True`` keeps polling every ``poll_interval`` seconds for
      appended records, ``tail -f`` style.

    ``max_packets`` / ``idle_timeout`` bound a live source's serving loop
    (stop after N segments / after the wire stays quiet that long);
    ``batch_packets`` caps the ingestor's micro-batches.
    """

    kind: str = "generator"
    # generator — interleaved flow workload
    flows: Optional[int] = None
    packets_per_flow: int = 4
    split_patterns: int = 1
    split_segments: int = 2
    segment_bytes: Optional[int] = None
    # generator — flat packet workload
    count: Optional[int] = None
    mean_payload: int = 512
    attack_rate: float = 0.2
    # generator — RNG seed (independent of the ruleset seed)
    seed: int = 1
    # pcap / pcap-tail
    path: Optional[str] = None
    # in-memory
    packets: Tuple[Packet, ...] = ()
    # live sources (tcp / udp / pcap-tail)
    host: str = "127.0.0.1"
    port: Optional[int] = None
    follow: bool = False
    poll_interval: float = 0.2
    max_packets: Optional[int] = None
    idle_timeout: Optional[float] = None
    batch_packets: int = 256

    #: source kinds that are served live rather than loaded eagerly.
    LIVE_KINDS = ("pcap-tail", "tcp", "udp")

    def __post_init__(self) -> None:
        if self.kind not in _SOURCES:
            raise ConfigError(
                f"unknown source kind {self.kind!r}; available: "
                f"{', '.join(source_kinds())}"
            )
        if self.kind == "generator":
            if (self.flows is None) == (self.count is None):
                raise ConfigError(
                    "generator source needs exactly one of flows= "
                    "(interleaved flow workload) or count= (flat packets)"
                )
        if self.kind in ("pcap", "pcap-tail") and not self.path:
            raise ConfigError(f"{self.kind} source needs path=")
        if self.kind in ("tcp", "udp"):
            if self.port is None:
                raise ConfigError(f"{self.kind} source needs port= (0 = ephemeral)")
            if not 0 <= self.port <= 0xFFFF:
                raise ConfigError(f"port {self.port} out of range")
        if self.batch_packets < 1:
            raise ConfigError(
                f"batch_packets must be >= 1, got {self.batch_packets}"
            )
        if self.max_packets is not None and self.max_packets < 1:
            raise ConfigError(f"max_packets must be >= 1, got {self.max_packets}")
        object.__setattr__(self, "packets", tuple(self.packets))

    @property
    def is_live(self) -> bool:
        """True for sources that are served, not loaded (see class docs)."""
        return self.kind in self.LIVE_KINDS

    def _live_limits_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        if self.max_packets is not None:
            out["max_packets"] = self.max_packets
        if self.idle_timeout is not None:
            out["idle_timeout"] = self.idle_timeout
        if self.batch_packets != 256:
            out["batch_packets"] = self.batch_packets
        return out

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        if self.kind == "generator":
            if self.flows is not None:
                out.update(
                    flows=self.flows,
                    packets_per_flow=self.packets_per_flow,
                    split_patterns=self.split_patterns,
                    split_segments=self.split_segments,
                )
                if self.segment_bytes is not None:
                    out["segment_bytes"] = self.segment_bytes
            else:
                out.update(
                    count=self.count,
                    mean_payload=self.mean_payload,
                    attack_rate=self.attack_rate,
                )
            out["seed"] = self.seed
        elif self.kind == "pcap":
            out["path"] = self.path
        elif self.kind == "packets":
            out["packets"] = [_packet_to_dict(packet) for packet in self.packets]
        elif self.kind == "pcap-tail":
            out["path"] = self.path
            if self.follow:
                out["follow"] = True
                out["poll_interval"] = self.poll_interval
            out.update(self._live_limits_dict())
        elif self.kind in ("tcp", "udp"):
            out.update(host=self.host, port=self.port)
            out.update(self._live_limits_dict())
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SourceSpec":
        _check_keys(
            data,
            (
                "kind", "flows", "packets_per_flow", "split_patterns",
                "split_segments", "segment_bytes", "count", "mean_payload",
                "attack_rate", "seed", "path", "packets", "host", "port",
                "follow", "poll_interval", "max_packets", "idle_timeout",
                "batch_packets",
            ),
            "source",
        )
        data = dict(data)
        if "packets" in data:
            data["packets"] = tuple(
                _packet_from_dict(entry) for entry in data["packets"]
            )
        return cls(**data)


def _packet_to_dict(packet: Packet) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "payload": packet.payload.hex(),
        "header": None if packet.header is None else {
            "src_ip": packet.header.src_ip,
            "dst_ip": packet.header.dst_ip,
            "src_port": packet.header.src_port,
            "dst_port": packet.header.dst_port,
            "protocol": packet.header.protocol,
        },
        "packet_id": packet.packet_id,
    }
    if packet.tcp_seq is not None:
        out["tcp_seq"] = packet.tcp_seq
    if packet.tcp_flags is not None:
        out["tcp_flags"] = packet.tcp_flags
    return out


def _packet_from_dict(data: Dict[str, Any]) -> Packet:
    _check_keys(
        data, ("payload", "header", "packet_id", "tcp_seq", "tcp_flags"), "packet"
    )
    header = data.get("header")
    seq = data.get("tcp_seq")
    flags = data.get("tcp_flags")
    return Packet(
        payload=bytes.fromhex(data["payload"]),
        header=None if header is None else FiveTuple(
            src_ip=str(header["src_ip"]),
            dst_ip=str(header["dst_ip"]),
            src_port=int(header["src_port"]),
            dst_port=int(header["dst_port"]),
            protocol=str(header["protocol"]),
        ),
        packet_id=int(data.get("packet_id", 0)),
        tcp_seq=None if seq is None else int(seq),
        tcp_flags=None if flags is None else int(flags),
    )


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ContentRule:
    """One explicit rule for ``RulesSpec(kind="specs")``.

    ``content`` uses Snort content syntax (``|41 42|`` hex escapes, ``\\;``
    ``\\"`` ``\\\\`` backslash escapes); the header is the wildcard
    ``alert ip any any -> any any``, so in ids mode detection is decided
    purely by the content matcher.
    """

    content: str
    sid: Optional[int] = None
    msg: str = ""
    nocase: bool = False

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"content": self.content}
        if self.sid is not None:
            out["sid"] = self.sid
        if self.msg:
            out["msg"] = self.msg
        if self.nocase:
            out["nocase"] = True
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ContentRule":
        _check_keys(data, ("content", "sid", "msg", "nocase"), "rule")
        return cls(**data)


@dataclass(frozen=True)
class RulesSpec:
    """Where the pipeline's patterns come from.

    * ``"synthetic"`` — :func:`repro.rulesets.generate_snort_like_ruleset`
      with ``size`` strings and ``seed`` (the paper's workload);
    * ``"file"``      — a Snort rules file at ``path`` (sid collisions are
      resolved through the shared :class:`repro.rulesets.parser.SidAllocator`
      policy and recorded in :attr:`repro.api.Session.sid_remap`);
    * ``"specs"``     — explicit :class:`ContentRule` entries.

    ``strict`` governs how ``"file"`` rules treat options the engine cannot
    honour: lenient (the default) keeps unknown options as
    ``unparsed_options``, drops unsupported pcre flags, and skips rules
    without a positive content; strict raises
    :class:`repro.rulesets.parser.RuleParseError` on any of those.  Grammar
    errors (conflicting modifiers, malformed values) raise either way.
    """

    kind: str = "synthetic"
    size: int = 634
    seed: int = 2010
    path: Optional[str] = None
    rules: Tuple[ContentRule, ...] = ()
    strict: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("synthetic", "file", "specs"):
            raise ConfigError(
                f"unknown rules kind {self.kind!r}; "
                "available: file, specs, synthetic"
            )
        if self.kind == "file" and not self.path:
            raise ConfigError("file rules need path=")
        if self.kind == "specs" and not self.rules:
            raise ConfigError("specs rules need at least one ContentRule")
        object.__setattr__(self, "rules", tuple(self.rules))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        if self.kind == "synthetic":
            out.update(size=self.size, seed=self.seed)
        elif self.kind == "file":
            out["path"] = self.path
        else:
            out["rules"] = [rule.to_dict() for rule in self.rules]
        if self.strict:
            out["strict"] = True
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RulesSpec":
        _check_keys(data, ("kind", "size", "seed", "path", "rules", "strict"), "rules")
        data = dict(data)
        if "rules" in data:
            data["rules"] = tuple(
                ContentRule.from_dict(entry) for entry in data["rules"]
            )
        return cls(**data)


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineSpec:
    """How the pipeline scans: backend, sharding, workers, flow memory.

    ``backend`` is any :mod:`repro.backend` registry name; ``workers=None``
    keeps the serial in-process :class:`repro.streaming.ScanService`, an
    integer dispatches shards to that many worker processes
    (:class:`repro.streaming.ParallelScanService`).  In ids mode ``shards``
    is unused — the IDS shards by ``workers`` (its parallel pool pins one
    shard per worker).  ``strict`` makes pcap-source decoding fail on
    undecodable frames instead of skipping and counting them.
    ``ring_slots``/``ring_slot_bytes`` (``None`` = the transport defaults)
    size the parallel service's per-worker shared-memory payload rings.

    ``reassemble`` inserts the :class:`repro.proto.TcpReassembler` between
    the packet source and the scan path: TCP segments are re-ordered by
    sequence number per flow before scanning (flows without usable sequence
    state fall back to arrival order).  ``overlap_policy`` picks whose bytes
    win when retransmitted segments disagree (``"first"``: the earlier copy,
    ``"last"``: the later one — Snort's target-based policies);
    ``reassembly_flows``/``reassembly_bytes`` bound the reassembler's
    per-flow table and hole buffers.
    """

    backend: str = "dtp"
    device: str = "stratix3"
    shards: int = 4
    workers: Optional[int] = None
    flow_capacity: int = 4096
    strict: bool = False
    ring_slots: Optional[int] = None
    ring_slot_bytes: Optional[int] = None
    reassemble: bool = False
    overlap_policy: str = "first"
    reassembly_flows: int = DEFAULT_REASSEMBLY_FLOWS
    reassembly_bytes: int = DEFAULT_MAX_FLOW_BYTES

    def __post_init__(self) -> None:
        from ..backend import backend_names
        from ..fpga.devices import DEVICES

        if self.backend not in backend_names():
            raise ConfigError(
                f"unknown backend {self.backend!r}; available: "
                f"{', '.join(backend_names())}"
            )
        if self.device not in DEVICES:
            raise ConfigError(
                f"unknown device {self.device!r}; available: "
                f"{', '.join(sorted(DEVICES))}"
            )
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.workers is not None and self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.flow_capacity < 1:
            raise ConfigError(f"flow_capacity must be >= 1, got {self.flow_capacity}")
        for name in ("ring_slots", "ring_slot_bytes"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigError(f"{name} must be >= 1, got {value}")
        if self.overlap_policy not in OVERLAP_POLICIES:
            raise ConfigError(
                f"unknown overlap_policy {self.overlap_policy!r}; available: "
                f"{', '.join(OVERLAP_POLICIES)}"
            )
        for name in ("reassembly_flows", "reassembly_bytes"):
            value = getattr(self, name)
            if value < 1:
                raise ConfigError(f"{name} must be >= 1, got {value}")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "backend": self.backend,
            "device": self.device,
            "shards": self.shards,
            "flow_capacity": self.flow_capacity,
        }
        if self.workers is not None:
            out["workers"] = self.workers
        if self.strict:
            out["strict"] = True
        if self.ring_slots is not None:
            out["ring_slots"] = self.ring_slots
        if self.ring_slot_bytes is not None:
            out["ring_slot_bytes"] = self.ring_slot_bytes
        if self.reassemble:
            out["reassemble"] = True
        if self.overlap_policy != "first":
            out["overlap_policy"] = self.overlap_policy
        if self.reassembly_flows != DEFAULT_REASSEMBLY_FLOWS:
            out["reassembly_flows"] = self.reassembly_flows
        if self.reassembly_bytes != DEFAULT_MAX_FLOW_BYTES:
            out["reassembly_bytes"] = self.reassembly_bytes
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EngineSpec":
        _check_keys(
            data,
            (
                "backend", "device", "shards", "workers", "flow_capacity",
                "strict", "ring_slots", "ring_slot_bytes",
                "reassemble", "overlap_policy", "reassembly_flows",
                "reassembly_bytes",
            ),
            "engine",
        )
        return cls(**data)


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SinkSpec:
    """Where the pipeline's results go.

    ``kind`` is a name from the sink registry (:func:`sink_kinds`):

    * ``"events"`` — collect the run's match events in memory (the sink's
      output in :attr:`repro.api.RunResult.sinks`);
    * ``"alerts"`` — collect the run's IDS alerts in memory;
    * ``"ndjson"`` — write one JSON object per event (or per alert, in ids
      mode or with ``what="alerts"``) to ``path``;
    * ``"pcap"``   — export the run's packets as a capture at ``path``
      (``fmt`` ``"pcap"``/``"pcapng"``, default by the path's extension).
    """

    kind: str = "events"
    path: Optional[str] = None
    what: Optional[str] = None
    fmt: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _SINKS:
            raise ConfigError(
                f"unknown sink kind {self.kind!r}; available: "
                f"{', '.join(sink_kinds())}"
            )
        if self.kind in ("ndjson", "pcap") and not self.path:
            raise ConfigError(f"{self.kind} sink needs path=")
        if self.what not in (None, "events", "alerts"):
            raise ConfigError(
                f"sink what= must be 'events' or 'alerts', not {self.what!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        for key in ("path", "what", "fmt"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SinkSpec":
        _check_keys(data, ("kind", "path", "what", "fmt"), "sink")
        return cls(**data)


# ----------------------------------------------------------------------
# the pipeline document
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PipelineConfig:
    """One declarative document describing a complete scan run.

    ``mode`` selects the execution path :class:`repro.api.Session` drives:

    * ``"packets"`` — stateless per-packet matching (the ``scan`` CLI path);
    * ``"stream"``  — stateful sharded flow scanning (``scan-stream`` /
      ``scan-pcap``);
    * ``"ids"``     — the header+content IDS pipeline over streamed flows.

    ``base_dir`` (not serialised, set by :func:`load_config`) anchors the
    config's relative paths; it never affects config equality.
    """

    source: SourceSpec
    mode: str = "stream"
    rules: RulesSpec = field(default_factory=RulesSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    sinks: Tuple[SinkSpec, ...] = ()
    base_dir: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.mode not in PIPELINE_MODES:
            raise ConfigError(
                f"unknown mode {self.mode!r}; available: "
                f"{', '.join(PIPELINE_MODES)}"
            )
        object.__setattr__(self, "sinks", tuple(self.sinks))

    def resolve(self, path: Union[str, pathlib.Path]) -> str:
        """Resolve ``path`` against the config file's directory when relative."""
        candidate = pathlib.Path(path)
        if not candidate.is_absolute() and self.base_dir:
            return str(pathlib.Path(self.base_dir) / candidate)
        return str(candidate)

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON/TOML-serialisable form, stamped with the version.

        The ``version`` key records which package produced the artifact; it
        is informational and accepted (but not compared) by
        :meth:`from_dict`.
        """
        return {
            "version": repro_version(),
            "mode": self.mode,
            "source": self.source.to_dict(),
            "rules": self.rules.to_dict(),
            "engine": self.engine.to_dict(),
            "sinks": [sink.to_dict() for sink in self.sinks],
        }

    @classmethod
    def from_dict(
        cls, data: Dict[str, Any], base_dir: Optional[str] = None
    ) -> "PipelineConfig":
        _check_keys(
            data,
            ("version", "mode", "source", "rules", "engine", "sinks"),
            "pipeline",
        )
        if "source" not in data:
            raise ConfigError("pipeline config needs a source section")
        try:
            return cls(
                mode=data.get("mode", "stream"),
                source=SourceSpec.from_dict(data["source"]),
                rules=RulesSpec.from_dict(data.get("rules", {"kind": "synthetic"})),
                engine=EngineSpec.from_dict(data.get("engine", {})),
                sinks=tuple(
                    SinkSpec.from_dict(entry) for entry in data.get("sinks", ())
                ),
                base_dir=base_dir,
            )
        except TypeError as exc:  # e.g. a section that is not a table/dict
            raise ConfigError(f"malformed pipeline config: {exc}") from exc


def load_config(path: Union[str, pathlib.Path]) -> PipelineConfig:
    """Load a :class:`PipelineConfig` from a JSON or TOML file.

    The format follows the extension: ``.toml`` parses with :mod:`tomllib`
    (Python 3.11+; older interpreters get a clear error instead of a crash),
    everything else parses as JSON.  Relative paths inside the config
    (rules file, capture file, sink outputs) resolve against the config
    file's own directory, so a config plus its side files is a relocatable
    artifact.
    """
    path = pathlib.Path(path)
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - py<3.11 only
            raise ConfigError(
                "TOML pipeline configs need Python 3.11+ (tomllib); "
                "use the JSON form instead"
            ) from exc
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    else:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    if not isinstance(data, dict):
        raise ConfigError(f"{path}: pipeline config must be a mapping")
    return PipelineConfig.from_dict(data, base_dir=str(path.parent))


# ----------------------------------------------------------------------
# source registry (lazy factories, mirroring repro.backend)
# ----------------------------------------------------------------------
@dataclass
class LoadedSource:
    """What a source factory produced: packets plus source-specific context.

    ``flows`` carries the generator's ground-truth
    :class:`repro.traffic.GeneratedFlow` list (``None`` for other kinds);
    ``capture``/``stats`` carry the parsed container and decode statistics
    of a pcap source.
    """

    packets: List[Packet]
    flows: Optional[List] = None
    capture: Optional[Any] = None
    stats: Optional[Any] = None


@dataclass(frozen=True)
class SourceFactory:
    """A named packet source: ``load(session, spec) -> LoadedSource``."""

    kind: str
    description: str
    load: Callable[[Any, SourceSpec], LoadedSource]


_SOURCES: Dict[str, SourceFactory] = {}


def register_source(factory: SourceFactory) -> SourceFactory:
    """Add (or replace) a source kind in the global registry."""
    _SOURCES[factory.kind] = factory
    return factory


def get_source(kind: str) -> SourceFactory:
    """Look up a source factory by its registry/config name."""
    try:
        return _SOURCES[kind]
    except KeyError:
        raise KeyError(
            f"unknown source kind {kind!r}; available: {', '.join(source_kinds())}"
        ) from None


def source_kinds() -> List[str]:
    """Registered source kinds, sorted."""
    return sorted(_SOURCES)


def _load_packets_source(session, spec: SourceSpec) -> LoadedSource:
    return LoadedSource(packets=list(spec.packets))


def _load_generator_source(session, spec: SourceSpec) -> LoadedSource:
    from ..traffic.generator import TrafficGenerator, TrafficProfile

    if spec.flows is not None:
        generator = TrafficGenerator(session.ruleset, seed=spec.seed)
        flows = generator.flows(
            spec.flows,
            num_packets=spec.packets_per_flow,
            split_patterns=spec.split_patterns,
            split_segments=spec.split_segments,
            segment_bytes=spec.segment_bytes,
        )
        return LoadedSource(packets=TrafficGenerator.interleave(flows), flows=flows)
    generator = TrafficGenerator(
        session.ruleset,
        TrafficProfile(
            mean_payload_bytes=spec.mean_payload,
            attack_probability=spec.attack_rate,
        ),
        seed=spec.seed,
    )
    return LoadedSource(packets=generator.packets(spec.count))


def _load_pcap_source(session, spec: SourceSpec) -> LoadedSource:
    from ..capture.pcap import read_capture
    from ..capture.replay import load_packets

    capture = read_capture(session.config.resolve(spec.path))
    packets, stats = load_packets(capture, strict=session.config.engine.strict)
    return LoadedSource(packets=packets, capture=capture, stats=stats)


register_source(
    SourceFactory("packets", "in-memory packet list, as given", _load_packets_source)
)
register_source(
    SourceFactory(
        "generator",
        "synthetic flows/packets drawn from the pipeline's ruleset",
        _load_generator_source,
    )
)
register_source(
    SourceFactory(
        "pcap", "pcap/pcapng capture file decoded to scan-ready packets",
        _load_pcap_source,
    )
)


def _load_live_source(session, spec: SourceSpec) -> LoadedSource:
    raise ConfigError(
        f"{spec.kind!r} is a live source and cannot be loaded into a packet "
        "list; run it with Session.serve() or the `serve` CLI subcommand"
    )


def _live_source_object(session, spec: SourceSpec):
    """Build the :mod:`repro.streaming.ingest` source a live spec describes."""
    from ..streaming.ingest import (
        PcapTailSource,
        TcpListenerSource,
        UdpListenerSource,
    )

    if spec.kind == "tcp":
        return TcpListenerSource(spec.host, spec.port)
    if spec.kind == "udp":
        return UdpListenerSource(spec.host, spec.port)
    if spec.kind == "pcap-tail":
        return PcapTailSource(
            session.config.resolve(spec.path),
            follow=spec.follow,
            poll_interval=spec.poll_interval,
            strict=session.config.engine.strict,
        )
    raise ConfigError(f"{spec.kind!r} is not a live source kind")


register_source(
    SourceFactory(
        "tcp", "live asyncio TCP listener (serve-only)", _load_live_source
    )
)
register_source(
    SourceFactory(
        "udp", "live asyncio datagram endpoint (serve-only)", _load_live_source
    )
)
register_source(
    SourceFactory(
        "pcap-tail",
        "incremental (optionally tail-followed) classic pcap reader (serve-only)",
        _load_live_source,
    )
)


# ----------------------------------------------------------------------
# sink registry (lazy factories, mirroring repro.backend)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SinkFactory:
    """A named result sink: ``emit(session, spec, run) -> output``.

    ``emit`` runs after the pipeline executed and returns the sink's output
    (collected objects, or a summary dict for file-writing sinks); outputs
    land in :attr:`repro.api.RunResult.sinks` in config order.
    """

    kind: str
    description: str
    emit: Callable[[Any, SinkSpec, Any], Any]


_SINKS: Dict[str, SinkFactory] = {}


def register_sink(factory: SinkFactory) -> SinkFactory:
    """Add (or replace) a sink kind in the global registry."""
    _SINKS[factory.kind] = factory
    return factory


def get_sink(kind: str) -> SinkFactory:
    """Look up a sink factory by its registry/config name."""
    try:
        return _SINKS[kind]
    except KeyError:
        raise KeyError(
            f"unknown sink kind {kind!r}; available: {', '.join(sink_kinds())}"
        ) from None


def sink_kinds() -> List[str]:
    """Registered sink kinds, sorted."""
    return sorted(_SINKS)


def _emit_events(session, spec: SinkSpec, run) -> List:
    return list(run.events)


def _emit_alerts(session, spec: SinkSpec, run) -> List:
    return list(run.alerts)


def _emit_ndjson(session, spec: SinkSpec, run) -> Dict[str, Any]:
    what = spec.what or ("alerts" if run.mode == "ids" else "events")
    if what == "alerts":
        records = [session.alert_record(alert) for alert in run.alerts]
    else:
        records = [session.event_record(event) for event in run.events]
    path = session.config.resolve(spec.path)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return {"path": path, "what": what, "records": len(records)}


def _emit_pcap(session, spec: SinkSpec, run) -> Dict[str, Any]:
    from ..capture.replay import write_packets

    path = session.config.resolve(spec.path)
    fmt = spec.fmt or ("pcapng" if path.endswith(".pcapng") else "pcap")
    frames = write_packets(path, session.packets, fmt=fmt)
    return {"path": path, "fmt": fmt, "frames": frames}


register_sink(SinkFactory("events", "collect match events in memory", _emit_events))
register_sink(SinkFactory("alerts", "collect IDS alerts in memory", _emit_alerts))
register_sink(
    SinkFactory("ndjson", "write events/alerts as JSON lines to a file", _emit_ndjson)
)
register_sink(
    SinkFactory("pcap", "export the run's packets as a pcap/pcapng capture", _emit_pcap)
)


__all__ = [
    "PIPELINE_MODES",
    "ConfigError",
    "EmptyRulesetError",
    "repro_version",
    "SourceSpec",
    "ContentRule",
    "RulesSpec",
    "EngineSpec",
    "SinkSpec",
    "PipelineConfig",
    "load_config",
    "LoadedSource",
    "SourceFactory",
    "register_source",
    "get_source",
    "source_kinds",
    "SinkFactory",
    "register_sink",
    "get_sink",
    "sink_kinds",
]
