"""Pure-stdlib pcap and pcapng capture-file I/O.

The scan layers built so far could only be fed synthetic
:class:`repro.traffic.TrafficGenerator` streams; this module is the disk half
of the capture/replay subsystem that lets *real* traffic through them.  Two
container formats are supported:

* classic **pcap** (the tcpdump format): 24-byte global header (either
  endianness, microsecond ``0xA1B2C3D4`` or nanosecond ``0xA1B23C4D`` magic)
  followed by 16-byte-headed records;
* **pcapng**, restricted to the classic block types every writer emits:
  Section Header, Interface Description, Enhanced Packet and Simple Packet
  blocks (options are skipped except ``if_tsresol``, which is honoured so
  timestamps come out right).  Unknown block types are ignored, as the
  pcapng spec requires.

Timestamps are normalised to integer **nanoseconds** (``CaptureRecord.ts_ns``)
regardless of the container's resolution, so records round-trip between
formats without floating-point drift.  Only the container lives here; frame
decoding is :mod:`repro.capture.frames` and scan-layer replay is
:mod:`repro.capture.replay`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import BinaryIO, Iterable, List, Optional, Tuple, Union

#: Link-layer types (the registry values pcap and pcapng share).
LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101
LINKTYPE_LINUX_SLL = 113

PCAP_MAGIC_MICRO = 0xA1B2C3D4
PCAP_MAGIC_NANO = 0xA1B23C4D
PCAPNG_BLOCK_SHB = 0x0A0D0D0A
PCAPNG_BYTE_ORDER_MAGIC = 0x1A2B3C4D
PCAPNG_BLOCK_IDB = 0x00000001
PCAPNG_BLOCK_SPB = 0x00000003
PCAPNG_BLOCK_EPB = 0x00000006

_OPT_ENDOFOPT = 0
_OPT_IF_TSRESOL = 9

PathOrIO = Union[str, "os.PathLike[str]", BinaryIO]


class CaptureError(ValueError):
    """Raised when a capture file is malformed or of an unknown format."""


@dataclass
class CaptureRecord:
    """One captured frame: raw link-layer bytes plus capture metadata.

    ``ts_ns`` is nanoseconds since the epoch; ``orig_len`` is the frame's
    length on the wire (``len(data)`` unless the capture was truncated by a
    snap length).
    """

    data: bytes
    ts_ns: int = 0
    orig_len: Optional[int] = None

    @property
    def wire_length(self) -> int:
        return len(self.data) if self.orig_len is None else self.orig_len

    @property
    def truncated(self) -> bool:
        return self.wire_length > len(self.data)


@dataclass
class CaptureFile:
    """A parsed capture: records plus the metadata replay needs.

    ``fmt`` is ``"pcap"`` or ``"pcapng"``; ``nanosecond`` records whether a
    pcap container carried nanosecond timestamps (pcapng resolution is
    per-interface and already folded into ``ts_ns``).
    """

    linktype: int
    records: List[CaptureRecord] = field(default_factory=list)
    fmt: str = "pcap"
    nanosecond: bool = False
    snaplen: int = 0

    def __len__(self) -> int:
        return len(self.records)

    @property
    def total_bytes(self) -> int:
        return sum(len(record.data) for record in self.records)


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
def _read_exact(handle: BinaryIO, count: int, what: str) -> bytes:
    data = handle.read(count)
    if len(data) != count:
        raise CaptureError(f"truncated capture: short read in {what}")
    return data


def _open(source: PathOrIO, mode: str):
    """Return ``(handle, needs_close)`` for a path or an already open file."""
    if hasattr(source, "read") or hasattr(source, "write"):
        return source, False
    return open(source, mode), True


def read_capture(source: PathOrIO) -> CaptureFile:
    """Read a pcap or pcapng file, auto-detected from its magic number."""
    handle, needs_close = _open(source, "rb")
    try:
        magic_bytes = _read_exact(handle, 4, "magic number")
        (magic,) = struct.unpack("<I", magic_bytes)
        if magic in (PCAP_MAGIC_MICRO, PCAP_MAGIC_NANO):
            return _read_pcap(handle, "<", magic == PCAP_MAGIC_NANO)
        (magic_be,) = struct.unpack(">I", magic_bytes)
        if magic_be in (PCAP_MAGIC_MICRO, PCAP_MAGIC_NANO):
            return _read_pcap(handle, ">", magic_be == PCAP_MAGIC_NANO)
        if magic == PCAPNG_BLOCK_SHB:  # block type is endian-independent here
            return _read_pcapng(handle)
        raise CaptureError(f"not a pcap or pcapng file (magic 0x{magic:08X})")
    finally:
        if needs_close:
            handle.close()


def _read_pcap(handle: BinaryIO, endian: str, nanosecond: bool) -> CaptureFile:
    version_major, version_minor, _, _, snaplen, linktype = struct.unpack(
        endian + "HHiIII", _read_exact(handle, 20, "pcap global header")
    )
    if version_major != 2:  # pragma: no cover - no other version exists
        raise CaptureError(f"unsupported pcap version {version_major}.{version_minor}")
    frac_scale = 1 if nanosecond else 1000
    capture = CaptureFile(
        linktype=linktype, fmt="pcap", nanosecond=nanosecond, snaplen=snaplen
    )
    while True:
        header = handle.read(16)
        if not header:
            return capture
        if len(header) != 16:
            raise CaptureError("truncated capture: short read in pcap record header")
        ts_sec, ts_frac, incl_len, orig_len = struct.unpack(endian + "IIII", header)
        data = _read_exact(handle, incl_len, "pcap record data")
        capture.records.append(
            CaptureRecord(
                data=data,
                ts_ns=ts_sec * 1_000_000_000 + ts_frac * frac_scale,
                orig_len=orig_len if orig_len != incl_len else None,
            )
        )


def _parse_options(data: bytes, endian: str) -> List[Tuple[int, bytes]]:
    """Parse a pcapng option list (already-sliced block tail)."""
    options: List[Tuple[int, bytes]] = []
    position = 0
    while position + 4 <= len(data):
        code, length = struct.unpack_from(endian + "HH", data, position)
        position += 4
        if code == _OPT_ENDOFOPT:
            break
        options.append((code, data[position:position + length]))
        position += (length + 3) & ~3  # options are padded to 32 bits
    return options


def _tsresol_units(option: bytes) -> int:
    """Timestamp units per second for an ``if_tsresol`` option value.

    Records convert ticks exactly via ``ticks * 1e9 // units`` — no per-unit
    rounding, so power-of-two and sub-nanosecond resolutions cannot silently
    inflate timestamps (sub-ns precision is floored away, the best an
    integer-nanosecond model can do).
    """
    if not option:
        return 1_000_000
    value = option[0]
    if value & 0x80:  # power of two resolution
        return 1 << (value & 0x7F)
    return 10 ** value


def _read_pcapng(handle: BinaryIO) -> CaptureFile:
    capture: Optional[CaptureFile] = None
    endian = "<"
    #: per-interface timestamp units per second (reset at every new section)
    interfaces: List[int] = []
    snaplens: List[int] = []

    # the caller consumed the SHB block-type word already; re-enter the loop
    # with it pre-read
    pending_type: Optional[int] = PCAPNG_BLOCK_SHB

    while True:
        if pending_type is None:
            type_bytes = handle.read(4)
            if not type_bytes:
                break
            if len(type_bytes) != 4:
                raise CaptureError("truncated capture: short read in pcapng block type")
            (block_type,) = struct.unpack(endian + "I", type_bytes)
        else:
            block_type, pending_type = pending_type, None

        if block_type == PCAPNG_BLOCK_SHB:
            # byte order magic decides endianness for this whole section
            length_and_magic = _read_exact(handle, 8, "pcapng section header")
            (magic,) = struct.unpack("<I", length_and_magic[4:])
            endian = "<" if magic == PCAPNG_BYTE_ORDER_MAGIC else ">"
            (magic,) = struct.unpack(endian + "I", length_and_magic[4:])
            if magic != PCAPNG_BYTE_ORDER_MAGIC:
                raise CaptureError("pcapng section header has a bad byte-order magic")
            (total_length,) = struct.unpack(endian + "I", length_and_magic[:4])
            body = _read_exact(handle, total_length - 12, "pcapng section header")
            interfaces = []
            snaplens = []
            continue

        (total_length,) = struct.unpack(
            endian + "I", _read_exact(handle, 4, "pcapng block length")
        )
        if total_length < 12 or total_length % 4:
            raise CaptureError(f"bad pcapng block length {total_length}")
        body = _read_exact(handle, total_length - 8, "pcapng block body")[:-4]

        if block_type == PCAPNG_BLOCK_IDB:
            if len(body) < 8:
                raise CaptureError("truncated capture: pcapng interface block body")
            linktype, _, snaplen = struct.unpack_from(endian + "HHI", body, 0)
            units = 1_000_000
            for code, value in _parse_options(body[8:], endian):
                if code == _OPT_IF_TSRESOL:
                    units = _tsresol_units(value)
            interfaces.append(units)
            snaplens.append(snaplen)
            if capture is None:
                capture = CaptureFile(linktype=linktype, fmt="pcapng", snaplen=snaplen)
            elif linktype != capture.linktype:
                raise CaptureError(
                    "pcapng captures mixing link types are not supported "
                    f"({capture.linktype} then {linktype})"
                )
        elif block_type == PCAPNG_BLOCK_EPB:
            if capture is None or not interfaces:
                raise CaptureError("pcapng packet block before interface description")
            if len(body) < 20:
                raise CaptureError("truncated capture: pcapng packet block body")
            interface_id, ts_high, ts_low, captured, orig_len = struct.unpack_from(
                endian + "IIIII", body, 0
            )
            if interface_id >= len(interfaces):
                raise CaptureError(f"pcapng packet references unknown interface {interface_id}")
            data = body[20:20 + captured]
            if len(data) != captured:
                raise CaptureError("truncated capture: pcapng packet data")
            ticks = (ts_high << 32) | ts_low
            capture.records.append(
                CaptureRecord(
                    data=data,
                    ts_ns=ticks * 1_000_000_000 // interfaces[interface_id],
                    orig_len=orig_len if orig_len != captured else None,
                )
            )
        elif block_type == PCAPNG_BLOCK_SPB:
            if capture is None or not interfaces:
                raise CaptureError("pcapng packet block before interface description")
            if len(body) < 4:
                raise CaptureError("truncated capture: pcapng packet block body")
            (orig_len,) = struct.unpack_from(endian + "I", body, 0)
            snaplen = snaplens[0]
            captured = min(orig_len, snaplen) if snaplen else orig_len
            data = body[4:4 + captured]
            if len(data) != captured:
                raise CaptureError("truncated capture: pcapng packet data")
            capture.records.append(
                CaptureRecord(
                    data=data,
                    orig_len=orig_len if orig_len != captured else None,
                )
            )
        # any other block type (name resolution, statistics, custom) is
        # skipped: the spec requires readers to ignore what they don't know

    if capture is None:
        raise CaptureError("pcapng file contains no interface description block")
    return capture


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def write_pcap(
    destination: PathOrIO,
    records: Iterable[CaptureRecord],
    linktype: int = LINKTYPE_ETHERNET,
    nanosecond: bool = False,
    snaplen: int = 262_144,
) -> int:
    """Write classic pcap; returns the number of records written."""
    handle, needs_close = _open(destination, "wb")
    frac_scale = 1 if nanosecond else 1000
    magic = PCAP_MAGIC_NANO if nanosecond else PCAP_MAGIC_MICRO
    try:
        handle.write(struct.pack("<IHHiIII", magic, 2, 4, 0, 0, snaplen, linktype))
        count = 0
        for record in records:
            ts_sec, ts_frac = divmod(record.ts_ns, 1_000_000_000)
            handle.write(
                struct.pack(
                    "<IIII",
                    ts_sec,
                    ts_frac // frac_scale,
                    len(record.data),
                    record.wire_length,
                )
            )
            handle.write(record.data)
            count += 1
        return count
    finally:
        if needs_close:
            handle.close()


def _pad32(data: bytes) -> bytes:
    return data + b"\x00" * (-len(data) % 4)


def _pcapng_block(block_type: int, body: bytes) -> bytes:
    body = _pad32(body)
    total = len(body) + 12
    return struct.pack("<II", block_type, total) + body + struct.pack("<I", total)


def write_pcapng(
    destination: PathOrIO,
    records: Iterable[CaptureRecord],
    linktype: int = LINKTYPE_ETHERNET,
    snaplen: int = 0,
) -> int:
    """Write pcapng (one section, one interface, Enhanced Packet Blocks).

    The interface advertises nanosecond resolution (``if_tsresol`` = 9), so
    ``CaptureRecord.ts_ns`` round-trips exactly.  Returns the record count.
    """
    handle, needs_close = _open(destination, "wb")
    try:
        handle.write(
            _pcapng_block(
                PCAPNG_BLOCK_SHB,
                struct.pack("<IHHq", PCAPNG_BYTE_ORDER_MAGIC, 1, 0, -1),
            )
        )
        tsresol_option = struct.pack("<HH", _OPT_IF_TSRESOL, 1) + _pad32(b"\x09")
        end_option = struct.pack("<HH", _OPT_ENDOFOPT, 0)
        handle.write(
            _pcapng_block(
                PCAPNG_BLOCK_IDB,
                struct.pack("<HHI", linktype, 0, snaplen) + tsresol_option + end_option,
            )
        )
        count = 0
        for record in records:
            body = struct.pack(
                "<IIIII",
                0,  # interface id
                record.ts_ns >> 32,
                record.ts_ns & 0xFFFFFFFF,
                len(record.data),
                record.wire_length,
            ) + _pad32(record.data)
            handle.write(_pcapng_block(PCAPNG_BLOCK_EPB, body))
            count += 1
        return count
    finally:
        if needs_close:
            handle.close()
