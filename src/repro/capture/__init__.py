"""Pcap/pcapng capture ingest, export and scan-layer replay.

The subsystem splits into three layers:

* :mod:`repro.capture.pcap`   — the container formats (classic pcap in both
  endiannesses and timestamp resolutions, pcapng's classic block set);
* :mod:`repro.capture.frames` — Ethernet/SLL/raw-IP + IPv4/IPv6 + TCP/UDP
  frame decoding into the :class:`repro.traffic.Packet` model, and the
  deterministic inverse encoding;
* :mod:`repro.capture.replay` — adapters that stream a capture through
  :class:`~repro.streaming.StreamScanner`, :class:`~repro.streaming.ScanService`,
  :class:`~repro.streaming.ParallelScanService` and the IDS with events
  byte-identical to an in-memory scan of the same segments.
"""

from .frames import DecodedFrame, FrameEncodeError, decode_frame, encode_frame
from .pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_LINUX_SLL,
    LINKTYPE_RAW,
    CaptureError,
    CaptureFile,
    CaptureRecord,
    read_capture,
    write_pcap,
    write_pcapng,
)
from .replay import (
    ReplayStats,
    load_packets,
    replay_ids,
    replay_scan,
    replay_stream,
    write_packets,
)

__all__ = [
    "DecodedFrame",
    "FrameEncodeError",
    "decode_frame",
    "encode_frame",
    "LINKTYPE_ETHERNET",
    "LINKTYPE_LINUX_SLL",
    "LINKTYPE_RAW",
    "CaptureError",
    "CaptureFile",
    "CaptureRecord",
    "read_capture",
    "write_pcap",
    "write_pcapng",
    "ReplayStats",
    "load_packets",
    "replay_ids",
    "replay_scan",
    "replay_stream",
    "write_packets",
]
