"""Link/network/transport frame codec between capture bytes and the Packet model.

:func:`decode_frame` turns one captured frame into the 5-tuple header and the
TCP/UDP payload the scan layers operate on; :func:`encode_frame` is its
inverse, used to export generated traffic as standards-conformant captures.
Supported layers:

* link: Ethernet (including 802.1Q VLAN tags), Linux cooked capture (SLL)
  and raw IP (``LINKTYPE_RAW``);
* network: IPv4 (options skipped, every fragment rejected — reassembly is
  out of scope and a first fragment's partial payload would silently miss
  boundary-spanning patterns) and IPv6 (hop-by-hop/routing/
  destination-options/fragment extension chains walked);
* transport: TCP and UDP.

Frames outside that set — ARP, ICMP, IP fragments — decode to
``None`` with a reason, so replay can count what it skipped instead of
failing on real-world captures.  Encoding is deterministic: fixed MAC
addresses, caller-supplied (or zero) TCP sequence numbers and correct
IPv4/TCP/UDP checksums, so a written capture is byte-stable for a given
packet stream and accepted by standard tools.
:func:`repro.capture.replay.write_packets` assigns monotone per-flow
sequence numbers, so exported captures are valid input for the
:mod:`repro.proto` TCP reassembler.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from ..traffic.packet import FiveTuple
from .pcap import LINKTYPE_ETHERNET, LINKTYPE_LINUX_SLL, LINKTYPE_RAW

_ETHERTYPE_IPV4 = 0x0800
_ETHERTYPE_IPV6 = 0x86DD
_ETHERTYPE_VLAN = 0x8100

_IPPROTO_TCP = 6
_IPPROTO_UDP = 17

#: IPv6 extension headers that carry a ``(next_header, length)`` prefix.
_IPV6_EXTENSIONS = {0, 43, 60}
_IPV6_FRAGMENT = 44

#: Deterministic MACs for encoded frames (locally administered range).
_SRC_MAC = bytes.fromhex("020000000001")
_DST_MAC = bytes.fromhex("020000000002")

_PROTO_NUMBER = {"tcp": _IPPROTO_TCP, "udp": _IPPROTO_UDP}
_PROTO_NAME = {number: name for name, number in _PROTO_NUMBER.items()}


class FrameEncodeError(ValueError):
    """Raised when a packet cannot be rendered as a capture frame."""


@dataclass(frozen=True)
class DecodedFrame:
    """One successfully decoded frame: the scan-layer view of the bytes.

    ``seq``/``flags`` carry the TCP sequence number and flag byte for TCP
    frames (``None``/``0`` for UDP), so the :mod:`repro.proto` reassembler
    can reorder segments without re-decoding the capture.
    """

    header: FiveTuple
    payload: bytes
    seq: Optional[int] = None
    flags: int = 0


def _checksum(data: bytes) -> int:
    """RFC 1071 ones'-complement checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def decode_frame(
    data: bytes, linktype: int = LINKTYPE_ETHERNET
) -> Tuple[Optional[DecodedFrame], Optional[str]]:
    """Decode one captured frame; returns ``(frame, None)`` or ``(None, reason)``.

    ``reason`` is a short stable token (``"link"``, ``"network"``,
    ``"fragment"``, ``"transport"``, ``"truncated"``) suitable for
    aggregation into replay statistics.
    """
    if linktype == LINKTYPE_ETHERNET:
        if len(data) < 14:
            return None, "truncated"
        (ethertype,) = struct.unpack_from("!H", data, 12)
        offset = 14
        while ethertype == _ETHERTYPE_VLAN:
            if len(data) < offset + 4:
                return None, "truncated"
            (ethertype,) = struct.unpack_from("!H", data, offset + 2)
            offset += 4
        packet = data[offset:]
    elif linktype == LINKTYPE_LINUX_SLL:
        if len(data) < 16:
            return None, "truncated"
        (ethertype,) = struct.unpack_from("!H", data, 14)
        packet = data[16:]
    elif linktype == LINKTYPE_RAW:
        if not data:
            return None, "truncated"
        version = data[0] >> 4
        ethertype = _ETHERTYPE_IPV4 if version == 4 else _ETHERTYPE_IPV6
        packet = data
    else:
        return None, "link"

    if ethertype == _ETHERTYPE_IPV4:
        return _decode_ipv4(packet)
    if ethertype == _ETHERTYPE_IPV6:
        return _decode_ipv6(packet)
    return None, "network"


def _decode_ipv4(packet: bytes) -> Tuple[Optional[DecodedFrame], Optional[str]]:
    if len(packet) < 20:
        return None, "truncated"
    if packet[0] >> 4 != 4:
        return None, "network"
    header_len = (packet[0] & 0x0F) * 4
    total_len = struct.unpack_from("!H", packet, 2)[0]
    if header_len < 20 or len(packet) < total_len or total_len < header_len:
        return None, "truncated"
    flags_fragment = struct.unpack_from("!H", packet, 6)[0]
    # any fragment is unscannable without reassembly: a non-first fragment
    # (offset != 0) has no transport header, a first fragment (MF set) has a
    # partial payload that would silently miss boundary-spanning patterns
    if flags_fragment & 0x3FFF:  # offset bits | more-fragments
        return None, "fragment"
    protocol = packet[9]
    src = str(ipaddress.IPv4Address(packet[12:16]))
    dst = str(ipaddress.IPv4Address(packet[16:20]))
    return _decode_transport(
        protocol, src, dst, packet[header_len:total_len]
    )


def _decode_ipv6(packet: bytes) -> Tuple[Optional[DecodedFrame], Optional[str]]:
    if len(packet) < 40:
        return None, "truncated"
    if packet[0] >> 4 != 6:
        return None, "network"
    payload_len, next_header = struct.unpack_from("!HB", packet, 4)
    src = str(ipaddress.IPv6Address(packet[8:24]))
    dst = str(ipaddress.IPv6Address(packet[24:40]))
    end = 40 + payload_len
    if len(packet) < end:
        return None, "truncated"
    position = 40
    while next_header in _IPV6_EXTENSIONS or next_header == _IPV6_FRAGMENT:
        if position + 8 > end:
            return None, "truncated"
        if next_header == _IPV6_FRAGMENT:
            # offset bits | M flag: only atomic fragments are complete
            if struct.unpack_from("!H", packet, position + 2)[0] & 0xFFF9:
                return None, "fragment"
            next_header = packet[position]
            position += 8
        else:
            next_header, ext_len = struct.unpack_from("!BB", packet, position)
            position += (ext_len + 1) * 8
    return _decode_transport(next_header, src, dst, packet[position:end])


def _decode_transport(
    protocol: int, src: str, dst: str, segment: bytes
) -> Tuple[Optional[DecodedFrame], Optional[str]]:
    seq: Optional[int] = None
    flags = 0
    if protocol == _IPPROTO_TCP:
        if len(segment) < 20:
            return None, "truncated"
        src_port, dst_port = struct.unpack_from("!HH", segment, 0)
        seq = struct.unpack_from("!I", segment, 4)[0]
        flags = segment[13]
        data_offset = (segment[12] >> 4) * 4
        if data_offset < 20 or data_offset > len(segment):
            return None, "truncated"
        payload = segment[data_offset:]
    elif protocol == _IPPROTO_UDP:
        if len(segment) < 8:
            return None, "truncated"
        src_port, dst_port, length = struct.unpack_from("!HHH", segment, 0)
        if length < 8 or length > len(segment):
            return None, "truncated"
        payload = segment[8:length]
    else:
        return None, "transport"
    header = FiveTuple(
        src_ip=src,
        dst_ip=dst,
        src_port=src_port,
        dst_port=dst_port,
        protocol=_PROTO_NAME[protocol],
    )
    return DecodedFrame(header=header, payload=payload, seq=seq, flags=flags), None


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def encode_frame(
    header: FiveTuple,
    payload: bytes,
    linktype: int = LINKTYPE_ETHERNET,
    *,
    seq: int = 0,
    flags: int = 0x18,
) -> bytes:
    """Render a header + payload as one frame of the given link type.

    The inverse of :func:`decode_frame` for the supported 5-tuples:
    ``decode_frame(encode_frame(h, p))`` returns exactly ``(h, p)``.
    ``seq``/``flags`` set the TCP sequence number and flag byte (default
    PSH|ACK) and are ignored for UDP.
    """
    if not 0 <= seq <= 0xFFFFFFFF:
        raise FrameEncodeError(f"TCP sequence number {seq} out of 32-bit range")
    protocol = _PROTO_NUMBER.get(header.protocol.lower())
    if protocol is None:
        raise FrameEncodeError(
            f"cannot encode protocol {header.protocol!r} (only tcp/udp)"
        )
    try:
        src = ipaddress.ip_address(header.src_ip)
        dst = ipaddress.ip_address(header.dst_ip)
    except ValueError as exc:
        raise FrameEncodeError(f"cannot encode addresses of {header}") from exc
    if src.version != dst.version:
        raise FrameEncodeError(f"mixed IPv4/IPv6 addresses in {header}")

    transport_header = 20 if protocol == _IPPROTO_TCP else 8
    max_segment = 0xFFFF - 20 if src.version == 4 else 0xFFFF
    if transport_header + len(payload) > max_segment:
        raise FrameEncodeError(
            f"payload of {len(payload)} bytes does not fit the 16-bit length "
            f"fields of one IPv{src.version} frame"
        )
    segment = _encode_transport(protocol, header, payload, src, dst, seq, flags)
    if src.version == 4:
        ip_header = struct.pack(
            "!BBHHHBBH4s4s",
            0x45, 0, 20 + len(segment), 0, 0x4000, 64, protocol, 0,
            src.packed, dst.packed,
        )
        checksum = _checksum(ip_header)
        packet = ip_header[:10] + struct.pack("!H", checksum) + ip_header[12:] + segment
        ethertype = _ETHERTYPE_IPV4
    else:
        packet = (
            struct.pack("!IHBB", 6 << 28, len(segment), protocol, 64)
            + src.packed
            + dst.packed
            + segment
        )
        ethertype = _ETHERTYPE_IPV6

    if linktype == LINKTYPE_ETHERNET:
        return _DST_MAC + _SRC_MAC + struct.pack("!H", ethertype) + packet
    if linktype == LINKTYPE_RAW:
        return packet
    if linktype == LINKTYPE_LINUX_SLL:
        # outgoing packet, ARPHRD_ETHER, 6-byte sender address
        return (
            struct.pack("!HHH", 4, 1, 6)
            + _SRC_MAC + b"\x00\x00"
            + struct.pack("!H", ethertype)
            + packet
        )
    raise FrameEncodeError(f"cannot encode link type {linktype}")


def _encode_transport(protocol, header, payload, src, dst, seq=0, flags=0x18) -> bytes:
    if protocol == _IPPROTO_TCP:
        segment = struct.pack(
            "!HHIIBBHHH",
            header.src_port, header.dst_port,
            seq, 0,  # deterministic ack: replay only reads one direction
            5 << 4, flags,  # data offset 5 words
            0xFFFF, 0, 0,
        ) + payload
    else:
        segment = struct.pack(
            "!HHHH", header.src_port, header.dst_port, 8 + len(payload), 0
        ) + payload

    pseudo = src.packed + dst.packed + (
        struct.pack("!BBH", 0, protocol, len(segment))
        if src.version == 4
        else struct.pack("!IHBB", len(segment), 0, 0, protocol)
    )
    checksum = _checksum(pseudo + segment)
    if protocol == _IPPROTO_UDP and checksum == 0:
        checksum = 0xFFFF  # 0 means "no checksum" on the wire (RFC 768)
    checksum_at = 16 if protocol == _IPPROTO_TCP else 6
    return (
        segment[:checksum_at]
        + struct.pack("!H", checksum)
        + segment[checksum_at + 2:]
    )
