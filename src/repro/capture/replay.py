"""Replay adapters: captures in and out of every scan layer.

The contract this module makes testable: a capture written by
:func:`write_packets`, read back and replayed through any scan front-end —
:class:`repro.streaming.StreamScanner`, the serial
:class:`repro.streaming.ScanService`, the process-parallel
:class:`repro.streaming.ParallelScanService` or the stateful
:class:`repro.ids.IntrusionDetectionSystem` pipeline — produces events and
alerts **byte-identical** to scanning the same segments in memory.  Capture
order is flow-segment order (packet ids are assigned sequentially from
``first_packet_id``), which is exactly the arrival-order guarantee the
sharded services already rely on.

Real-world captures contain frames the DPI layers cannot scan (ARP, ICMP,
fragments); :func:`load_packets` skips and counts them per reason in
:class:`ReplayStats` unless ``strict`` is set.

Captures also plug into the declarative pipeline API: a
``SourceSpec(kind="pcap", path=...)`` makes :class:`repro.api.Session` drive
:func:`load_packets` (honouring the engine's ``strict`` flag), and a
``SinkSpec(kind="pcap", path=...)`` exports a run's packets through
:func:`write_packets` — so ``repro run`` replays and produces capture files
without any hand-wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from ..traffic.packet import Packet
from .frames import FrameEncodeError, decode_frame, encode_frame
from .pcap import (
    LINKTYPE_ETHERNET,
    CaptureError,
    CaptureFile,
    CaptureRecord,
    PathOrIO,
    read_capture,
    write_pcap,
    write_pcapng,
)

CaptureSource = Union[PathOrIO, CaptureFile]


@dataclass
class ReplayStats:
    """What a capture decoded into: frames kept vs skipped, by reason."""

    frames: int = 0
    decoded: int = 0
    payload_bytes: int = 0
    skipped: Dict[str, int] = field(default_factory=dict)

    @property
    def skipped_total(self) -> int:
        return sum(self.skipped.values())

    @property
    def skipped_fragments(self) -> int:
        """IPv4/IPv6 fragments (unscannable without IP reassembly)."""
        return self.skipped.get("fragment", 0)

    @property
    def skipped_other(self) -> int:
        """Everything else skipped: non-IP link frames, non-TCP/UDP
        transports, truncated frames."""
        return self.skipped_total - self.skipped_fragments


def _as_capture(source: CaptureSource) -> CaptureFile:
    return source if isinstance(source, CaptureFile) else read_capture(source)


def load_packets(
    source: CaptureSource,
    first_packet_id: int = 0,
    strict: bool = False,
) -> Tuple[List[Packet], ReplayStats]:
    """Decode a capture into scan-ready :class:`Packet` objects.

    Packet ids are assigned sequentially in capture order starting at
    ``first_packet_id``; undecodable frames are skipped and counted (or, with
    ``strict``, raise :class:`repro.capture.CaptureError`).
    """
    capture = _as_capture(source)
    stats = ReplayStats()
    packets: List[Packet] = []
    next_id = first_packet_id
    for record in capture.records:
        stats.frames += 1
        frame, reason = decode_frame(record.data, capture.linktype)
        if frame is None:
            if strict:
                raise CaptureError(
                    f"frame {stats.frames - 1} cannot be decoded ({reason})"
                )
            stats.skipped[reason] = stats.skipped.get(reason, 0) + 1
            continue
        packets.append(
            Packet(
                payload=frame.payload,
                header=frame.header,
                packet_id=next_id,
                tcp_seq=frame.seq,
                tcp_flags=frame.flags if frame.seq is not None else None,
            )
        )
        next_id += 1
        stats.decoded += 1
        stats.payload_bytes += len(frame.payload)
    return packets, stats


def write_packets(
    destination: PathOrIO,
    packets: Sequence[Packet],
    linktype: int = LINKTYPE_ETHERNET,
    fmt: str = "pcap",
    nanosecond: bool = False,
    base_ts_ns: int = 0,
    step_ns: int = 1_000_000,
) -> int:
    """Encode ``packets`` as frames and write a capture file.

    Packets are written in sequence order (flow-segment order is preserved,
    so a replay scans segments exactly as the in-memory service would) with
    deterministic, evenly spaced timestamps.  ``fmt`` is ``"pcap"`` or
    ``"pcapng"``.  Every packet needs a 5-tuple header; returns the number of
    frames written.

    TCP frames carry monotone per-flow sequence numbers (each flow starts at
    1 and advances by payload length), so the capture is valid input for the
    :mod:`repro.proto` reassembler.  A packet with an explicit ``tcp_seq``
    (adversarial traffic, replayed captures) keeps it verbatim and does not
    advance the flow's counter.
    """
    records: List[CaptureRecord] = []
    next_seq: Dict[object, int] = {}
    for index, packet in enumerate(packets):
        if packet.header is None:
            raise FrameEncodeError(
                f"packet {packet.packet_id} has no 5-tuple header; "
                "captures carry only on-the-wire fields"
            )
        seq = 0
        flags = 0x18
        if packet.header.protocol.lower() == "tcp":
            if packet.tcp_seq is not None:
                seq = packet.tcp_seq
            else:
                seq = next_seq.get(packet.header, 1)
                next_seq[packet.header] = (seq + len(packet.payload)) & 0xFFFFFFFF
            if packet.tcp_flags is not None:
                flags = packet.tcp_flags
        records.append(
            CaptureRecord(
                data=encode_frame(
                    packet.header, packet.payload, linktype, seq=seq, flags=flags
                ),
                ts_ns=base_ts_ns + index * step_ns,
            )
        )
    if fmt == "pcap":
        return write_pcap(destination, records, linktype, nanosecond=nanosecond)
    if fmt == "pcapng":
        return write_pcapng(destination, records, linktype)
    raise ValueError(f"unknown capture format {fmt!r} (use 'pcap' or 'pcapng')")


# ----------------------------------------------------------------------
# scan-layer front-ends
# ----------------------------------------------------------------------
# These are one-call conveniences that trade away the decode statistics;
# call load_packets() directly (as the CLI does) when you need to report
# how many frames were skipped and why alongside the scan result.
def replay_stream(source: CaptureSource, scanner, strict: bool = False):
    """Replay a capture through a :class:`StreamScanner`; returns its matches."""
    packets, _ = load_packets(source, strict=strict)
    return scanner.scan_packets(packets)


def replay_scan(source: CaptureSource, service, strict: bool = False):
    """Replay a capture through a (serial or parallel) scan service.

    ``service`` is any :class:`repro.streaming.service.ShardedScanServiceBase`
    front-end; the returned :class:`StreamScanResult` is byte-identical to
    ``service.scan(packets)`` on the same in-memory segments.
    """
    packets, _ = load_packets(source, strict=strict)
    return service.scan(packets)


def replay_ids(
    source: CaptureSource, ids, strict: bool = False, finalize: bool = True
):
    """Replay a capture through the stateful IDS pipeline; returns the alerts.

    A finished capture means its flows are finished, so by default the
    replay also decides the end-of-flow rule verdicts (negated contents /
    pcres) via :meth:`IntrusionDetectionSystem.finish`; pass
    ``finalize=False`` when stitching several captures into one workload.
    """
    packets, _ = load_packets(source, strict=strict)
    alerts = ids.scan_flow(packets)
    if finalize:
        alerts += ids.finish()
    return alerts


__all__ = [
    "CaptureSource",
    "ReplayStats",
    "load_packets",
    "replay_ids",
    "replay_scan",
    "replay_stream",
    "write_packets",
]
