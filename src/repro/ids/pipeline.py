"""End-to-end mini intrusion detection pipeline.

Combines the two halves of a DPI rule the way the paper describes them being
used on a router line card:

1. the *header* of every packet goes through 5-tuple classification
   (:mod:`repro.ids.classifier`);
2. the *payload* goes through the string matching accelerator
   (:mod:`repro.hardware` when simulating hardware, or the software
   :class:`repro.core.DTPAutomaton` matcher);
3. an alert is raised for a rule only when both its header pattern and every
   one of its content strings matched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..backend import CompiledProgram, get_backend
from ..core.accelerator_config import compile_ruleset
from ..fpga.devices import FPGADevice, STRATIX_III
from ..hardware.accelerator import HardwareAccelerator
from ..rulesets.parser import SidAllocator, SnortRuleSpec
from ..rulesets.ruleset import RuleSet
from ..streaming.executor import ParallelScanService
from ..streaming.flow import DEFAULT_FLOW_CAPACITY, FlowEntry, FlowKey
from ..streaming.scanner import StreamScanner
from ..traffic.packet import Packet
from .classifier import HeaderClassifier, HeaderPattern


@dataclass(frozen=True)
class IDSRule:
    """One complete IDS rule: header pattern plus one or more content strings.

    ``nocase`` flags which content strings are case-insensitive (Snort's
    ``nocase`` modifier).  Case-insensitive contents are stored lower-cased
    and matched against a lower-cased view of the payload.
    """

    sid: int
    header: HeaderPattern
    contents: Tuple[bytes, ...]
    msg: str = ""
    action: str = "alert"
    nocase: Tuple[bool, ...] = ()

    def __post_init__(self) -> None:
        if not self.contents:
            raise ValueError(f"rule {self.sid} has no content strings")
        if self.nocase and len(self.nocase) != len(self.contents):
            raise ValueError(f"rule {self.sid}: nocase flags do not match contents")

    def content_flags(self) -> Tuple[Tuple[bytes, bool], ...]:
        flags = self.nocase or (False,) * len(self.contents)
        return tuple(zip(self.contents, flags))


@dataclass(frozen=True)
class Alert:
    """An alert raised for a packet."""

    packet_id: int
    sid: int
    msg: str
    action: str


@dataclass
class IDSStatistics:
    packets_processed: int = 0
    payload_bytes: int = 0
    header_candidates: int = 0
    content_matches: int = 0
    alerts_raised: int = 0


class IntrusionDetectionSystem:
    """A miniature Snort-style IDS driven by the paper's accelerator.

    ``backend`` selects the content matcher (any name registered in
    :mod:`repro.backend`).  The default ``"dtp"`` compiles the device-mapped
    accelerator program and is the only backend the cycle-level hardware
    model can execute; every other backend runs the same pipeline through
    its compiled program.

    ``workers`` routes :meth:`scan_flow` content matching through the
    process-parallel :class:`repro.streaming.ParallelScanService` with that
    many worker processes (``None``, the default, keeps the in-process
    scanner).  Call :meth:`close` (or :meth:`reset_flows`) to shut the
    worker pool down when done.
    """

    def __init__(
        self,
        rules: Sequence[IDSRule],
        device: FPGADevice = STRATIX_III,
        use_hardware_model: bool = False,
        backend: str = "dtp",
        workers: Optional[int] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if not rules:
            raise ValueError("at least one rule is required")
        self.rules: Dict[int, IDSRule] = {}
        for rule in rules:
            if rule.sid in self.rules:
                raise ValueError(f"duplicate sid {rule.sid}")
            self.rules[rule.sid] = rule
        self.device = device
        self.use_hardware_model = use_hardware_model
        self.stats = IDSStatistics()

        self.classifier = HeaderClassifier()
        for rule in rules:
            self.classifier.add_rule(rule.sid, rule.header)

        # Build the content ruleset: unique strings across all rules, and a
        # reverse map from string number to the rules that need it.  Contents
        # flagged nocase are stored lower-cased and additionally searched in a
        # lower-cased copy of each payload.
        self._content_ruleset = RuleSet(name="ids-contents")
        self._string_to_rules: Dict[bytes, Set[int]] = {}
        self._nocase_patterns: Set[bytes] = set()
        for rule in rules:
            for content, nocase in rule.content_flags():
                if nocase:
                    self._nocase_patterns.add(content)
                self._string_to_rules.setdefault(content, set()).add(rule.sid)
                if content not in self._content_ruleset:
                    self._content_ruleset.add_pattern(content)

        self.backend = backend
        if backend == "dtp":
            self.program: CompiledProgram = compile_ruleset(self._content_ruleset, device)
        else:
            if use_hardware_model:
                raise ValueError(
                    "the cycle-level hardware model only executes the 'dtp' "
                    f"backend, not {backend!r}"
                )
            self.program = get_backend(backend).compile(self._content_ruleset.patterns)
        self._number_to_pattern = {
            index: rule.pattern for index, rule in enumerate(self._content_ruleset)
        }
        self.accelerator: Optional[HardwareAccelerator] = (
            HardwareAccelerator(self.program) if use_hardware_model else None
        )
        #: content matcher used by :meth:`process` (protocol-conformant)
        self._matcher: CompiledProgram = (
            self.accelerator if self.accelerator is not None else self.program
        )
        self._flow_scanner: Optional[StreamScanner] = None
        self._flow_capacity = DEFAULT_FLOW_CAPACITY
        self.workers = workers
        self._parallel_service: Optional[ParallelScanService] = None
        # parent-side mirror of the per-flow matched/alerted bookkeeping the
        # serial path keeps on FlowEntry; lives as long as the worker pool's
        # flow tables so consecutive scan_flow calls correlate like one stream
        self._parallel_found: Dict[FlowKey, Set[bytes]] = {}
        self._parallel_alerted: Dict[FlowKey, Set[int]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_ruleset(
        cls,
        ruleset,
        device: FPGADevice = STRATIX_III,
        use_hardware_model: bool = False,
        backend: str = "dtp",
        workers: Optional[int] = None,
    ) -> "IntrusionDetectionSystem":
        """Build an IDS with one wildcard-header rule per ruleset pattern.

        The wildcard header keeps every packet a candidate, so detection is
        decided purely by the content matcher — the construction the CLI and
        :class:`repro.api.Session` use for synthetic rulesets.
        """
        rules = [
            IDSRule(sid=rule.sid, header=HeaderPattern(), contents=(rule.pattern,))
            for rule in ruleset
        ]
        return cls(
            rules,
            device=device,
            use_hardware_model=use_hardware_model,
            backend=backend,
            workers=workers,
        )

    @classmethod
    def from_specs(
        cls,
        specs: Iterable[SnortRuleSpec],
        device: FPGADevice = STRATIX_III,
        use_hardware_model: bool = False,
        backend: str = "dtp",
        workers: Optional[int] = None,
        sid_remap: Optional[Dict[int, int]] = None,
    ) -> "IntrusionDetectionSystem":
        """Build an IDS from parsed Snort rules.

        Sid assignment is the shared :class:`repro.rulesets.parser.SidAllocator`
        policy: the first rule claiming a sid keeps it, later claimants (and
        sid-less rules) get the lowest free sid no spec claims explicitly —
        a rules file with colliding or missing sids loads instead of tripping
        the duplicate-sid constructor check, and reassignments are recorded
        in ``sid_remap`` (when given) exactly as :func:`ruleset_from_specs`
        records them.
        """
        specs = list(specs)
        allocator = SidAllocator(specs, sid_remap)
        rules: List[IDSRule] = []
        for spec in specs:
            if not spec.contents:
                continue
            sid = allocator.assign(spec.sid)
            rules.append(
                IDSRule(
                    sid=sid,
                    header=HeaderPattern(
                        protocol=spec.header.protocol,
                        src_ip=spec.header.src_ip,
                        src_port=spec.header.src_port,
                        dst_ip=spec.header.dst_ip,
                        dst_port=spec.header.dst_port,
                    ),
                    contents=tuple(c.effective_pattern() for c in spec.contents),
                    msg=spec.msg,
                    action=spec.header.action,
                    nocase=tuple(c.nocase for c in spec.contents),
                )
            )
        return cls(
            rules,
            device=device,
            use_hardware_model=use_hardware_model,
            backend=backend,
            workers=workers,
        )

    # ------------------------------------------------------------------
    def _content_matches(self, packets: Sequence[Packet]) -> Dict[int, Set[bytes]]:
        """Which content strings matched in which packet.

        Every payload is scanned as-is; when any rule uses ``nocase`` a
        lower-cased copy is scanned as well and its hits are credited only to
        the case-insensitive patterns.
        """
        found: Dict[int, Set[bytes]] = {packet.packet_id: set() for packet in packets}
        matcher = self._matcher  # accelerator and program share the protocol
        for packet in packets:
            for _, number in matcher.match(packet.payload):
                found[packet.packet_id].add(self._number_to_pattern[number])
            if self._nocase_patterns:
                for _, number in matcher.match(packet.payload.lower()):
                    pattern = self._number_to_pattern[number]
                    if pattern in self._nocase_patterns:
                        found[packet.packet_id].add(pattern)
        return found

    def process(self, packets: Sequence[Packet]) -> List[Alert]:
        """Run the full pipeline over ``packets`` and return the alerts raised."""
        alerts: List[Alert] = []
        content_hits = self._content_matches(packets)
        for packet in packets:
            self.stats.packets_processed += 1
            self.stats.payload_bytes += len(packet.payload)
            candidates = self.classifier.classify(packet.header)
            self.stats.header_candidates += len(candidates)
            hits = content_hits[packet.packet_id]
            self.stats.content_matches += len(hits)
            for sid in candidates:
                rule = self.rules[sid]
                if all(content in hits for content in rule.contents):
                    alerts.append(
                        Alert(
                            packet_id=packet.packet_id,
                            sid=sid,
                            msg=rule.msg,
                            action=rule.action,
                        )
                    )
                    self.stats.alerts_raised += 1
        return alerts

    # ------------------------------------------------------------------
    # stateful (streaming) scanning
    # ------------------------------------------------------------------
    @property
    def flow_scanner(self) -> StreamScanner:
        """The lazily created stateful scanner backing :meth:`scan_flow`."""
        if self._flow_scanner is None:
            self._flow_scanner = StreamScanner(
                self.program,
                capacity=self._flow_capacity,
                track_nocase=bool(self._nocase_patterns),
            )
        return self._flow_scanner

    @property
    def parallel_service(self) -> ParallelScanService:
        """The lazily created worker pool backing the parallel flow scan."""
        if self.workers is None:
            raise ValueError(
                "this IDS was built without workers=; pass workers=N to "
                "IntrusionDetectionSystem to enable the parallel flow scan"
            )
        if self._parallel_service is None:
            self._parallel_service = ParallelScanService(
                self.program,
                num_shards=self.workers,
                flow_capacity_per_shard=self._flow_capacity,
                track_nocase=bool(self._nocase_patterns),
                workers=self.workers,
            )
        return self._parallel_service

    def reset_flows(self, capacity: Optional[int] = None) -> None:
        """Drop all tracked flow state (optionally resizing the flow table)."""
        if capacity is not None:
            self._flow_capacity = capacity
        self._flow_scanner = None
        self.close()

    def close(self) -> None:
        """Shut down the parallel scan workers, if any were started.

        The correlation state goes with them: a pool rebuilt later starts
        with fresh flow tables, so the parent-side mirror must be fresh too.
        """
        if self._parallel_service is not None:
            self._parallel_service.close()
            self._parallel_service = None
        self._parallel_found.clear()
        self._parallel_alerted.clear()

    def __enter__(self) -> "IntrusionDetectionSystem":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _flow_contents_found(self, entry: FlowEntry) -> Set[bytes]:
        """Content strings confirmed so far in one flow's byte stream."""
        found = {self._number_to_pattern[number] for number in entry.matched}
        for number in entry.matched_lower:
            pattern = self._number_to_pattern[number]
            if pattern in self._nocase_patterns:
                found.add(pattern)
        return found

    def scan_flow(self, packets: Sequence[Packet]) -> List[Alert]:
        """Run the pipeline statefully: packets are flow segments, in order.

        Unlike :meth:`process`, the content matcher resumes each flow's
        automaton state (keyed by the packet 5-tuple) across segments, so a
        rule string split across consecutive packets of one flow still
        completes, and a multi-content rule may gather its strings over
        several segments.  Each rule alerts at most once per tracked flow,
        at the packet where its last required content completed; flow state
        evicted under memory pressure restarts from scratch.

        Content matching always uses the software automaton here, even when
        the IDS was built with ``use_hardware_model=True`` (which only
        affects :meth:`process`): the cycle-level model scans whole packets
        per engine, while the per-engine flow checkpointing it would need is
        exposed (:meth:`repro.hardware.StringMatchingEngine.resume_flow`)
        but not yet driven by a flow-aware hardware scheduler.

        With ``workers`` set, the payload scanning runs on the parallel
        shard executor and alerts are correlated from its event stream —
        same alerts, same order, same statistics as the serial path (the
        flow-capacity bound then applies per worker shard rather than to
        one shared table, which only matters under eviction pressure).
        """
        if self.workers is not None:
            return self._scan_flow_parallel(packets)
        scanner = self.flow_scanner
        alerts: List[Alert] = []
        for packet in packets:
            self.stats.packets_processed += 1
            self.stats.payload_bytes += len(packet.payload)
            events = scanner.scan_packet(packet)
            # distinct strings per packet, matching process()'s accounting
            self.stats.content_matches += len({e.string_number for e in events})
            entry = scanner.flows.peek(scanner.flow_key(packet))
            assert entry is not None  # scan_packet just created/refreshed it
            candidates = self.classifier.classify(packet.header)
            self.stats.header_candidates += len(candidates)
            if not candidates:
                continue
            found = self._flow_contents_found(entry)
            for sid in candidates:
                if sid in entry.alerted:
                    continue
                rule = self.rules[sid]
                if all(content in found for content in rule.contents):
                    alerts.append(
                        Alert(
                            packet_id=packet.packet_id,
                            sid=sid,
                            msg=rule.msg,
                            action=rule.action,
                        )
                    )
                    entry.alerted.add(sid)
                    self.stats.alerts_raised += 1
        return alerts

    def _scan_flow_parallel(self, packets: Sequence[Packet]) -> List[Alert]:
        """The :meth:`scan_flow` pipeline over the parallel shard executor.

        Workers own the flow tables, so the per-flow ``matched``/``alerted``
        bookkeeping the serial path reads off :class:`FlowEntry` is rebuilt
        here from the annotated scan: per-packet events accumulate each
        flow's confirmed contents, and eviction records reset a flow exactly
        where the worker's LRU table forgot it (an evicted flow restarts
        from scratch and may alert again, mirroring the serial semantics).
        """
        service = self.parallel_service
        _, per_packet_events, evictions = service.scan_annotated(packets)
        alerts: List[Alert] = []
        found = self._parallel_found  # persists across scan_flow calls,
        alerted = self._parallel_alerted  # like FlowEntry does serially
        next_eviction = 0
        for index, packet in enumerate(packets):
            self.stats.packets_processed += 1
            self.stats.payload_bytes += len(packet.payload)
            events = per_packet_events[index]
            # distinct strings per packet, matching process()'s accounting
            self.stats.content_matches += len({e.string_number for e in events})
            # flows evicted up to this packet restart with empty state (the
            # eviction is always triggered by a *different* flow's arrival)
            while next_eviction < len(evictions) and evictions[next_eviction][0] <= index:
                _, evicted_key = evictions[next_eviction]
                next_eviction += 1
                found.pop(evicted_key, None)
                alerted.pop(evicted_key, None)
            key = StreamScanner.flow_key(packet)
            flow_found = found.setdefault(key, set())
            for event in events:
                pattern = self._number_to_pattern[event.string_number]
                if not event.lowered or pattern in self._nocase_patterns:
                    flow_found.add(pattern)
            candidates = self.classifier.classify(packet.header)
            self.stats.header_candidates += len(candidates)
            if not candidates:
                continue
            flow_alerted = alerted.setdefault(key, set())
            for sid in candidates:
                if sid in flow_alerted:
                    continue
                rule = self.rules[sid]
                if all(content in flow_found for content in rule.contents):
                    alerts.append(
                        Alert(
                            packet_id=packet.packet_id,
                            sid=sid,
                            msg=rule.msg,
                            action=rule.action,
                        )
                    )
                    flow_alerted.add(sid)
                    self.stats.alerts_raised += 1
        return alerts
