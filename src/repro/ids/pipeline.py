"""End-to-end mini intrusion detection pipeline.

Combines the two halves of a DPI rule the way the paper describes them being
used on a router line card, as a *two-stage* software IDS:

1. the *header* of every packet goes through 5-tuple classification
   (:mod:`repro.ids.classifier`);
2. the *payload* goes through the string matching accelerator
   (:mod:`repro.hardware` when simulating hardware, or the software
   :class:`repro.core.DTPAutomaton` matcher) — the line-rate **prefilter**,
   which reports where every rule content (negated ones included) occurs;
3. the **confirm** stage (:mod:`repro.ids.confirm`) evaluates each candidate
   rule's full :class:`~repro.rulesets.parser.RulePredicate` — positional
   windows, negation, pcre — against the prefilter's absolute hit positions,
   and an alert is raised only when header and predicate both hold.

Rules without negation alert at the first packet where the predicate holds;
rules with negated components are decided at flow end (:meth:`finish`) or
eviction, attributed to the flow's last seen packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..backend import CompiledProgram, get_backend
from ..core.accelerator_config import compile_ruleset
from ..fpga.devices import FPGADevice, STRATIX_III
from ..hardware.accelerator import HardwareAccelerator
from ..proto.http import HttpStream
from ..rulesets.parser import (
    ContentPattern,
    RulePredicate,
    SidAllocator,
    SnortRuleSpec,
)
from ..rulesets.ruleset import RuleSet
from ..streaming.executor import ParallelScanService
from ..streaming.flow import DEFAULT_FLOW_CAPACITY, FlowTable
from ..streaming.scanner import StreamScanner
from ..traffic.packet import Packet
from .classifier import HeaderClassifier, HeaderPattern
from .confirm import ConfirmStage, RuleEvaluator, merged_occurrences


@dataclass(frozen=True)
class IDSRule:
    """One complete IDS rule: header pattern plus a content predicate.

    ``contents`` holds the *positive raw-stream* content strings — what the
    prefilter can gate on — stored as effective patterns (lower-cased when
    the matching ``nocase`` flag is set).  ``predicate`` is the full match
    predicate (positional windows, negated contents, sticky-buffer
    contents, pcres); when omitted it is derived from ``contents``/
    ``nocase`` as the plain "every string occurs somewhere" predicate,
    which keeps the historical constructor behaviour intact.  ``contents``
    may be empty only when the predicate carries a positive sticky-buffer
    content — such a rule has nothing for the prefilter, and its candidacy
    is gated on the flow producing a normalized HTTP buffer instead.
    """

    sid: int
    header: HeaderPattern
    contents: Tuple[bytes, ...]
    msg: str = ""
    action: str = "alert"
    nocase: Tuple[bool, ...] = ()
    predicate: Optional[RulePredicate] = None

    def __post_init__(self) -> None:
        if not self.contents:
            if self.predicate is None or not any(
                not c.negated for c in self.predicate.sticky
            ):
                raise ValueError(f"rule {self.sid} has no content strings")
        if self.nocase and len(self.nocase) != len(self.contents):
            raise ValueError(f"rule {self.sid}: nocase flags do not match contents")
        if self.predicate is None:
            flags = self.nocase or (False,) * len(self.contents)
            object.__setattr__(
                self,
                "predicate",
                RulePredicate(
                    contents=tuple(
                        ContentPattern(pattern=content, nocase=flag)
                        for content, flag in zip(self.contents, flags)
                    )
                ),
            )
        else:
            positives = tuple(
                c.effective_pattern() for c in self.predicate.raw_positive
            )
            if positives != tuple(self.contents):
                raise ValueError(
                    f"rule {self.sid}: contents do not match the predicate's "
                    "positive raw-stream contents"
                )

    def content_flags(self) -> Tuple[Tuple[bytes, bool], ...]:
        flags = self.nocase or (False,) * len(self.contents)
        return tuple(zip(self.contents, flags))


@dataclass(frozen=True)
class Alert:
    """An alert raised for a packet."""

    packet_id: int
    sid: int
    msg: str
    action: str


@dataclass
class IDSStatistics:
    packets_processed: int = 0
    payload_bytes: int = 0
    header_candidates: int = 0
    content_matches: int = 0
    alerts_raised: int = 0


class IntrusionDetectionSystem:
    """A miniature Snort-style IDS driven by the paper's accelerator.

    ``backend`` selects the content matcher (any name registered in
    :mod:`repro.backend`).  The default ``"dtp"`` compiles the device-mapped
    accelerator program and is the only backend the cycle-level hardware
    model can execute; every other backend runs the same pipeline through
    its compiled program.

    ``workers`` routes :meth:`scan_flow` content matching through the
    process-parallel :class:`repro.streaming.ParallelScanService` with that
    many worker processes (``None``, the default, keeps the in-process
    scanner).  Call :meth:`close` (or :meth:`reset_flows`) to shut the
    worker pool down when done.
    """

    def __init__(
        self,
        rules: Sequence[IDSRule],
        device: FPGADevice = STRATIX_III,
        use_hardware_model: bool = False,
        backend: str = "dtp",
        workers: Optional[int] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if not rules:
            raise ValueError("at least one rule is required")
        self.rules: Dict[int, IDSRule] = {}
        for rule in rules:
            if rule.sid in self.rules:
                raise ValueError(f"duplicate sid {rule.sid}")
            self.rules[rule.sid] = rule
        self.device = device
        self.use_hardware_model = use_hardware_model
        self.stats = IDSStatistics()

        self.classifier = HeaderClassifier()
        for rule in rules:
            self.classifier.add_rule(rule.sid, rule.header)

        # Build the prefilter ruleset: unique strings across all rules'
        # predicates — negated contents included, because the confirm stage
        # decides negation windows from their *occurrence* positions.
        # Contents flagged nocase are stored lower-cased and additionally
        # searched in a lower-cased view of each payload.
        self._content_ruleset = RuleSet(name="ids-contents")
        self._string_to_rules: Dict[bytes, Set[int]] = {}
        self._nocase_patterns: Set[bytes] = set()
        for rule in rules:
            for content in rule.predicate.contents:
                if content.is_sticky:
                    continue  # tested against normalized buffers, not the stream
                pattern = content.effective_pattern()
                if content.nocase:
                    self._nocase_patterns.add(pattern)
                if not content.negated:
                    self._string_to_rules.setdefault(pattern, set()).add(rule.sid)
                if pattern not in self._content_ruleset:
                    self._content_ruleset.add_pattern(pattern)
        if len(self._content_ruleset) == 0:
            # every rule is pure-sticky: the prefilter has nothing to search
            # on the raw stream, but the scan machinery needs a compiled
            # program — seed it with the sticky patterns.  Their raw
            # occurrences are never referenced by any evaluator step, so the
            # extra prefilter work cannot change a verdict.
            for rule in rules:
                for content in rule.predicate.contents:
                    pattern = content.effective_pattern()
                    if pattern not in self._content_ruleset:
                        self._content_ruleset.add_pattern(pattern)

        self.backend = backend
        if backend == "dtp":
            self.program: CompiledProgram = compile_ruleset(self._content_ruleset, device)
        else:
            if use_hardware_model:
                raise ValueError(
                    "the cycle-level hardware model only executes the 'dtp' "
                    f"backend, not {backend!r}"
                )
            self.program = get_backend(backend).compile(self._content_ruleset.patterns)
        self._number_to_pattern = {
            index: rule.pattern for index, rule in enumerate(self._content_ruleset)
        }
        number_of = {
            rule.pattern: index for index, rule in enumerate(self._content_ruleset)
        }
        self._nocase_numbers = {number_of[p] for p in self._nocase_patterns}
        #: per-rule compiled predicates bound to the prefilter numbering
        self._evaluators: Dict[int, RuleEvaluator] = {
            rule.sid: RuleEvaluator(rule.sid, rule.predicate, number_of)
            for rule in rules
        }
        #: the confirm stage: one instance correlates both the serial and
        #: the parallel flow scan (it is fed from StreamMatch events either
        #: way), replacing the old FlowEntry/parent-mirror bookkeeping
        self._confirm = ConfirmStage(self._evaluators.values())
        self.accelerator: Optional[HardwareAccelerator] = (
            HardwareAccelerator(self.program) if use_hardware_model else None
        )
        #: content matcher used by :meth:`process` (protocol-conformant)
        self._matcher: CompiledProgram = (
            self.accelerator if self.accelerator is not None else self.program
        )
        self._flow_scanner: Optional[StreamScanner] = None
        self._flow_capacity = DEFAULT_FLOW_CAPACITY
        self.workers = workers
        self._parallel_service: Optional[ParallelScanService] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_ruleset(
        cls,
        ruleset,
        device: FPGADevice = STRATIX_III,
        use_hardware_model: bool = False,
        backend: str = "dtp",
        workers: Optional[int] = None,
    ) -> "IntrusionDetectionSystem":
        """Build an IDS with one wildcard-header rule per ruleset pattern.

        The wildcard header keeps every packet a candidate, so detection is
        decided purely by the content matcher — the construction the CLI and
        :class:`repro.api.Session` use for synthetic rulesets.
        """
        rules = [
            IDSRule(sid=rule.sid, header=HeaderPattern(), contents=(rule.pattern,))
            for rule in ruleset
        ]
        return cls(
            rules,
            device=device,
            use_hardware_model=use_hardware_model,
            backend=backend,
            workers=workers,
        )

    @classmethod
    def from_specs(
        cls,
        specs: Iterable[SnortRuleSpec],
        device: FPGADevice = STRATIX_III,
        use_hardware_model: bool = False,
        backend: str = "dtp",
        workers: Optional[int] = None,
        sid_remap: Optional[Dict[int, int]] = None,
    ) -> "IntrusionDetectionSystem":
        """Build an IDS from parsed Snort rules.

        Each spec's full predicate (positional modifiers, negated contents,
        sticky-buffer contents, pcres) is carried into the confirm stage.
        Rules without a single positive content are skipped — the prefilter
        has nothing to anchor on (parse with ``strict=True`` to reject such
        rules instead; see :attr:`repro.api.Session.skipped_rules` for the
        count).  A rule whose only positive contents target a normalized
        HTTP buffer is kept: the prefilter never sees it, and the confirm
        stage gates its candidacy on the flow parsing as HTTP.

        Sid assignment is the shared :class:`repro.rulesets.parser.SidAllocator`
        policy: the first rule claiming a sid keeps it, later claimants (and
        sid-less rules) get the lowest free sid no spec claims explicitly —
        a rules file with colliding or missing sids loads instead of tripping
        the duplicate-sid constructor check, and reassignments are recorded
        in ``sid_remap`` (when given) exactly as :func:`ruleset_from_specs`
        records them.
        """
        specs = list(specs)
        allocator = SidAllocator(specs, sid_remap)
        rules: List[IDSRule] = []
        for spec in specs:
            if not spec.positive_contents:
                continue
            positives = [c for c in spec.positive_contents if not c.is_sticky]
            sid = allocator.assign(spec.sid)
            rules.append(
                IDSRule(
                    sid=sid,
                    header=HeaderPattern(
                        protocol=spec.header.protocol,
                        src_ip=spec.header.src_ip,
                        src_port=spec.header.src_port,
                        dst_ip=spec.header.dst_ip,
                        dst_port=spec.header.dst_port,
                    ),
                    contents=tuple(c.effective_pattern() for c in positives),
                    msg=spec.msg,
                    action=spec.header.action,
                    nocase=tuple(c.nocase for c in positives),
                    predicate=spec.predicate,
                )
            )
        return cls(
            rules,
            device=device,
            use_hardware_model=use_hardware_model,
            backend=backend,
            workers=workers,
        )

    # ------------------------------------------------------------------
    def _match_positions(
        self, payload: bytes
    ) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
        """Occurrence end-offsets per string number, raw and lowered view.

        The payload is scanned as-is; when any rule uses ``nocase`` a
        lower-cased copy is scanned as well (its hits credit only the
        case-insensitive patterns at evaluation time).
        """
        matcher = self._matcher  # accelerator and program share the protocol
        raw: Dict[int, List[int]] = {}
        for end, number in matcher.match(payload):
            raw.setdefault(number, []).append(end)
        lower: Dict[int, List[int]] = {}
        if self._nocase_patterns:
            for end, number in matcher.match(payload.lower()):
                lower.setdefault(number, []).append(end)
        return raw, lower

    def process(self, packets: Sequence[Packet]) -> List[Alert]:
        """Run the full pipeline over ``packets`` and return the alerts raised.

        Stateless: every packet is its own complete "flow", so predicates —
        negation included — are decided per packet (``at_end`` semantics).
        """
        alerts: List[Alert] = []
        for packet in packets:
            self.stats.packets_processed += 1
            self.stats.payload_bytes += len(packet.payload)
            raw, lower = self._match_positions(packet.payload)
            hits = set(raw) | (set(lower) & self._nocase_numbers)
            self.stats.content_matches += len(hits)
            candidates = self.classifier.classify(packet.header)
            self.stats.header_candidates += len(candidates)
            http: Optional[HttpStream] = None
            if self._confirm.needs_http:
                # stateless: the packet is its own flow, so it gets its own
                # normalizer (mirroring the per-flow one in scan_flow)
                http = HttpStream()
                http.feed(packet.payload)
            for sid in candidates:
                evaluator = self._evaluators[sid]

                def occ(step, raw=raw, lower=lower):
                    return merged_occurrences(step, raw, lower)

                if not all(occ(step) for step in evaluator.positive_steps):
                    continue
                buffer = packet.payload if evaluator.needs_buffer else None
                if evaluator.evaluate(
                    occ, len(packet.payload), buffer, at_end=True, http=http
                ):
                    rule = self.rules[sid]
                    alerts.append(
                        Alert(
                            packet_id=packet.packet_id,
                            sid=sid,
                            msg=rule.msg,
                            action=rule.action,
                        )
                    )
                    self.stats.alerts_raised += 1
        return alerts

    # ------------------------------------------------------------------
    # stateful (streaming) scanning
    # ------------------------------------------------------------------
    @property
    def flow_scanner(self) -> StreamScanner:
        """The lazily created stateful scanner backing :meth:`scan_flow`."""
        if self._flow_scanner is None:
            self._flow_scanner = StreamScanner(
                self.program,
                capacity=self._flow_capacity,
                track_nocase=bool(self._nocase_patterns),
            )
        return self._flow_scanner

    @property
    def parallel_service(self) -> ParallelScanService:
        """The lazily created worker pool backing the parallel flow scan."""
        if self.workers is None:
            raise ValueError(
                "this IDS was built without workers=; pass workers=N to "
                "IntrusionDetectionSystem to enable the parallel flow scan"
            )
        if self._parallel_service is None:
            self._parallel_service = ParallelScanService(
                self.program,
                num_shards=self.workers,
                flow_capacity_per_shard=self._flow_capacity,
                track_nocase=bool(self._nocase_patterns),
                workers=self.workers,
            )
        return self._parallel_service

    def reset_flows(self, capacity: Optional[int] = None) -> None:
        """Drop all tracked flow state (optionally resizing the flow table)."""
        if capacity is not None:
            self._flow_capacity = capacity
        self._flow_scanner = None
        self._confirm.reset()
        self.close()

    def close(self) -> None:
        """Shut down the parallel scan workers, if any were started.

        The correlation state goes with them: a pool rebuilt later starts
        with fresh flow tables, so the confirm stage must be fresh too.
        (A serial IDS keeps its scanner and confirm state across close().)
        """
        if self._parallel_service is not None:
            self._parallel_service.close()
            self._parallel_service = None
        if self.workers is not None:
            self._confirm.reset()

    def __enter__(self) -> "IntrusionDetectionSystem":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _correlate(
        self,
        packets: Sequence[Packet],
        per_packet_events: Sequence[Sequence],
        evictions: Sequence,
    ) -> List[Alert]:
        """Fold scanned events into confirm-stage verdicts, packet by packet.

        Shared by the serial and parallel flow scans: both produce exactly
        (per-packet event lists, ``(item_index, key)`` eviction records) and
        both must alert identically.  A flow evicted while packet ``index``
        was being scanned is finalized (pending negation verdicts) and
        dropped before that packet is correlated — it restarts from scratch,
        because the scanner restarted its offsets too.
        """
        alerts: List[Alert] = []
        confirm = self._confirm
        next_eviction = 0
        for index, packet in enumerate(packets):
            self.stats.packets_processed += 1
            self.stats.payload_bytes += len(packet.payload)
            events = per_packet_events[index]
            # distinct strings per packet, matching process()'s accounting
            self.stats.content_matches += len({e.string_number for e in events})
            # the eviction is always triggered by a *different* flow's arrival
            while (
                next_eviction < len(evictions)
                and evictions[next_eviction][0] <= index
            ):
                _, evicted_key = evictions[next_eviction]
                next_eviction += 1
                for packet_id, sid in confirm.finalize_flow(evicted_key):
                    rule = self.rules[sid]
                    alerts.append(
                        Alert(
                            packet_id=packet_id,
                            sid=sid,
                            msg=rule.msg,
                            action=rule.action,
                        )
                    )
                    self.stats.alerts_raised += 1
                confirm.drop(evicted_key)
            key = StreamScanner.flow_key(packet)
            record = confirm.observe(
                key,
                packet.packet_id,
                packet.payload,
                events,
                lambda packet=packet: self.classifier.classify(packet.header),
            )
            self.stats.header_candidates += len(record.candidates)
            # no prefilter hit and no normalized HTTP buffer on this flow
            # yet -> no rule can pass its candidacy gate: keep the no-hit
            # hot path free of per-rule work
            if not record.has_hits:
                continue
            for sid in record.candidates:
                if sid in record.alerted:
                    continue
                if confirm.check(key, sid):
                    rule = self.rules[sid]
                    alerts.append(
                        Alert(
                            packet_id=packet.packet_id,
                            sid=sid,
                            msg=rule.msg,
                            action=rule.action,
                        )
                    )
                    confirm.mark_alerted(key, sid)
                    self.stats.alerts_raised += 1
        return alerts

    def scan_flow(self, packets: Sequence[Packet]) -> List[Alert]:
        """Run the pipeline statefully: packets are flow segments, in order.

        Unlike :meth:`process`, the content matcher resumes each flow's
        automaton state (keyed by the packet 5-tuple) across segments, so a
        rule string split across consecutive packets of one flow still
        completes, and a multi-content predicate may gather its occurrences
        over several segments (the events' end offsets stay flow-absolute,
        which is what positional windows are resolved against).  A rule
        without negated components alerts at most once per tracked flow, at
        the first packet where its predicate holds; rules with negation are
        decided when the flow ends — call :meth:`finish` after the last
        segment — or when its state is evicted under memory pressure.
        Evicted flows restart from scratch.

        Content matching always uses the software automaton here, even when
        the IDS was built with ``use_hardware_model=True`` (which only
        affects :meth:`process`): the cycle-level model scans whole packets
        per engine, while the per-engine flow checkpointing it would need is
        exposed (:meth:`repro.hardware.StringMatchingEngine.resume_flow`)
        but not yet driven by a flow-aware hardware scheduler.

        With ``workers`` set, the payload scanning runs on the parallel
        shard executor and alerts are correlated from its event stream —
        same alerts, same order, same statistics as the serial path (the
        flow-capacity bound then applies per worker shard rather than to
        one shared table, which only matters under eviction pressure).
        """
        if self.workers is not None:
            return self._scan_flow_parallel(packets)
        scanner = self.flow_scanner
        per_packet_events, evictions = scanner.scan_batch(
            [
                (scanner.flow_key(packet), packet.payload, packet.packet_id)
                for packet in packets
            ]
        )
        return self._correlate(packets, per_packet_events, evictions)

    def _scan_flow_parallel(self, packets: Sequence[Packet]) -> List[Alert]:
        """The :meth:`scan_flow` pipeline over the parallel shard executor.

        Workers own the flow tables, but the confirm stage is parent-side
        either way: per-packet events (flow-absolute offsets) feed the same
        :class:`ConfirmStage` the serial path uses, and eviction records
        finalize-and-drop a flow exactly where the worker's LRU table forgot
        it (an evicted flow restarts from scratch and may alert again,
        mirroring the serial semantics).
        """
        service = self.parallel_service
        _, per_packet_events, evictions = service.scan_annotated(packets)
        return self._correlate(packets, per_packet_events, evictions)

    def finish(self) -> List[Alert]:
        """Decide the pending end-of-flow verdicts of every tracked flow.

        Rules with negated components cannot alert mid-stream — a later
        byte could still land in a negation window — so after the last
        segment of the workload, call :meth:`finish` to evaluate them with
        the flows closed.  Alerts are attributed to each flow's last seen
        packet, flows are walked in first-seen order, and the call is
        idempotent (decided rules are marked, state is kept for inspection).
        Rules without negation never alert here: their predicates are
        monotone, so a prefix that failed keeps failing on the same bytes.
        """
        alerts: List[Alert] = []
        for key in self._confirm.flow_keys():
            for packet_id, sid in self._confirm.finalize_flow(key):
                rule = self.rules[sid]
                alerts.append(
                    Alert(
                        packet_id=packet_id,
                        sid=sid,
                        msg=rule.msg,
                        action=rule.action,
                    )
                )
                self.stats.alerts_raised += 1
        return alerts

    # ------------------------------------------------------------------
    # checkpoint / restore (serial flow scan)
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict:
        """Serialise the serial flow scan's state: scanner flows + confirm.

        Everything the confirm stage needs across a restart — absolute hit
        positions per flow, pcre byte buffers, pending negation candidacy —
        rides next to the scanner's resumable automaton states, so a
        restored IDS continues mid-flow predicates exactly where it
        stopped.  Parallel pools checkpoint through their service instead.
        """
        if self.workers is not None:
            raise ValueError(
                "checkpoint() covers the serial flow scan; a parallel IDS "
                "checkpoints its scan service (parallel_service.checkpoint())"
            )
        return {
            "flows": self.flow_scanner.flows.checkpoint(),
            "confirm": self._confirm.checkpoint(),
        }

    def restore(self, data: Dict) -> None:
        """Restore state saved by :meth:`checkpoint`."""
        if self.workers is not None:
            raise ValueError(
                "restore() covers the serial flow scan; a parallel IDS "
                "restores through its scan service (parallel_service.restore())"
            )
        scanner = self.flow_scanner
        scanner.flows = FlowTable.restore(data["flows"])
        self._confirm.restore(data["confirm"])
