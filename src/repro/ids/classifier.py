"""5-tuple header classification (the first half of a Snort rule).

Section I of the paper: a DPI rule has a header part (5-tuple packet
classification) and a content part (the fixed strings the accelerator
searches for).  This module provides the header side so the example IDS
pipeline can demonstrate the complete rule semantics, not just string
matching.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..traffic.packet import FiveTuple


@dataclass(frozen=True)
class HeaderPattern:
    """A header match pattern with Snort-style wildcards.

    * IP fields accept ``"any"``, a single address, or CIDR notation
      (``"192.168.0.0/16"``); Snort's ``$HOME_NET`` style variables should be
      resolved before constructing the pattern.
    * Port fields accept ``"any"``, a single port (``"80"``), or an inclusive
      range (``"1024:65535"``).
    * ``protocol`` accepts ``"ip"`` (any), ``"tcp"``, ``"udp"`` or ``"icmp"``.
    """

    protocol: str = "ip"
    src_ip: str = "any"
    src_port: str = "any"
    dst_ip: str = "any"
    dst_port: str = "any"

    def matches(self, header: FiveTuple) -> bool:
        if self.protocol not in ("ip", "any") and header.protocol != self.protocol:
            return False
        return (
            _ip_matches(self.src_ip, header.src_ip)
            and _ip_matches(self.dst_ip, header.dst_ip)
            and _port_matches(self.src_port, header.src_port)
            and _port_matches(self.dst_port, header.dst_port)
        )


def _ip_matches(pattern: str, address: str) -> bool:
    pattern = pattern.strip()
    if pattern in ("any", "*", "0.0.0.0/0", "$EXTERNAL_NET", "$HOME_NET"):
        return True
    negate = pattern.startswith("!")
    if negate:
        pattern = pattern[1:]
    try:
        network = ipaddress.ip_network(pattern, strict=False)
        result = ipaddress.ip_address(address) in network
    except ValueError:
        result = pattern == address
    return result != negate


def _port_matches(pattern: str, port: int) -> bool:
    pattern = pattern.strip()
    if pattern in ("any", "*"):
        return True
    negate = pattern.startswith("!")
    if negate:
        pattern = pattern[1:]
    if ":" in pattern:
        low_text, _, high_text = pattern.partition(":")
        low = int(low_text) if low_text else 0
        high = int(high_text) if high_text else 65535
        result = low <= port <= high
    else:
        result = port == int(pattern)
    return result != negate


class HeaderClassifier:
    """Linear-scan multi-rule header classifier.

    A production router would use a decision-tree or TCAM classifier; the DPI
    paper's focus is the payload scan, so a simple linear matcher keeps the
    example pipeline easy to follow while exposing the same interface.
    """

    def __init__(self) -> None:
        self._patterns: List[Tuple[int, HeaderPattern]] = []

    def add_rule(self, rule_id: int, pattern: HeaderPattern) -> None:
        self._patterns.append((rule_id, pattern))

    def __len__(self) -> int:
        return len(self._patterns)

    def classify(self, header: Optional[FiveTuple]) -> List[int]:
        """Rule ids whose header pattern matches ``header``.

        A packet without a header (payload-only testing) matches every rule,
        which mirrors running Snort with header checks disabled.
        """
        if header is None:
            return [rule_id for rule_id, _ in self._patterns]
        return [rule_id for rule_id, pattern in self._patterns if pattern.matches(header)]
