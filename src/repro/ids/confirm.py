"""Second-stage rule confirmation: predicates over prefilter hit positions.

The paper's engines are a line-rate *prefilter*: they report where any rule
content occurs in a flow's byte stream (``StreamMatch.end_offset`` is
already absolute in the flow, even for matches straddling segment
boundaries).  Real Snort rules say more than "these strings occur" — where
a content must sit (``offset``/``depth``), how far from the previous one
(``distance``/``within``), contents that must *not* appear
(``content:!"..."``) and a ``pcre`` that must confirm the hit.  This module
evaluates those predicates using only what the prefilter produces: sorted
absolute end offsets per pattern, plus (only when the ruleset carries pcre
options) the flow's bytes, buffered per candidate flow.

Window semantics (shared with the ruleset linter and the naive reference
evaluator in the test suite):

* an occurrence of a content of length ``L`` ending at ``end`` starts at
  ``start = end - L`` (``end`` is one past the final byte, the prefilter's
  convention);
* absolute anchoring — ``start >= offset`` (default 0) and, with ``depth``,
  ``end <= offset + depth``;
* relative anchoring (``distance``/``within``) — against ``doe``, the end
  of the previous positive content's chosen occurrence:
  ``start >= doe + distance`` (default 0) and, with ``within``,
  ``end <= doe + distance + within``;
* a **negated** content must have *no* occurrence inside its window and
  never advances ``doe``.  Its verdict needs the window fully scanned: a
  bounded window (``depth``/``within``) decides once the stream passed its
  end, an unbounded one only at flow end (or eviction);
* content chains **backtrack**: the chosen occurrence of one content is the
  anchor of the next, and a greedy earliest-match choice is wrong (an early
  anchor can push the next content's ``within`` bound out of reach), so
  every satisfying occurrence is tried, memoised on ``(step, doe)``;
* ``pcre`` options run :mod:`re` (compiled once, cached per pattern) over
  the flow's buffered bytes only after the content chain is satisfied — the
  stage that keeps regexes off the no-hit hot path.

A rule without negation is *monotone* — once its predicate holds on a
prefix it holds on the flow — so the pipeline alerts at the first packet
where confirmation succeeds.  Rules with negation can only be confirmed
once no more bytes can arrive: :meth:`ConfirmStage.finalize_flow` decides
them at flow end or eviction, attributing the alert to the flow's last
seen packet.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..proto.http import HttpStream
from ..rulesets.parser import RulePredicate
from ..streaming.flow import FlowKey


class _Step:
    """One content of a compiled predicate, bound to its prefilter number.

    Sticky-buffer contents (``buffer != "raw"``) have no prefilter number —
    the prefilter never searches normalized buffers — and instead carry
    their effective pattern bytes for the substring test."""

    __slots__ = (
        "number", "length", "nocase", "negated",
        "offset", "depth", "distance", "within", "relative",
        "buffer", "pattern",
    )

    def __init__(self, content, number: Optional[int]):
        self.number = number
        self.length = len(content.pattern)
        self.nocase = content.nocase
        self.negated = content.negated
        self.offset = content.offset
        self.depth = content.depth
        self.distance = content.distance
        self.within = content.within
        self.relative = content.is_relative
        self.buffer = content.buffer
        self.pattern = content.effective_pattern()

    def window(self, doe: int) -> Tuple[int, Optional[int]]:
        """``(min_start, max_end)`` for this step anchored at ``doe``
        (``max_end`` is ``None`` when the window is unbounded)."""
        if self.relative:
            lo = doe + (self.distance or 0)
            hi = lo + self.within if self.within is not None else None
        else:
            lo = self.offset or 0
            hi = lo + self.depth if self.depth is not None else None
        return lo, hi


#: occurrence source handed to :meth:`RuleEvaluator.evaluate`: step -> sorted
#: absolute end offsets of that step's pattern in the flow so far.
OccurrenceFn = Callable[[_Step], Sequence[int]]


def merged_occurrences(
    step: _Step,
    positions: Dict[int, List[int]],
    lower_positions: Dict[int, List[int]],
) -> Sequence[int]:
    """Sorted end offsets of ``step``'s pattern, honouring its case mode.

    Case-sensitive steps see only the raw-view hits; ``nocase`` steps merge
    in the lower-cased-view hits (deduplicated — a hit present in both views
    is one occurrence).  Shared between the streaming :class:`ConfirmStage`
    and the stateless per-packet path in the pipeline.
    """
    raw = positions.get(step.number, ())
    if not step.nocase:
        return raw
    lower = lower_positions.get(step.number, ())
    if not lower:
        return raw
    if not raw:
        return lower
    return sorted(set(raw).union(lower))


class RuleEvaluator:
    """One rule's :class:`RulePredicate` compiled against a prefilter.

    ``number_of`` maps effective pattern bytes to the prefilter's string
    numbers; pcres are compiled (and cached) at construction, so evaluation
    never pays a regex compile.
    """

    def __init__(self, sid: int, predicate: RulePredicate, number_of: Dict[bytes, int]):
        self.sid = sid
        #: the raw-stream content chain (windows resolve against it)
        self.steps: List[_Step] = []
        #: sticky-buffer contents: independent substring tests against the
        #: flow's normalized HTTP buffers (grammar forbids windows on them
        #: and relative anchoring across them, so chain order is irrelevant)
        self.sticky_steps: List[_Step] = []
        for content in predicate.contents:
            if content.is_sticky:
                self.sticky_steps.append(_Step(content, None))
            else:
                self.steps.append(
                    _Step(content, number_of[content.effective_pattern()])
                )
        self.pcres = [(p.compile(), p.negated) for p in predicate.pcres]
        self.plain = predicate.is_plain
        #: verdict can flip at flow end: some component is negated
        self.requires_end = predicate.requires_end
        self.needs_buffer = bool(self.pcres)
        self.needs_http = bool(self.sticky_steps)
        #: the raw positive steps: the cheap candidacy gate (sticky steps
        #: have no prefilter occurrences to gate on)
        self.positive_steps = [s for s in self.steps if not s.negated]

    def _sticky_ok(self, http: Optional[HttpStream], at_end: bool) -> bool:
        """Evaluate the sticky-buffer contents against the flow's normalized
        buffers (empty when the flow is not HTTP or no normalizer ran).

        Positive sticky contents are monotone — the buffers only grow — so
        a hit stands; negated ones are only provable once the flow cannot
        grow, exactly like negated raw contents."""
        for step in self.sticky_steps:
            data = b"" if http is None else http.buffer(step.buffer)
            if step.nocase:
                data = data.lower()
            found = step.pattern in data
            if step.negated:
                if found or not at_end:
                    return False
            elif not found:
                return False
        return True

    def evaluate(
        self,
        occurrences: OccurrenceFn,
        length: int,
        buffer: Optional[bytes],
        at_end: bool,
        http: Optional[HttpStream] = None,
    ) -> bool:
        """Does the flow (``length`` bytes scanned so far) satisfy the rule?

        Mid-stream (``at_end=False``) the answer is conservative: negated
        components whose window is still open and positive pcres that have
        not matched yet report ``False`` — the caller simply re-evaluates
        on later packets, and :meth:`ConfirmStage.finalize_flow` asks once
        more with ``at_end=True``.
        """
        if self.sticky_steps and not self._sticky_ok(http, at_end):
            return False
        if self.plain:
            return all(occurrences(step) for step in self.steps)
        memo: Dict[Tuple[int, int], bool] = {}

        def chain(index: int, doe: int) -> bool:
            if index == len(self.steps):
                return self._pcres_ok(buffer, at_end)
            key = (index, doe)
            cached = memo.get(key)
            if cached is not None:
                return cached
            step = self.steps[index]
            lo, hi = step.window(doe)
            ends = occurrences(step)
            result = False
            if step.negated:
                occupied = any(
                    end - step.length >= lo and (hi is None or end <= hi)
                    for end in ends
                )
                decided = at_end or (hi is not None and length >= hi)
                if not occupied and decided:
                    result = chain(index + 1, doe)
            else:
                for end in ends:
                    if hi is not None and end > hi:
                        break  # ends are sorted: nothing later can fit
                    if end - step.length >= lo and chain(index + 1, end):
                        result = True
                        break
            memo[key] = result
            return result

        return chain(0, 0)

    def _pcres_ok(self, buffer: Optional[bytes], at_end: bool) -> bool:
        if not self.pcres:
            return True
        if buffer is None:
            raise ValueError(
                f"rule {self.sid} has pcre options but no flow buffer was kept"
            )
        for regex, negated in self.pcres:
            found = regex.search(buffer) is not None
            if negated:
                # absence is only provable once the flow cannot grow
                if found or not at_end:
                    return False
            elif not found:
                return False
        return True


class _FlowRecord:
    """Per-flow confirm state: occurrence positions, optional byte buffer,
    header-candidate sids, and which rules already alerted."""

    __slots__ = (
        "positions", "lower_positions", "buffer", "length",
        "alerted", "candidates", "last_packet_id", "http",
    )

    def __init__(self):
        self.positions: Dict[int, List[int]] = {}
        self.lower_positions: Dict[int, List[int]] = {}
        self.buffer: Optional[bytearray] = None
        self.length = 0
        self.alerted: Set[int] = set()
        self.candidates: Optional[Tuple[int, ...]] = None
        self.last_packet_id = -1
        #: the flow's HTTP normalizer (only when some rule is sticky)
        self.http: Optional[HttpStream] = None

    @property
    def has_hits(self) -> bool:
        """Anything for a rule to match on yet: prefilter occurrences, or a
        normalized HTTP buffer a sticky content could hit."""
        if self.positions or self.lower_positions:
            return True
        return self.http is not None and self.http.is_http

    def as_dict(self) -> Dict:
        return {
            "positions": {str(k): v for k, v in self.positions.items()},
            "lower_positions": {str(k): v for k, v in self.lower_positions.items()},
            "buffer": None if self.buffer is None else bytes(self.buffer).hex(),
            "length": self.length,
            "alerted": sorted(self.alerted),
            "candidates": None if self.candidates is None else list(self.candidates),
            "last_packet_id": self.last_packet_id,
            "http": None if self.http is None else self.http.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "_FlowRecord":
        record = cls()
        record.positions = {int(k): list(v) for k, v in data["positions"].items()}
        record.lower_positions = {
            int(k): list(v) for k, v in data["lower_positions"].items()
        }
        buffer = data.get("buffer")
        record.buffer = None if buffer is None else bytearray(bytes.fromhex(buffer))
        record.length = int(data["length"])
        record.alerted = set(data["alerted"])
        candidates = data.get("candidates")
        record.candidates = None if candidates is None else tuple(candidates)
        record.last_packet_id = int(data["last_packet_id"])
        http = data.get("http")
        record.http = None if http is None else HttpStream.from_dict(http)
        return record


class ConfirmStage:
    """Correlates prefilter events into per-rule verdicts, flow by flow.

    One instance backs both the serial and the process-parallel IDS paths
    (it is fed from :class:`StreamMatch` events either way), replacing the
    two separate ``FlowEntry`` / parent-side-mirror bookkeepings.  Flow
    byte buffers are kept only when some rule actually carries a pcre.
    """

    def __init__(self, evaluators: Iterable[RuleEvaluator]):
        self.evaluators: Dict[int, RuleEvaluator] = {e.sid: e for e in evaluators}
        self.needs_buffer = any(e.needs_buffer for e in self.evaluators.values())
        #: some rule targets a normalized HTTP buffer: every flow carries an
        #: incremental :class:`HttpStream` alongside its hit positions
        self.needs_http = any(e.needs_http for e in self.evaluators.values())
        #: insertion-ordered: finalize walks flows in first-seen order
        self._flows: Dict[FlowKey, _FlowRecord] = {}

    # ------------------------------------------------------------------
    def observe(
        self,
        key: FlowKey,
        packet_id: int,
        payload: bytes,
        events: Sequence,
        candidates_fn: Callable[[], Sequence[int]],
    ) -> _FlowRecord:
        """Fold one scanned packet's prefilter events into flow state.

        ``events`` carry flow-absolute end offsets (the scanner's
        resumability contract), so positions accumulate sorted per view
        without any per-segment rebasing.  ``candidates_fn`` supplies the
        packet's header-candidate sids; it is only called the first time a
        flow is seen (the 5-tuple — and therefore the candidate set — is
        constant across a flow's segments).  Returns the flow's record so
        the caller can drive its verdict loop without re-deriving state.
        """
        record = self._flows.get(key)
        if record is None:
            record = self._flows[key] = _FlowRecord()
            if self.needs_buffer:
                record.buffer = bytearray()
            if self.needs_http:
                record.http = HttpStream()
        record.last_packet_id = packet_id
        record.length += len(payload)
        if record.buffer is not None:
            record.buffer += payload
        if record.http is not None:
            record.http.feed(payload)
        if record.candidates is None:
            record.candidates = tuple(candidates_fn())
        for event in events:
            target = record.lower_positions if event.lowered else record.positions
            target.setdefault(event.string_number, []).append(event.end_offset)
        return record

    def flow_keys(self) -> List[FlowKey]:
        """Tracked flows in first-seen order."""
        return list(self._flows)

    # ------------------------------------------------------------------
    def is_alerted(self, key: FlowKey, sid: int) -> bool:
        record = self._flows.get(key)
        return record is not None and sid in record.alerted

    def mark_alerted(self, key: FlowKey, sid: int) -> None:
        self._flows[key].alerted.add(sid)

    def _occurrences(self, record: _FlowRecord) -> OccurrenceFn:
        def occ(step: _Step) -> Sequence[int]:
            return merged_occurrences(step, record.positions, record.lower_positions)

        return occ

    def check(self, key: FlowKey, sid: int, at_end: bool = False) -> bool:
        """Evaluate rule ``sid`` against flow ``key``'s accumulated state."""
        record = self._flows.get(key)
        if record is None:
            return False
        evaluator = self.evaluators[sid]
        occ = self._occurrences(record)
        # cheap candidacy gate: every positive content must occur somewhere
        # before the positional/pcre machinery is worth running
        if not all(occ(step) for step in evaluator.positive_steps):
            return False
        buffer = (
            bytes(record.buffer)
            if evaluator.needs_buffer and record.buffer is not None
            else None
        )
        return evaluator.evaluate(occ, record.length, buffer, at_end, record.http)

    def finalize_flow(self, key: FlowKey) -> List[Tuple[int, int]]:
        """Decide end-of-flow rules (negation) for one flow.

        Returns ``(packet_id, sid)`` pairs — the alert is attributed to the
        flow's last seen packet, the point where "no more bytes" became
        true.  Safe to call repeatedly: decided rules are marked alerted.
        """
        record = self._flows.get(key)
        if record is None:
            return []
        out: List[Tuple[int, int]] = []
        for sid in record.candidates or ():
            evaluator = self.evaluators.get(sid)
            if evaluator is None or not evaluator.requires_end:
                continue
            if sid in record.alerted:
                continue
            if self.check(key, sid, at_end=True):
                record.alerted.add(sid)
                out.append((record.last_packet_id, sid))
        return out

    def drop(self, key: FlowKey) -> None:
        """Forget a flow (after eviction: the scanner restarts it at offset
        0, so stale absolute positions must not survive)."""
        self._flows.pop(key, None)

    def reset(self) -> None:
        self._flows.clear()

    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict:
        """JSON-serialisable snapshot of every tracked flow's confirm state."""
        return {
            "flows": [
                {"key": list(key.as_tuple()), **record.as_dict()}
                for key, record in self._flows.items()
            ]
        }

    def restore(self, data: Dict) -> None:
        self._flows = {}
        for entry in data["flows"]:
            key = FlowKey.coerced(*entry["key"])
            self._flows[key] = _FlowRecord.from_dict(entry)


__all__ = ["ConfirmStage", "RuleEvaluator", "merged_occurrences"]
