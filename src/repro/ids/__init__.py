"""Mini intrusion-detection pipeline: header classification + content matching."""

from .classifier import HeaderClassifier, HeaderPattern
from .pipeline import Alert, IDSRule, IDSStatistics, IntrusionDetectionSystem

__all__ = [
    "HeaderClassifier",
    "HeaderPattern",
    "Alert",
    "IDSRule",
    "IDSStatistics",
    "IntrusionDetectionSystem",
]
