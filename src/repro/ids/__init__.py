"""Mini intrusion-detection pipeline: header classification + content matching."""

from .classifier import HeaderClassifier, HeaderPattern
from .confirm import ConfirmStage, RuleEvaluator
from .pipeline import Alert, IDSRule, IDSStatistics, IntrusionDetectionSystem

__all__ = [
    "HeaderClassifier",
    "HeaderPattern",
    "ConfirmStage",
    "RuleEvaluator",
    "Alert",
    "IDSRule",
    "IDSStatistics",
    "IntrusionDetectionSystem",
]
