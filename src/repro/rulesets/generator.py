"""Synthetic Snort-like ruleset generation.

The original Snort snapshot used by the paper (6,275 unique content strings)
is not redistributable, so this module synthesises rulesets that preserve the
properties the paper's evaluation actually depends on:

* the string *length distribution* of Figure 6 (peak at 4-13 bytes, 50+ tail);
* wide *content diversity* — Section III.B's observation that most transition
  pointers target only a few states near the start state relies on strings
  rarely sharing long prefixes, and the hardware relies on no state needing
  more than 13 stored pointers after compression (Section IV.A).  The
  generator enforces the latter structurally through a branching cap on the
  shared-prefix trie (``max_branching``), which is the property the paper's
  Snort strings exhibited empirically;
* a realistic mix of ASCII protocol keywords, URI fragments and raw binary
  bytes (shellcode-like content), with mostly printable starting characters —
  this drives the number of unique starting characters ("d1") in Table II.

Generation is fully deterministic for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .distribution import FIGURE6_DISTRIBUTION, LengthDistribution
from .ruleset import PatternRule, RuleSet

# Protocol-flavoured tokens observed in typical IDS content rules.  They are
# building blocks inserted *inside* patterns; pattern starts are drawn from a
# separate, deliberately smaller starter set so prefix sharing stays shallow.
_ASCII_TOKENS: Sequence[bytes] = (
    b"GET /", b"POST /", b"HEAD /", b"HTTP/1.1", b"Host: ", b"User-Agent:",
    b"cgi-bin", b"admin", b"passwd", b"login", b"shell", b"cmd.exe",
    b"root.exe", b"default.ida", b"../..", b"%20", b"%2e%2e", b"select ",
    b"union ", b"insert ", b"drop table", b"script>", b"<iframe", b"eval(",
    b"document.cookie", b".php?", b".asp?", b"wp-admin", b"etc/passwd",
    b"bin/sh", b"powershell", b"base64", b"xp_cmdshell", b"CREATE_PROC",
    b"USER anonymous", b"PASS ", b"RETR ", b"SITE EXEC", b"EXPN root",
    b"HELO ", b"MAIL FROM", b"RCPT TO", b"kernel32", b"LoadLibrary",
    b"GetProcAddress", b"WSASocket", b"&#x", b"SMB", b"\\PIPE\\",
    b"IPC$", b"ADMIN$", b"NTLMSSP", b"robots.txt", b"boot.ini", b"win.ini",
)

_BINARY_MOTIFS: Sequence[bytes] = (
    b"\x90\x90\x90\x90",      # NOP sled fragment
    b"\xcc\xcc",              # int3 padding
    b"\xff\xff\xff\xff",
    b"\x01\x00\x00\x00",
    b"\xeb\xfe",              # jmp $
    b"\x31\xc0\x50\x68",      # xor eax,eax; push; push
    b"\xde\xad\xbe\xef",
    b"\x41\x41\x41\x41",      # AAAA overflow filler
    b"\x0d\x0a\x0d\x0a",      # CRLFCRLF
    b"MZ\x90\x00",
    b"PE\x00\x00",
)

_PRINTABLE_LOW = 0x20
_PRINTABLE_HIGH = 0x7F


@dataclass(frozen=True)
class ContentModelConfig:
    """Knobs controlling the byte content of generated patterns."""

    #: probability that a pattern is ASCII-flavoured / binary-flavoured / mixed
    ascii_probability: float = 0.62
    binary_probability: float = 0.23
    mixed_probability: float = 0.15
    #: probability that a pattern *starts* with a protocol token / binary motif
    #: (kept low: the paper's Snort strings share almost no prefixes — the
    #: 6,275-string set has roughly as many automaton states as characters)
    token_start_probability: float = 0.08
    motif_start_probability: float = 0.05
    #: probability that a non-starting element is a token (ASCII style)
    token_probability: float = 0.45

    def __post_init__(self) -> None:
        total = self.ascii_probability + self.binary_probability + self.mixed_probability
        if abs(total - 1.0) > 1e-9:
            raise ValueError("content style probabilities must sum to 1")
        for name in ("token_start_probability", "motif_start_probability", "token_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")


class ContentModel:
    """Generates pattern bytes of a requested length."""

    def __init__(self, rng: random.Random, config: Optional[ContentModelConfig] = None):
        self._rng = rng
        self._config = config or ContentModelConfig()
        # Starting characters are weighted by how often they occur *inside*
        # rule content (token bytes dominate, the rest of the printable range
        # is rare).  Two consequences match the paper's Snort measurements:
        # small rulesets expose only a few dozen distinct starting bytes
        # (Table II "d1": 68 starts for 634 strings, 110 for 6,275), and the
        # depth-1/2 states that are popular transition targets are also the
        # ones with many children, so the four depth-2 defaults per character
        # absorb nearly all depth-2 pointers and no state needs more than the
        # 13 pointers the hardware supports.
        frequency: Dict[int, int] = {}
        for token in _ASCII_TOKENS:
            for byte in token:
                frequency[byte] = frequency.get(byte, 0) + 1
        self._start_chars = list(range(_PRINTABLE_LOW, _PRINTABLE_HIGH))
        self._start_weights = [
            (frequency.get(char, 0) + 0.12) ** 1.5 for char in self._start_chars
        ]
        self._start_total = sum(self._start_weights)

    #: Patterns at or below this length avoid multi-byte tokens/motifs so that
    #: short signatures are not accidental substrings of longer ones (Snort's
    #: short content strings are deliberately distinctive byte sequences).
    SHORT_PATTERN_LENGTH = 8

    def generate(self, length: int) -> bytes:
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        style = self._pick_style()
        if length <= self.SHORT_PATTERN_LENGTH:
            return self._short_pattern(length, style)
        out = bytearray(self._start_bytes(style))
        while len(out) < length:
            out += self._next_element(style)
        return bytes(out[:length])

    def _short_pattern(self, length: int, style: str) -> bytes:
        out = bytearray([self._weighted_start_char()])
        while len(out) < length:
            if style == "binary" and self._rng.random() < 0.5:
                out.append(self._rng.randrange(0, 256))
            else:
                out.append(self._rng.randrange(_PRINTABLE_LOW, _PRINTABLE_HIGH))
        return bytes(out)

    # ------------------------------------------------------------------
    def _pick_style(self) -> str:
        cfg = self._config
        roll = self._rng.random()
        if roll < cfg.ascii_probability:
            return "ascii"
        if roll < cfg.ascii_probability + cfg.binary_probability:
            return "binary"
        return "mixed"

    def _start_bytes(self, style: str) -> bytes:
        """First element of a pattern; biased towards printable characters."""
        cfg = self._rng.random()
        config = self._config
        if cfg < config.token_start_probability:
            return self._rng.choice(_ASCII_TOKENS)
        if cfg < config.token_start_probability + config.motif_start_probability and style != "ascii":
            return self._rng.choice(_BINARY_MOTIFS)
        return bytes([self._weighted_start_char()])

    def _weighted_start_char(self) -> int:
        pick = self._rng.random() * self._start_total
        running = 0.0
        for char, weight in zip(self._start_chars, self._start_weights):
            running += weight
            if pick <= running:
                return char
        return self._start_chars[-1]

    def _next_element(self, style: str) -> bytes:
        roll = self._rng.random()
        if style == "ascii":
            if roll < self._config.token_probability:
                return self._rng.choice(_ASCII_TOKENS)
            return bytes([self._rng.randrange(_PRINTABLE_LOW, _PRINTABLE_HIGH)])
        if style == "binary":
            if roll < 0.4:
                return self._rng.choice(_BINARY_MOTIFS)
            return bytes([self._rng.randrange(0, 256)])
        # mixed: alternate flavours element by element
        if roll < 0.4:
            return bytes([self._rng.randrange(_PRINTABLE_LOW, _PRINTABLE_HIGH)])
        if roll < 0.7:
            return self._rng.choice(_ASCII_TOKENS)
        if roll < 0.85:
            return self._rng.choice(_BINARY_MOTIFS)
        return bytes([self._rng.randrange(0, 256)])


class _BranchingTracker:
    """Tracks prefix sharing so no trie node branches out too widely.

    The paper's hardware stores at most 13 transition pointers per state and
    the authors report that their Snort strings never exceeded it after
    compression (Section IV.A).  In the compressed automaton the pointer count
    of a state is dominated by (a) the children of the depth-1 state matching
    its final character that did not win one of the four depth-2 default
    slots, (b) the children of the depth-2 state matching its final two
    characters that did not win the single depth-3 default slot and (c) the
    children of any deeper state matching a suffix of its string, which are
    always stored explicitly.  Bounding the fan-out of every prefix therefore
    bounds the per-state pointer count; depth-1 prefixes get a slightly
    looser cap because the 256-entry depth-1 default table absorbs them.
    """

    def __init__(self, depth1_cap: int, depth2_cap: int, deep_cap: int):
        if min(depth1_cap, depth2_cap, deep_cap) < 2:
            raise ValueError(
                f"branching caps must be at least 2, got "
                f"{min(depth1_cap, depth2_cap, deep_cap)}"
            )
        self.depth1_cap = depth1_cap
        self.depth2_cap = depth2_cap
        self.deep_cap = deep_cap
        self._children: Dict[bytes, set] = {}

    def _cap_for(self, depth: int) -> int:
        if depth == 1:
            return self.depth1_cap
        if depth == 2:
            return self.depth2_cap
        return self.deep_cap

    def admits(self, pattern: bytes) -> bool:
        for depth in range(1, len(pattern)):
            prefix = bytes(pattern[:depth])
            children = self._children.get(prefix)
            if children is None:
                # No deeper prefix of the candidate can exist either.
                return True
            if pattern[depth] in children:
                continue
            if len(children) >= self._cap_for(depth):
                return False
        return True

    def add(self, pattern: bytes) -> None:
        for depth in range(1, len(pattern)):
            prefix = bytes(pattern[:depth])
            children = self._children.get(prefix)
            if children is None:
                self._children[prefix] = {pattern[depth]}
                # Deeper prefixes of this pattern are new as well; record the
                # chain so future candidates see it, then stop scanning.
                for deeper in range(depth + 1, len(pattern)):
                    self._children[bytes(pattern[:deeper])] = {pattern[deeper]}
                return
            children.add(pattern[depth])


def generate_snort_like_ruleset(
    num_strings: int,
    seed: int = 2010,
    distribution: Optional[LengthDistribution] = None,
    content_config: Optional[ContentModelConfig] = None,
    name: Optional[str] = None,
    depth1_branching_cap: int = 9,
    depth2_branching_cap: int = 5,
    deep_branching_cap: int = 6,
    forbid_substrings: bool = True,
) -> RuleSet:
    """Generate a synthetic ruleset of ``num_strings`` unique patterns.

    Lengths follow ``distribution`` (Figure 6 shape by default) using a
    deterministic largest-remainder allocation, so two rulesets of different
    sizes have the *same* length distribution — mirroring how the paper
    produced its reduced rulesets.  The branching caps bound the fan-out of
    1-byte, 2-byte and deeper prefixes, which keeps every compressed state
    within the 13-pointer hardware limit (see :class:`_BranchingTracker`).

    When ``forbid_substrings`` is set (the default) no pattern is a substring
    of another pattern.  Snort content strings are hand-picked "unusual"
    payload fragments, so containment between distinct rules is rare; the
    constraint also keeps the number of matching states equal to the number
    of rules, which is what the paper's 2,048-word match memory per block is
    sized for.
    """
    if num_strings <= 0:
        raise ValueError(f"num_strings must be positive, got {num_strings}")
    distribution = distribution or FIGURE6_DISTRIBUTION
    rng = random.Random(seed)
    content = ContentModel(rng, content_config)
    counts = distribution.expected_counts(num_strings)
    tracker = _BranchingTracker(
        depth1_cap=depth1_branching_cap,
        depth2_cap=depth2_branching_cap,
        deep_cap=deep_branching_cap,
    )

    ruleset = RuleSet(name=name or f"synthetic-snort-{num_strings}")
    seen = set()
    # Containment index: 4-byte prefix of every accepted pattern -> patterns.
    # Used to reject a candidate that contains an already accepted pattern.
    accepted_by_prefix: Dict[bytes, List[bytes]] = {}
    min_accepted_length = min(counts) if counts else 4
    prefix_key = max(1, min(4, min_accepted_length))

    def contains_accepted(candidate: bytes) -> bool:
        if len(candidate) < prefix_key:
            return False
        for offset in range(len(candidate) - prefix_key + 1):
            for accepted in accepted_by_prefix.get(candidate[offset:offset + prefix_key], ()):
                if candidate.find(accepted, offset) == offset and len(accepted) < len(candidate):
                    return True
        return False

    sid = 1
    # Generate shortest first: short strings must claim children of shallow
    # prefixes before longer strings saturate the branching caps, and a
    # shorter-first order means a candidate only needs to be checked for
    # *containing* an accepted pattern (never for being contained by one).
    for length in sorted(counts):
        want = counts[length]
        produced = 0
        attempts = 0
        while produced < want:
            attempts += 1
            if attempts > want * 1000 + 5000:
                raise RuntimeError(
                    f"unable to generate {want} unique patterns of length {length}; "
                    f"relax the branching caps (currently {depth1_branching_cap}/"
                    f"{depth2_branching_cap}/{deep_branching_cap})"
                )
            pattern = content.generate(length)
            if pattern in seen or not tracker.admits(pattern):
                continue
            if forbid_substrings and contains_accepted(pattern):
                continue
            seen.add(pattern)
            tracker.add(pattern)
            accepted_by_prefix.setdefault(pattern[:prefix_key], []).append(pattern)
            ruleset.add(
                PatternRule(pattern=pattern, sid=sid, msg=f"synthetic rule len={length}")
            )
            sid += 1
            produced += 1
    return ruleset


def generate_paper_rulesets(
    sizes: Sequence[int] = (500, 634, 1204, 1603, 2588, 6275),
    seed: int = 2010,
) -> Dict[int, RuleSet]:
    """Generate the family of ruleset sizes evaluated in the paper.

    The largest ruleset is generated first and the smaller ones are extracted
    from it with the distribution-preserving reducer, exactly as described in
    Section V.A ("randomly extracting strings while keeping the same character
    distribution").
    """
    from .reducer import reduce_ruleset  # local import to avoid a cycle

    sizes = sorted(set(sizes))
    largest = sizes[-1]
    full = generate_snort_like_ruleset(largest, seed=seed, name=f"synthetic-snort-{largest}")
    out: Dict[int, RuleSet] = {largest: full}
    for size in sizes[:-1]:
        out[size] = reduce_ruleset(full, size, seed=seed + size)
    return out
