r"""Parser for Snort-style rules.

The subset parsed covers what the two-stage pipeline evaluates:

* the rule header — ``action protocol src_ip src_port direction dst_ip dst_port``;
* ``content:"..."`` options (and negated ``content:!"..."``), including
  Snort's ``|41 42 43|`` hex escapes and the backslash escapes (``\;`` ``\"``
  ``\\``) that decode to the bare character (the escape is never part of the
  pattern bytes);
* the positional content modifiers ``offset``/``depth`` (absolute) and
  ``distance``/``within`` (relative to the previous positive content match);
* the ``nocase`` modifier (the confirm stage folds case end to end);
* ``pcre:"/regex/flags"`` options (flags ``i``, ``s``, ``m``, ``x``),
  compiled once through :mod:`re` and cached;
* the ``http_uri``/``http_header`` sticky-buffer modifiers, which re-target
  the preceding content at the flow's *normalized* HTTP buffer
  (:mod:`repro.proto.http`) instead of the raw byte stream.  Sticky contents
  are confirm-only — normalization means the raw stream may not contain the
  literal, so the prefilter never searches them — and they carry no
  positional window: ``offset``/``depth``/``distance``/``within`` measure
  raw-stream offsets, which a normalized buffer does not have (RS011), and a
  relative content cannot anchor to a sticky content's match (RS012);
* ``msg`` and ``sid`` options.

Everything else (byte_test, flow, ...) is outside the scope of the
paper's fixed-string prefilter.  In the default *lenient* mode such options
are preserved verbatim in ``SnortRuleSpec.unparsed_options`` so genuine
community rule files load; with ``strict=True`` any unsupported option (or a
rule whose every content is negated, which the prefilter cannot anchor)
raises a :class:`RuleParseError` instead.

Grammar errors — duplicate or conflicting modifiers on one content, a
relative modifier with no positive content before it, malformed values —
are *always* errors, in both modes: they change what the rule matches, so
silently accepting them would load a different predicate than the author
wrote.  :func:`parse_rules` prefixes every error with its 1-based line
number.
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .ruleset import PatternRule, RuleSet


class RuleParseError(ValueError):
    """Raised when a rule line cannot be parsed."""


@dataclass(frozen=True)
class RuleHeader:
    """The 5-tuple header portion of a Snort rule."""

    action: str
    protocol: str
    src_ip: str
    src_port: str
    direction: str
    dst_ip: str
    dst_port: str


@dataclass
class ContentPattern:
    """A single ``content`` option with its modifiers.

    ``offset``/``depth`` anchor the match window to the flow start;
    ``distance``/``within`` anchor it to the end of the previous positive
    content's match (``doe``).  A content carries either absolute or
    relative anchoring, never both.  ``negated`` contents
    (``content:!"..."``) must have *no* occurrence inside their window.

    ``buffer`` is ``"raw"`` (the byte stream, the default) or a sticky
    buffer name from :data:`repro.proto.http.HTTP_BUFFERS` — a sticky
    content is evaluated as a substring test against the flow's normalized
    HTTP buffer and never enters the prefilter or a positional window.
    """

    pattern: bytes
    nocase: bool = False
    negated: bool = False
    offset: Optional[int] = None
    depth: Optional[int] = None
    distance: Optional[int] = None
    within: Optional[int] = None
    buffer: str = "raw"

    def effective_pattern(self) -> bytes:
        """Pattern actually loaded into the matcher (lower-cased if nocase)."""
        if self.nocase:
            return self.pattern.lower()
        return self.pattern

    @property
    def is_relative(self) -> bool:
        return self.distance is not None or self.within is not None

    @property
    def is_sticky(self) -> bool:
        """Targets a normalized protocol buffer instead of the raw stream."""
        return self.buffer != "raw"

    @property
    def is_plain(self) -> bool:
        """No negation, no positional window, raw stream: a bare string test."""
        return (
            not self.negated
            and self.buffer == "raw"
            and all(
                value is None
                for value in (self.offset, self.depth, self.distance, self.within)
            )
        )


#: pcre flags the confirm stage supports, mapped onto :mod:`re` flags.
PCRE_FLAGS = {
    "i": re.IGNORECASE,
    "s": re.DOTALL,
    "m": re.MULTILINE,
    "x": re.VERBOSE,
}


@functools.lru_cache(maxsize=None)
def _compile_pcre(body: str, flags: str):
    """Compile (and cache) one pcre body as a bytes regex.

    The cache is what "compiled once per rule" means operationally: every
    :class:`PcrePattern` with the same body+flags shares one compiled
    object, across rules, evaluators and re-parses.
    """
    value = 0
    for flag in flags:
        value |= PCRE_FLAGS[flag]
    return re.compile(body.encode("latin-1"), value)


@dataclass(frozen=True)
class PcrePattern:
    """A ``pcre:"/regex/flags"`` option (negated: ``pcre:!"/regex/"``)."""

    pattern: str
    flags: str = ""
    negated: bool = False

    def compile(self):
        """The cached compiled bytes-regex for this pattern."""
        return _compile_pcre(self.pattern, self.flags)


@dataclass
class RulePredicate:
    """The full match predicate of one rule: ordered contents plus pcres.

    This is what the two-stage pipeline evaluates — the prefilter reports
    where each content occurs, :mod:`repro.ids.confirm` decides whether
    those occurrences satisfy the windows, negations and pcres.
    """

    contents: Tuple[ContentPattern, ...] = ()
    pcres: Tuple[PcrePattern, ...] = ()

    @property
    def positive(self) -> Tuple[ContentPattern, ...]:
        """The non-negated contents (raw and sticky alike)."""
        return tuple(c for c in self.contents if not c.negated)

    @property
    def raw_positive(self) -> Tuple[ContentPattern, ...]:
        """The non-negated raw-stream contents (what the prefilter gates on)."""
        return tuple(c for c in self.contents if not c.negated and not c.is_sticky)

    @property
    def sticky(self) -> Tuple[ContentPattern, ...]:
        """The sticky-buffer contents (confirm-only substring tests)."""
        return tuple(c for c in self.contents if c.is_sticky)

    @property
    def is_plain(self) -> bool:
        """True when the predicate is just "every content occurs somewhere"."""
        return not self.pcres and all(c.is_plain for c in self.contents)

    @property
    def requires_end(self) -> bool:
        """True when the verdict can change at flow end (negation present)."""
        return any(c.negated for c in self.contents) or any(
            p.negated for p in self.pcres
        )

    def scan_patterns(self) -> List[bytes]:
        """Effective patterns the prefilter must search (negated ones too:
        their *occurrences* are what decides the negation window).  Sticky
        contents are excluded — they are tested against normalized buffers
        the raw stream never contains."""
        return [c.effective_pattern() for c in self.contents if not c.is_sticky]


@dataclass
class SnortRuleSpec:
    """A parsed Snort rule."""

    header: RuleHeader
    contents: List[ContentPattern] = field(default_factory=list)
    pcres: List[PcrePattern] = field(default_factory=list)
    msg: str = ""
    sid: Optional[int] = None
    unparsed_options: List[Tuple[str, Optional[str]]] = field(default_factory=list)

    @property
    def fixed_strings(self) -> List[bytes]:
        return [c.effective_pattern() for c in self.contents]

    @property
    def positive_contents(self) -> List[ContentPattern]:
        return [c for c in self.contents if not c.negated]

    @property
    def predicate(self) -> RulePredicate:
        return RulePredicate(contents=tuple(self.contents), pcres=tuple(self.pcres))


#: ``<-`` is matched so it can be rejected with a precise error message:
#: Snort defines only ``->`` and ``<>``.
_HEADER_RE = re.compile(
    r"^\s*(?P<action>\w+)\s+(?P<protocol>\w+)\s+(?P<src_ip>\S+)\s+(?P<src_port>\S+)\s+"
    r"(?P<direction>->|<>|<-)\s+(?P<dst_ip>\S+)\s+(?P<dst_port>\S+)\s*$"
)

_VALID_DIRECTIONS = ("->", "<>")


def decode_content_pattern(text: str) -> bytes:
    r"""Decode a Snort content string with ``|hex|`` and ``\`` escapes into bytes.

    Snort requires ``;``, ``"`` and ``\`` to be backslash-escaped inside a
    content string; the escape character is *not* part of the pattern, so the
    escaped character decodes to its bare self.  Any other escape is an error
    (as in Snort itself) — silently guessing would load a corrupted pattern
    into every matcher:

    >>> decode_content_pattern('abc|0D 0A|def')
    b'abc\r\ndef'
    >>> decode_content_pattern(r'a\;b')
    b'a;b'
    >>> decode_content_pattern(r'a\"b')
    b'a"b'
    >>> decode_content_pattern(r'a\\b')
    b'a\\b'
    >>> decode_content_pattern('|5C|')
    b'\\'
    >>> decode_content_pattern(r'C:\temp')
    Traceback (most recent call last):
        ...
    repro.rulesets.parser.RuleParseError: undefined escape '\t' in content: 'C:\\temp'
    """
    out = bytearray()
    position = 0
    while position < len(text):
        char = text[position]
        if char == "\\":
            if position + 1 >= len(text):
                raise RuleParseError(f"dangling escape at end of content: {text!r}")
            escaped = text[position + 1]
            if escaped not in ';"\\':
                raise RuleParseError(
                    f"undefined escape '\\{escaped}' in content: {text!r}"
                )
            out += escaped.encode("latin-1")
            position += 2
        elif char == "|":
            end = text.find("|", position + 1)
            if end < 0:
                raise RuleParseError(f"unterminated hex block in content: {text!r}")
            hex_body = re.sub(r"\s", "", text[position + 1:end])
            if len(hex_body) % 2 != 0 or not re.fullmatch(r"[0-9A-Fa-f]*", hex_body):
                raise RuleParseError(
                    f"bad hex block in content: {text[position:end + 1]!r}"
                )
            for i in range(0, len(hex_body), 2):
                out.append(int(hex_body[i:i + 2], 16))
            position = end + 1
        else:
            try:
                out += char.encode("latin-1")
            except UnicodeEncodeError as exc:
                raise RuleParseError(
                    f"non-latin-1 character {char!r} in content: {text!r} "
                    f"(use a |hex| escape for raw bytes)"
                ) from exc
            position += 1
    if not out:
        raise RuleParseError("empty content pattern")
    return bytes(out)


def render_content(pattern: bytes) -> str:
    r"""Render pattern bytes as a content string that round-trips.

    The inverse of :func:`decode_content_pattern` for the printable common
    case: bytes that are printable ASCII and not special to the grammar are
    emitted raw, everything else (including ``|``, ``"``, ``;`` and ``\``)
    as a ``|hex|`` block — so the output never needs backslash escapes:

    >>> render_content(b'GET /\r\n')
    'GET /|0D0A|'
    >>> decode_content_pattern(render_content(bytes(range(256)))) == bytes(range(256))
    True
    """
    out: List[str] = []
    run: List[str] = []  # pending hex bytes, merged into one |...| block
    for b in pattern:
        if 0x20 <= b < 0x7F and chr(b) not in '|";\\':
            if run:
                out.append("|" + "".join(run) + "|")
                run = []
            out.append(chr(b))
        else:
            run.append(f"{b:02X}")
    if run:
        out.append("|" + "".join(run) + "|")
    return "".join(out)


def _unescape_text(text: str) -> str:
    r"""Strip Snort option-value escapes (``\;`` ``\"`` ``\\``) from ``text``.

    Unlike content patterns, undefined escapes here are preserved verbatim:
    a stray backslash in a ``msg`` is cosmetic, not a corrupted matcher load.

    >>> _unescape_text(r'a\;b \"quoted\"')
    'a;b "quoted"'
    >>> _unescape_text(r'see C:\temp')
    'see C:\\temp'
    """
    return re.sub(r'\\([;"\\])', r"\1", text)


def _split_options(body: str) -> List[Tuple[str, Optional[str]]]:
    """Split the option body on ';' respecting quoted strings."""
    options: List[Tuple[str, Optional[str]]] = []
    current = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == ";" and not in_quotes:
            token = "".join(current).strip()
            if token:
                options.append(_parse_option(token))
            current = []
            continue
        current.append(char)
    token = "".join(current).strip()
    if token:
        options.append(_parse_option(token))
    return options


def _parse_option(token: str) -> Tuple[str, Optional[str]]:
    if ":" in token:
        key, value = token.split(":", 1)
        return key.strip(), value.strip()
    return token.strip(), None


def _strip_quotes(value: str) -> str:
    value = value.strip()
    if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
        return value[1:-1]
    return value


def parse_pcre_option(value: str, strict: bool = False) -> PcrePattern:
    r"""Parse a ``pcre`` option value (``"/regex/flags"`` or ``!"/regex/"``).

    The body between the delimiters is handed to :mod:`re` verbatim (after
    un-escaping ``\"``, which the option quoting requires).  Flags outside
    ``i s m x`` are dropped in lenient mode and rejected in strict mode; a
    body :mod:`re` cannot compile is always an error.

    >>> parse_pcre_option(r'"/cmd\.exe/i"')
    PcrePattern(pattern='cmd\\.exe', flags='i', negated=False)
    """
    text = value.strip()
    negated = text.startswith("!")
    if negated:
        text = text[1:].strip()
    text = _strip_quotes(text)
    if len(text) < 2 or text[0] != "/":
        raise RuleParseError(f"pcre must look like \"/regex/flags\": {value!r}")
    delimiter = text.rfind("/")
    if delimiter == 0:
        raise RuleParseError(f"unterminated pcre (no closing '/'): {value!r}")
    body = text[1:delimiter].replace('\\"', '"')
    flags = text[delimiter + 1:]
    unsupported = "".join(f for f in flags if f not in PCRE_FLAGS)
    if unsupported:
        if strict:
            raise RuleParseError(
                f"unsupported pcre flag(s) {unsupported!r} in {value!r} "
                f"(supported: {''.join(sorted(PCRE_FLAGS))})"
            )
        flags = "".join(f for f in flags if f in PCRE_FLAGS)
    try:
        _compile_pcre(body, flags)
    except UnicodeEncodeError as exc:
        raise RuleParseError(
            f"non-latin-1 character in pcre: {value!r}"
        ) from exc
    except re.error as exc:
        raise RuleParseError(f"invalid pcre {value!r}: {exc}") from exc
    return PcrePattern(pattern=body, flags=flags, negated=negated)


#: Sticky-buffer modifier names accepted after a content.  Kept as a local
#: literal (mirroring :data:`repro.proto.http.HTTP_BUFFERS`, which a test
#: pins) so the parser does not import the protocol layer.
STICKY_BUFFERS = ("http_uri", "http_header")

#: content modifiers taking an integer value, with their anchoring class.
_WINDOW_MODIFIERS = {
    "offset": "absolute",
    "depth": "absolute",
    "distance": "relative",
    "within": "relative",
}


def _apply_window_modifier(
    spec: SnortRuleSpec, key: str, value: Optional[str]
) -> None:
    """Attach one ``offset``/``depth``/``distance``/``within`` to the last
    content, rejecting duplicates and conflicting anchoring."""
    if not spec.contents:
        raise RuleParseError(f"{key} modifier before any content option")
    content = spec.contents[-1]
    try:
        amount = int(value if value is not None else "")
    except ValueError as exc:
        raise RuleParseError(f"invalid {key} value: {value!r}") from exc
    if content.is_sticky:
        raise RuleParseError(
            f"{key} on {content.buffer} content {content.pattern!r}: "
            "positional windows are raw-stream offsets, which a normalized "
            "buffer does not have"
        )
    if getattr(content, key) is not None:
        raise RuleParseError(f"duplicate {key} modifier on content {content.pattern!r}")
    anchoring = _WINDOW_MODIFIERS[key]
    if anchoring == "absolute" and content.is_relative:
        raise RuleParseError(
            f"{key} conflicts with distance/within on content {content.pattern!r}: "
            "a content anchors either to the flow start or to the previous match"
        )
    if anchoring == "relative":
        if content.offset is not None or content.depth is not None:
            raise RuleParseError(
                f"{key} conflicts with offset/depth on content {content.pattern!r}: "
                "a content anchors either to the flow start or to the previous match"
            )
        anchor = next(
            (c for c in reversed(spec.contents[:-1]) if not c.negated), None
        )
        if anchor is None:
            raise RuleParseError(
                f"{key} modifier on the first content has no previous match "
                "to anchor to"
            )
        if anchor.is_sticky:
            raise RuleParseError(
                f"{key} on content {content.pattern!r} anchors to the "
                f"{anchor.buffer} content {anchor.pattern!r}: a relative "
                "window cannot cross from a normalized buffer into the raw "
                "stream"
            )
    if key == "offset" and amount < 0:
        raise RuleParseError(f"offset must be >= 0, got {amount}")
    if key in ("depth", "within") and amount < 1:
        raise RuleParseError(f"{key} must be >= 1, got {amount}")
    setattr(content, key, amount)


def parse_rule(line: str, strict: bool = False) -> SnortRuleSpec:
    """Parse one Snort rule line into a :class:`SnortRuleSpec`.

    ``strict`` rejects unsupported options, unsupported pcre flags and rules
    without a positive content; lenient (the default) records unsupported
    options in ``unparsed_options`` and leaves the skipping policy to the
    consumer.  Grammar errors are rejected in both modes.
    """
    line = line.strip()
    if not line or line.startswith("#"):
        raise RuleParseError("empty line or comment")
    open_paren = line.find("(")
    if open_paren < 0 or not line.endswith(")"):
        raise RuleParseError(f"rule has no option body: {line!r}")
    header_text = line[:open_paren]
    body = line[open_paren + 1:-1]

    match = _HEADER_RE.match(header_text)
    if match is None:
        raise RuleParseError(f"cannot parse rule header: {header_text!r}")
    if match.group("direction") not in _VALID_DIRECTIONS:
        raise RuleParseError(
            f"invalid rule direction {match.group('direction')!r}: "
            f"Snort defines only '->' and '<>'"
        )
    header = RuleHeader(**match.groupdict())

    spec = SnortRuleSpec(header=header)
    for key, value in _split_options(body):
        key_lower = key.lower()
        if key_lower == "content":
            if value is None:
                raise RuleParseError("content option requires a value")
            text = value.strip()
            negated = text.startswith("!")
            if negated:
                text = text[1:].strip()
            spec.contents.append(
                ContentPattern(
                    pattern=decode_content_pattern(_strip_quotes(text)),
                    negated=negated,
                )
            )
        elif key_lower == "nocase":
            if not spec.contents:
                raise RuleParseError("nocase modifier before any content option")
            if spec.contents[-1].nocase:
                raise RuleParseError(
                    f"duplicate nocase modifier on content "
                    f"{spec.contents[-1].pattern!r}"
                )
            spec.contents[-1].nocase = True
        elif key_lower in STICKY_BUFFERS:
            if value is not None:
                raise RuleParseError(
                    f"{key_lower} is a modifier and takes no value, got {value!r}"
                )
            if not spec.contents:
                raise RuleParseError(f"{key_lower} modifier before any content option")
            content = spec.contents[-1]
            if content.buffer == key_lower:
                raise RuleParseError(
                    f"duplicate {key_lower} modifier on content {content.pattern!r}"
                )
            if content.is_sticky:
                raise RuleParseError(
                    f"{key_lower} conflicts with {content.buffer} on content "
                    f"{content.pattern!r}: a content targets one buffer"
                )
            if content.is_relative or content.offset is not None or (
                content.depth is not None
            ):
                raise RuleParseError(
                    f"{key_lower} on content {content.pattern!r} with "
                    "offset/depth/distance/within: positional windows are "
                    "raw-stream offsets, which a normalized buffer does not "
                    "have"
                )
            content.buffer = key_lower
        elif key_lower in _WINDOW_MODIFIERS:
            _apply_window_modifier(spec, key_lower, value)
        elif key_lower == "pcre":
            if value is None:
                raise RuleParseError("pcre option requires a value")
            spec.pcres.append(parse_pcre_option(value, strict=strict))
        elif key_lower == "msg":
            spec.msg = _unescape_text(_strip_quotes(value or ""))
        elif key_lower == "sid":
            try:
                spec.sid = int(value or "")
            except ValueError as exc:
                raise RuleParseError(f"invalid sid: {value!r}") from exc
        elif strict:
            raise RuleParseError(
                f"unsupported option {key!r} (strict mode; drop --strict-rules "
                "or remove the option)"
            )
        else:
            spec.unparsed_options.append((key, value))
    if strict and not any(not c.negated for c in spec.contents):
        raise RuleParseError(
            "rule has no positive (non-negated) content for the prefilter "
            "to anchor on"
        )
    return spec


def parse_rules(lines: Iterable[str], strict: bool = False) -> List[SnortRuleSpec]:
    """Parse many rule lines, silently skipping blanks and comments.

    Parse errors carry the 1-based line number, so a reject deep inside a
    large rules file points at the rule to fix.
    """
    specs: List[SnortRuleSpec] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            specs.append(parse_rule(stripped, strict=strict))
        except RuleParseError as exc:
            raise RuleParseError(f"line {number}: {exc}") from exc
    return specs


def spec_from_content(
    content: str,
    sid: Optional[int] = None,
    msg: str = "",
    nocase: bool = False,
    action: str = "alert",
    protocol: str = "ip",
) -> SnortRuleSpec:
    r"""Build a wildcard-header spec from one Snort content string.

    This is the explicit-rules path of :mod:`repro.api`: the header is the
    wildcard ``alert ip any any -> any any`` (every packet is a candidate,
    so detection is decided purely by the content matcher) and ``content``
    uses the same syntax — ``|hex|`` blocks and ``\;`` ``\"`` ``\\``
    escapes — as a rules file:

    >>> spec = spec_from_content("GET|20|/", sid=9, msg="http")
    >>> (spec.sid, spec.msg, spec.contents[0].pattern)
    (9, 'http', b'GET /')
    """
    header = RuleHeader(
        action=action,
        protocol=protocol,
        src_ip="any",
        src_port="any",
        direction="->",
        dst_ip="any",
        dst_port="any",
    )
    pattern = ContentPattern(pattern=decode_content_pattern(content), nocase=nocase)
    return SnortRuleSpec(header=header, contents=[pattern], msg=msg, sid=sid)


class SidAllocator:
    """Deterministic sid assignment shared by every specs-ingesting builder.

    The invariant both :func:`ruleset_from_specs` and
    :meth:`repro.ids.IntrusionDetectionSystem.from_specs` need: the *first*
    claimant of an explicit sid keeps it, and every other assignment (later
    collisions, sid-less rules, the extra contents of multi-content rules)
    gets the lowest free sid that **no** spec claims explicitly — so
    auto-assignment can never steal a sid some rule in the file asked for.
    Reassignments of explicitly requested sids are recorded in ``sid_remap``
    (when given) as ``assigned_sid -> requested_sid``.
    """

    def __init__(
        self,
        specs: Sequence[SnortRuleSpec],
        sid_remap: Optional[Dict[int, int]] = None,
    ):
        #: built from the *unfiltered* spec list: even a content-less rule's
        #: explicit sid stays off-limits to auto-assignment
        self.reserved = {spec.sid for spec in specs if spec.sid is not None}
        self.used: set = set()
        self.sid_remap = sid_remap
        self._next_auto = 1

    def assign(self, requested: Optional[int]) -> int:
        if requested is not None and requested not in self.used:
            sid = requested
        else:
            while self._next_auto in self.used or self._next_auto in self.reserved:
                self._next_auto += 1
            sid = self._next_auto
            if requested is not None and self.sid_remap is not None:
                self.sid_remap[sid] = requested
        self.used.add(sid)
        return sid


def ruleset_from_specs(
    specs: Iterable[SnortRuleSpec],
    name: str = "snort",
    dedupe: bool = True,
    sid_remap: Optional[Dict[int, int]] = None,
) -> RuleSet:
    """Collect the unique fixed strings of parsed rules into a :class:`RuleSet`.

    The paper searches for *unique strings*; when ``dedupe`` is set, a pattern
    appearing in several rules is stored once (first sid wins).  Negated
    contents contribute their pattern too — the prefilter must report where
    they occur for the confirm stage to decide the negation window.

    Sid assignment is deterministic and never silently rewrites an explicit
    sid that is still free: the *first* rule claiming a sid keeps it, and any
    later rule colliding with it (or the extra contents of a multi-content
    rule, which each need their own sid) gets the lowest free sid that no
    spec claims explicitly.  Pass a dict as ``sid_remap`` to record every
    such reassignment as ``assigned_sid -> requested_sid``, so alerts can be
    traced back to the rule file they came from:

    >>> specs = parse_rules([
    ...     'alert tcp any any -> any 80 (content:"first"; sid:7;)',
    ...     'alert tcp any any -> any 80 (content:"second"; sid:7;)',
    ... ])
    >>> remap = {}
    >>> ruleset = ruleset_from_specs(specs, sid_remap=remap)
    >>> ruleset.sids, remap
    ([7, 1], {1: 7})
    """
    specs = list(specs)
    allocator = SidAllocator(specs, sid_remap)
    ruleset = RuleSet(name=name)
    for spec in specs:
        for content in spec.contents:
            if content.is_sticky:
                continue  # normalized-buffer tests never enter the prefilter
            pattern = content.effective_pattern()
            if dedupe and pattern in ruleset:
                continue
            ruleset.add(
                PatternRule(
                    pattern=pattern, sid=allocator.assign(spec.sid), msg=spec.msg
                )
            )
    return ruleset
