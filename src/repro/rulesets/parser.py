"""Parser for Snort-style rules.

Only the subset needed to drive the string matching accelerator is parsed:

* the rule header — ``action protocol src_ip src_port direction dst_ip dst_port``;
* ``content:"..."`` options, including Snort's ``|41 42 43|`` hex escapes;
* ``msg`` and ``sid`` options;
* the ``nocase`` modifier (recorded; case folding is applied on request).

Everything else (pcre, byte_test, flow, ...) is outside the scope of the
paper, which matches only the *fixed strings* contained in rules, and is
preserved verbatim in ``SnortRuleSpec.unparsed_options``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .ruleset import PatternRule, RuleSet


class RuleParseError(ValueError):
    """Raised when a rule line cannot be parsed."""


@dataclass(frozen=True)
class RuleHeader:
    """The 5-tuple header portion of a Snort rule."""

    action: str
    protocol: str
    src_ip: str
    src_port: str
    direction: str
    dst_ip: str
    dst_port: str


@dataclass
class ContentPattern:
    """A single ``content`` option."""

    pattern: bytes
    nocase: bool = False

    def effective_pattern(self) -> bytes:
        """Pattern actually loaded into the matcher (lower-cased if nocase)."""
        if self.nocase:
            return self.pattern.lower()
        return self.pattern


@dataclass
class SnortRuleSpec:
    """A parsed Snort rule."""

    header: RuleHeader
    contents: List[ContentPattern] = field(default_factory=list)
    msg: str = ""
    sid: Optional[int] = None
    unparsed_options: List[Tuple[str, Optional[str]]] = field(default_factory=list)

    @property
    def fixed_strings(self) -> List[bytes]:
        return [c.effective_pattern() for c in self.contents]


_HEADER_RE = re.compile(
    r"^\s*(?P<action>\w+)\s+(?P<protocol>\w+)\s+(?P<src_ip>\S+)\s+(?P<src_port>\S+)\s+"
    r"(?P<direction>->|<>|<-)\s+(?P<dst_ip>\S+)\s+(?P<dst_port>\S+)\s*$"
)

_HEX_BLOCK_RE = re.compile(r"\|([0-9A-Fa-f\s]*)\|")


def decode_content_pattern(text: str) -> bytes:
    """Decode a Snort content string with ``|hex|`` escapes into bytes.

    >>> decode_content_pattern('abc|0D 0A|def')
    b'abc\\r\\ndef'
    """
    out = bytearray()
    position = 0
    for match in _HEX_BLOCK_RE.finditer(text):
        literal = text[position:match.start()]
        out += literal.encode("latin-1")
        hex_body = match.group(1).replace(" ", "").replace("\t", "")
        if len(hex_body) % 2 != 0:
            raise RuleParseError(f"odd-length hex block in content: {match.group(0)!r}")
        for i in range(0, len(hex_body), 2):
            out.append(int(hex_body[i:i + 2], 16))
        position = match.end()
    out += text[position:].encode("latin-1")
    if not out:
        raise RuleParseError("empty content pattern")
    return bytes(out)


def _split_options(body: str) -> List[Tuple[str, Optional[str]]]:
    """Split the option body on ';' respecting quoted strings."""
    options: List[Tuple[str, Optional[str]]] = []
    current = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == ";" and not in_quotes:
            token = "".join(current).strip()
            if token:
                options.append(_parse_option(token))
            current = []
            continue
        current.append(char)
    token = "".join(current).strip()
    if token:
        options.append(_parse_option(token))
    return options


def _parse_option(token: str) -> Tuple[str, Optional[str]]:
    if ":" in token:
        key, value = token.split(":", 1)
        return key.strip(), value.strip()
    return token.strip(), None


def _strip_quotes(value: str) -> str:
    value = value.strip()
    if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
        return value[1:-1]
    return value


def parse_rule(line: str) -> SnortRuleSpec:
    """Parse one Snort rule line into a :class:`SnortRuleSpec`."""
    line = line.strip()
    if not line or line.startswith("#"):
        raise RuleParseError("empty line or comment")
    open_paren = line.find("(")
    if open_paren < 0 or not line.endswith(")"):
        raise RuleParseError(f"rule has no option body: {line!r}")
    header_text = line[:open_paren]
    body = line[open_paren + 1:-1]

    match = _HEADER_RE.match(header_text)
    if match is None:
        raise RuleParseError(f"cannot parse rule header: {header_text!r}")
    header = RuleHeader(**match.groupdict())

    spec = SnortRuleSpec(header=header)
    for key, value in _split_options(body):
        key_lower = key.lower()
        if key_lower == "content":
            if value is None:
                raise RuleParseError("content option requires a value")
            spec.contents.append(
                ContentPattern(pattern=decode_content_pattern(_strip_quotes(value)))
            )
        elif key_lower == "nocase":
            if not spec.contents:
                raise RuleParseError("nocase modifier before any content option")
            spec.contents[-1].nocase = True
        elif key_lower == "msg":
            spec.msg = _strip_quotes(value or "")
        elif key_lower == "sid":
            try:
                spec.sid = int(value or "")
            except ValueError as exc:
                raise RuleParseError(f"invalid sid: {value!r}") from exc
        else:
            spec.unparsed_options.append((key, value))
    return spec


def parse_rules(lines: Iterable[str]) -> List[SnortRuleSpec]:
    """Parse many rule lines, silently skipping blanks and comments."""
    specs: List[SnortRuleSpec] = []
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        specs.append(parse_rule(stripped))
    return specs


def ruleset_from_specs(
    specs: Iterable[SnortRuleSpec], name: str = "snort", dedupe: bool = True
) -> RuleSet:
    """Collect the unique fixed strings of parsed rules into a :class:`RuleSet`.

    The paper searches for *unique strings*; when ``dedupe`` is set, a pattern
    appearing in several rules is stored once (first sid wins).
    """
    ruleset = RuleSet(name=name)
    next_sid = 1
    for spec in specs:
        for content in spec.contents:
            pattern = content.effective_pattern()
            if dedupe and pattern in ruleset:
                continue
            sid = spec.sid if spec.sid is not None and spec.sid not in ruleset.sids else next_sid
            while sid in ruleset.sids:
                sid += 1
            ruleset.add(PatternRule(pattern=pattern, sid=sid, msg=spec.msg))
            next_sid = max(next_sid, sid) + 1
    return ruleset
