r"""Parser for Snort-style rules.

Only the subset needed to drive the string matching accelerator is parsed:

* the rule header — ``action protocol src_ip src_port direction dst_ip dst_port``;
* ``content:"..."`` options, including Snort's ``|41 42 43|`` hex escapes and
  the backslash escapes (``\;`` ``\"`` ``\\``) that decode to the bare
  character (the escape is never part of the pattern bytes);
* ``msg`` and ``sid`` options;
* the ``nocase`` modifier (recorded; case folding is applied on request).

Everything else (pcre, byte_test, flow, ...) is outside the scope of the
paper, which matches only the *fixed strings* contained in rules, and is
preserved verbatim in ``SnortRuleSpec.unparsed_options``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .ruleset import PatternRule, RuleSet


class RuleParseError(ValueError):
    """Raised when a rule line cannot be parsed."""


@dataclass(frozen=True)
class RuleHeader:
    """The 5-tuple header portion of a Snort rule."""

    action: str
    protocol: str
    src_ip: str
    src_port: str
    direction: str
    dst_ip: str
    dst_port: str


@dataclass
class ContentPattern:
    """A single ``content`` option."""

    pattern: bytes
    nocase: bool = False

    def effective_pattern(self) -> bytes:
        """Pattern actually loaded into the matcher (lower-cased if nocase)."""
        if self.nocase:
            return self.pattern.lower()
        return self.pattern


@dataclass
class SnortRuleSpec:
    """A parsed Snort rule."""

    header: RuleHeader
    contents: List[ContentPattern] = field(default_factory=list)
    msg: str = ""
    sid: Optional[int] = None
    unparsed_options: List[Tuple[str, Optional[str]]] = field(default_factory=list)

    @property
    def fixed_strings(self) -> List[bytes]:
        return [c.effective_pattern() for c in self.contents]


#: ``<-`` is matched so it can be rejected with a precise error message:
#: Snort defines only ``->`` and ``<>``.
_HEADER_RE = re.compile(
    r"^\s*(?P<action>\w+)\s+(?P<protocol>\w+)\s+(?P<src_ip>\S+)\s+(?P<src_port>\S+)\s+"
    r"(?P<direction>->|<>|<-)\s+(?P<dst_ip>\S+)\s+(?P<dst_port>\S+)\s*$"
)

_VALID_DIRECTIONS = ("->", "<>")


def decode_content_pattern(text: str) -> bytes:
    r"""Decode a Snort content string with ``|hex|`` and ``\`` escapes into bytes.

    Snort requires ``;``, ``"`` and ``\`` to be backslash-escaped inside a
    content string; the escape character is *not* part of the pattern, so the
    escaped character decodes to its bare self.  Any other escape is an error
    (as in Snort itself) — silently guessing would load a corrupted pattern
    into every matcher:

    >>> decode_content_pattern('abc|0D 0A|def')
    b'abc\r\ndef'
    >>> decode_content_pattern(r'a\;b')
    b'a;b'
    >>> decode_content_pattern(r'a\"b')
    b'a"b'
    >>> decode_content_pattern(r'a\\b')
    b'a\\b'
    >>> decode_content_pattern('|5C|')
    b'\\'
    >>> decode_content_pattern(r'C:\temp')
    Traceback (most recent call last):
        ...
    repro.rulesets.parser.RuleParseError: undefined escape '\t' in content: 'C:\\temp'
    """
    out = bytearray()
    position = 0
    while position < len(text):
        char = text[position]
        if char == "\\":
            if position + 1 >= len(text):
                raise RuleParseError(f"dangling escape at end of content: {text!r}")
            escaped = text[position + 1]
            if escaped not in ';"\\':
                raise RuleParseError(
                    f"undefined escape '\\{escaped}' in content: {text!r}"
                )
            out += escaped.encode("latin-1")
            position += 2
        elif char == "|":
            end = text.find("|", position + 1)
            if end < 0:
                raise RuleParseError(f"unterminated hex block in content: {text!r}")
            hex_body = re.sub(r"\s", "", text[position + 1:end])
            if len(hex_body) % 2 != 0 or not re.fullmatch(r"[0-9A-Fa-f]*", hex_body):
                raise RuleParseError(
                    f"bad hex block in content: {text[position:end + 1]!r}"
                )
            for i in range(0, len(hex_body), 2):
                out.append(int(hex_body[i:i + 2], 16))
            position = end + 1
        else:
            try:
                out += char.encode("latin-1")
            except UnicodeEncodeError as exc:
                raise RuleParseError(
                    f"non-latin-1 character {char!r} in content: {text!r} "
                    f"(use a |hex| escape for raw bytes)"
                ) from exc
            position += 1
    if not out:
        raise RuleParseError("empty content pattern")
    return bytes(out)


def _unescape_text(text: str) -> str:
    r"""Strip Snort option-value escapes (``\;`` ``\"`` ``\\``) from ``text``.

    Unlike content patterns, undefined escapes here are preserved verbatim:
    a stray backslash in a ``msg`` is cosmetic, not a corrupted matcher load.

    >>> _unescape_text(r'a\;b \"quoted\"')
    'a;b "quoted"'
    >>> _unescape_text(r'see C:\temp')
    'see C:\\temp'
    """
    return re.sub(r'\\([;"\\])', r"\1", text)


def _split_options(body: str) -> List[Tuple[str, Optional[str]]]:
    """Split the option body on ';' respecting quoted strings."""
    options: List[Tuple[str, Optional[str]]] = []
    current = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == ";" and not in_quotes:
            token = "".join(current).strip()
            if token:
                options.append(_parse_option(token))
            current = []
            continue
        current.append(char)
    token = "".join(current).strip()
    if token:
        options.append(_parse_option(token))
    return options


def _parse_option(token: str) -> Tuple[str, Optional[str]]:
    if ":" in token:
        key, value = token.split(":", 1)
        return key.strip(), value.strip()
    return token.strip(), None


def _strip_quotes(value: str) -> str:
    value = value.strip()
    if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
        return value[1:-1]
    return value


def parse_rule(line: str) -> SnortRuleSpec:
    """Parse one Snort rule line into a :class:`SnortRuleSpec`."""
    line = line.strip()
    if not line or line.startswith("#"):
        raise RuleParseError("empty line or comment")
    open_paren = line.find("(")
    if open_paren < 0 or not line.endswith(")"):
        raise RuleParseError(f"rule has no option body: {line!r}")
    header_text = line[:open_paren]
    body = line[open_paren + 1:-1]

    match = _HEADER_RE.match(header_text)
    if match is None:
        raise RuleParseError(f"cannot parse rule header: {header_text!r}")
    if match.group("direction") not in _VALID_DIRECTIONS:
        raise RuleParseError(
            f"invalid rule direction {match.group('direction')!r}: "
            f"Snort defines only '->' and '<>'"
        )
    header = RuleHeader(**match.groupdict())

    spec = SnortRuleSpec(header=header)
    for key, value in _split_options(body):
        key_lower = key.lower()
        if key_lower == "content":
            if value is None:
                raise RuleParseError("content option requires a value")
            spec.contents.append(
                ContentPattern(pattern=decode_content_pattern(_strip_quotes(value)))
            )
        elif key_lower == "nocase":
            if not spec.contents:
                raise RuleParseError("nocase modifier before any content option")
            spec.contents[-1].nocase = True
        elif key_lower == "msg":
            spec.msg = _unescape_text(_strip_quotes(value or ""))
        elif key_lower == "sid":
            try:
                spec.sid = int(value or "")
            except ValueError as exc:
                raise RuleParseError(f"invalid sid: {value!r}") from exc
        else:
            spec.unparsed_options.append((key, value))
    return spec


def parse_rules(lines: Iterable[str]) -> List[SnortRuleSpec]:
    """Parse many rule lines, silently skipping blanks and comments.

    Parse errors carry the 1-based line number, so a reject deep inside a
    large rules file points at the rule to fix.
    """
    specs: List[SnortRuleSpec] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            specs.append(parse_rule(stripped))
        except RuleParseError as exc:
            raise RuleParseError(f"line {number}: {exc}") from exc
    return specs


def spec_from_content(
    content: str,
    sid: Optional[int] = None,
    msg: str = "",
    nocase: bool = False,
    action: str = "alert",
    protocol: str = "ip",
) -> SnortRuleSpec:
    r"""Build a wildcard-header spec from one Snort content string.

    This is the explicit-rules path of :mod:`repro.api`: the header is the
    wildcard ``alert ip any any -> any any`` (every packet is a candidate,
    so detection is decided purely by the content matcher) and ``content``
    uses the same syntax — ``|hex|`` blocks and ``\;`` ``\"`` ``\\``
    escapes — as a rules file:

    >>> spec = spec_from_content("GET|20|/", sid=9, msg="http")
    >>> (spec.sid, spec.msg, spec.contents[0].pattern)
    (9, 'http', b'GET /')
    """
    header = RuleHeader(
        action=action,
        protocol=protocol,
        src_ip="any",
        src_port="any",
        direction="->",
        dst_ip="any",
        dst_port="any",
    )
    pattern = ContentPattern(pattern=decode_content_pattern(content), nocase=nocase)
    return SnortRuleSpec(header=header, contents=[pattern], msg=msg, sid=sid)


class SidAllocator:
    """Deterministic sid assignment shared by every specs-ingesting builder.

    The invariant both :func:`ruleset_from_specs` and
    :meth:`repro.ids.IntrusionDetectionSystem.from_specs` need: the *first*
    claimant of an explicit sid keeps it, and every other assignment (later
    collisions, sid-less rules, the extra contents of multi-content rules)
    gets the lowest free sid that **no** spec claims explicitly — so
    auto-assignment can never steal a sid some rule in the file asked for.
    Reassignments of explicitly requested sids are recorded in ``sid_remap``
    (when given) as ``assigned_sid -> requested_sid``.
    """

    def __init__(
        self,
        specs: Sequence[SnortRuleSpec],
        sid_remap: Optional[Dict[int, int]] = None,
    ):
        #: built from the *unfiltered* spec list: even a content-less rule's
        #: explicit sid stays off-limits to auto-assignment
        self.reserved = {spec.sid for spec in specs if spec.sid is not None}
        self.used: set = set()
        self.sid_remap = sid_remap
        self._next_auto = 1

    def assign(self, requested: Optional[int]) -> int:
        if requested is not None and requested not in self.used:
            sid = requested
        else:
            while self._next_auto in self.used or self._next_auto in self.reserved:
                self._next_auto += 1
            sid = self._next_auto
            if requested is not None and self.sid_remap is not None:
                self.sid_remap[sid] = requested
        self.used.add(sid)
        return sid


def ruleset_from_specs(
    specs: Iterable[SnortRuleSpec],
    name: str = "snort",
    dedupe: bool = True,
    sid_remap: Optional[Dict[int, int]] = None,
) -> RuleSet:
    """Collect the unique fixed strings of parsed rules into a :class:`RuleSet`.

    The paper searches for *unique strings*; when ``dedupe`` is set, a pattern
    appearing in several rules is stored once (first sid wins).

    Sid assignment is deterministic and never silently rewrites an explicit
    sid that is still free: the *first* rule claiming a sid keeps it, and any
    later rule colliding with it (or the extra contents of a multi-content
    rule, which each need their own sid) gets the lowest free sid that no
    spec claims explicitly.  Pass a dict as ``sid_remap`` to record every
    such reassignment as ``assigned_sid -> requested_sid``, so alerts can be
    traced back to the rule file they came from:

    >>> specs = parse_rules([
    ...     'alert tcp any any -> any 80 (content:"first"; sid:7;)',
    ...     'alert tcp any any -> any 80 (content:"second"; sid:7;)',
    ... ])
    >>> remap = {}
    >>> ruleset = ruleset_from_specs(specs, sid_remap=remap)
    >>> ruleset.sids, remap
    ([7, 1], {1: 7})
    """
    specs = list(specs)
    allocator = SidAllocator(specs, sid_remap)
    ruleset = RuleSet(name=name)
    for spec in specs:
        for content in spec.contents:
            pattern = content.effective_pattern()
            if dedupe and pattern in ruleset:
                continue
            ruleset.add(
                PatternRule(
                    pattern=pattern, sid=allocator.assign(spec.sid), msg=spec.msg
                )
            )
    return ruleset
