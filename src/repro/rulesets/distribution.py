"""String-length distribution model for synthetic Snort-like rulesets.

Figure 6 of the paper plots, for each ruleset size (500 .. 6,275 strings),
the number of strings per length bucket.  The distribution peaks between 4
and 13 bytes and has a long tail out to 50+ bytes.  Because the original
Snort snapshot is not available, we model the length distribution
parametrically and keep it fixed across ruleset sizes, exactly as the paper's
subset-extraction procedure does.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence


@dataclass(frozen=True)
class LengthDistribution:
    """A discrete distribution over pattern lengths (in bytes).

    ``weights[length]`` is an unnormalised probability mass.  Lengths with no
    entry have zero probability.
    """

    weights: Mapping[int, float]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("LengthDistribution requires at least one length")
        for length, weight in self.weights.items():
            if length <= 0:
                raise ValueError(f"length must be positive, got {length}")
            if weight < 0:
                raise ValueError(f"weight must be non-negative, got {weight}")
        if sum(self.weights.values()) <= 0:
            raise ValueError(f"total weight must be positive, got {sum(self.weights.values())}")

    # ------------------------------------------------------------------
    @property
    def lengths(self) -> List[int]:
        return sorted(self.weights)

    @property
    def total_weight(self) -> float:
        return float(sum(self.weights.values()))

    def probability(self, length: int) -> float:
        return self.weights.get(length, 0.0) / self.total_weight

    def mean(self) -> float:
        total = self.total_weight
        return sum(length * weight for length, weight in self.weights.items()) / total

    def sample_lengths(self, count: int, rng: random.Random) -> List[int]:
        """Draw ``count`` lengths (with replacement)."""
        lengths = self.lengths
        cumulative: List[float] = []
        running = 0.0
        for length in lengths:
            running += self.weights[length]
            cumulative.append(running)
        total = cumulative[-1]
        out: List[int] = []
        for _ in range(count):
            pick = rng.random() * total
            lo, hi = 0, len(cumulative) - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if cumulative[mid] < pick:
                    lo = mid + 1
                else:
                    hi = mid
            out.append(lengths[lo])
        return out

    def expected_counts(self, total_strings: int) -> Dict[int, int]:
        """Deterministic (largest-remainder) allocation of ``total_strings``."""
        total = self.total_weight
        raw = {
            length: total_strings * weight / total
            for length, weight in self.weights.items()
        }
        counts = {length: int(math.floor(value)) for length, value in raw.items()}
        remainder = total_strings - sum(counts.values())
        # hand the leftover strings to the largest fractional parts
        fractional = sorted(
            raw.items(), key=lambda item: (item[1] - math.floor(item[1])), reverse=True
        )
        for length, _ in fractional:
            if remainder <= 0:
                break
            counts[length] += 1
            remainder -= 1
        return {length: count for length, count in counts.items() if count > 0}

    def bucketed(self, bucket_width: int = 5, cap: int = 50) -> Dict[str, float]:
        """Probability mass per Figure-6 style bucket."""
        buckets: Dict[str, float] = {}
        for length, weight in self.weights.items():
            if length >= cap:
                key = f"{cap}+"
            elif length < bucket_width:
                key = f"1-{bucket_width - 1}"
            else:
                low = (length // bucket_width) * bucket_width
                key = f"{low}-{low + bucket_width - 1}"
            buckets[key] = buckets.get(key, 0.0) + weight
        total = self.total_weight
        return {key: value / total for key, value in buckets.items()}

    @classmethod
    def from_lengths(cls, lengths: Sequence[int]) -> "LengthDistribution":
        """Empirical distribution from observed pattern lengths."""
        weights: Dict[int, float] = {}
        for length in lengths:
            weights[length] = weights.get(length, 0.0) + 1.0
        return cls(weights=weights)


def _snort_like_weights(
    peak_low: int = 4,
    peak_high: int = 13,
    max_length: int = 120,
    tail_decay: float = 0.92,
    short_fraction: float = 0.0,
) -> Dict[int, float]:
    """Build the reference length weights used throughout the reproduction.

    The shape follows the qualitative description of Figure 6: essentially no
    1-3 byte strings (a 1-3 byte signature would fire on almost any traffic,
    so Snort avoids them), a broad peak between ``peak_low`` and ``peak_high``
    bytes, and a geometrically decaying tail that still leaves a visible mass
    in the 50+ bucket (long URI / shellcode signatures).
    """
    weights: Dict[int, float] = {}
    for length in range(1, peak_low):
        if short_fraction > 0:
            weights[length] = short_fraction * (length / peak_low)
    for length in range(peak_low, peak_high + 1):
        # gentle triangular bump across the peak region
        centre = (peak_low + peak_high) / 2.0
        spread = (peak_high - peak_low) / 2.0 + 1.0
        weights[length] = 1.0 - 0.35 * abs(length - centre) / spread
    tail_weight = weights[peak_high]
    for length in range(peak_high + 1, max_length + 1):
        tail_weight *= tail_decay
        if tail_weight < 1e-4:
            tail_weight = 1e-4
        weights[length] = tail_weight
    return weights


#: Reference distribution reproducing the shape of Figure 6.
FIGURE6_DISTRIBUTION = LengthDistribution(weights=_snort_like_weights())

#: The ruleset sizes evaluated in the paper (Figure 6 / Table II).
PAPER_RULESET_SIZES = (500, 634, 1204, 1603, 2588, 6275)
