"""Ruleset container: the set of fixed strings a DPI engine must search for."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PatternRule:
    """A single fixed-string content rule.

    Attributes
    ----------
    pattern:
        The byte string that must be found in a packet payload.
    sid:
        Rule identifier (Snort "sid").  Unique within a ruleset.
    msg:
        Human readable description.
    """

    pattern: bytes
    sid: int
    msg: str = ""

    def __post_init__(self) -> None:
        if len(self.pattern) == 0:
            raise ValueError("PatternRule.pattern must not be empty")

    @property
    def length(self) -> int:
        return len(self.pattern)


class RuleSet:
    """An ordered collection of unique fixed-string patterns.

    The paper works with *unique strings* extracted from the Snort ruleset;
    accordingly duplicate patterns are rejected (they would be redundant in
    the automaton and would distort the memory statistics).
    """

    def __init__(self, rules: Optional[Iterable[PatternRule]] = None, name: str = "ruleset"):
        self.name = name
        self._rules: List[PatternRule] = []
        self._by_pattern: Dict[bytes, PatternRule] = {}
        if rules is not None:
            for rule in rules:
                self.add(rule)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, rule: PatternRule) -> None:
        if rule.pattern in self._by_pattern:
            raise ValueError(f"duplicate pattern {rule.pattern!r} (sid {rule.sid})")
        self._rules.append(rule)
        self._by_pattern[rule.pattern] = rule

    def add_pattern(self, pattern: bytes, msg: str = "") -> PatternRule:
        """Add a raw pattern, assigning the next free sid."""
        rule = PatternRule(pattern=pattern, sid=self.next_sid(), msg=msg)
        self.add(rule)
        return rule

    def next_sid(self) -> int:
        if not self._rules:
            return 1
        return max(r.sid for r in self._rules) + 1

    @classmethod
    def from_patterns(
        cls, patterns: Sequence[bytes], name: str = "ruleset"
    ) -> "RuleSet":
        ruleset = cls(name=name)
        for index, pattern in enumerate(patterns, start=1):
            ruleset.add(PatternRule(pattern=pattern, sid=index))
        return ruleset

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[PatternRule]:
        return iter(self._rules)

    def __contains__(self, pattern: bytes) -> bool:
        return pattern in self._by_pattern

    def __getitem__(self, index: int) -> PatternRule:
        return self._rules[index]

    def rule_for(self, pattern: bytes) -> PatternRule:
        return self._by_pattern[pattern]

    # ------------------------------------------------------------------
    # views and statistics
    # ------------------------------------------------------------------
    @property
    def patterns(self) -> List[bytes]:
        return [r.pattern for r in self._rules]

    @property
    def sids(self) -> List[int]:
        return [r.sid for r in self._rules]

    @property
    def total_characters(self) -> int:
        """Total number of bytes over all patterns (the paper's '19,124 characters')."""
        return sum(r.length for r in self._rules)

    @property
    def unique_starting_bytes(self) -> int:
        return len({r.pattern[0] for r in self._rules})

    def length_histogram(self) -> Dict[int, int]:
        """Exact histogram: pattern length -> number of patterns."""
        histogram: Dict[int, int] = {}
        for rule in self._rules:
            histogram[rule.length] = histogram.get(rule.length, 0) + 1
        return histogram

    def bucketed_histogram(
        self, bucket_width: int = 5, cap: int = 50
    ) -> Dict[str, int]:
        """Histogram using the bucketing of Figure 6 (1-4, 5-9, ..., 50+)."""
        buckets: Dict[str, int] = {}
        edges: List[Tuple[int, int, str]] = [(1, bucket_width - 1, f"1-{bucket_width - 1}")]
        low = bucket_width
        while low < cap:
            high = low + bucket_width - 1
            edges.append((low, high, f"{low}-{high}"))
            low += bucket_width
        edges.append((cap, 10 ** 9, f"{cap}+"))
        for _, _, name in edges:
            buckets[name] = 0
        for rule in self._rules:
            for lo, hi, name in edges:
                if lo <= rule.length <= hi:
                    buckets[name] += 1
                    break
        return buckets

    def split(self, num_groups: int) -> List["RuleSet"]:
        """Round-robin split into ``num_groups`` child rulesets (see core.partition
        for the size-balanced strategy used by the accelerator compiler)."""
        if num_groups <= 0:
            raise ValueError(f"num_groups must be positive, got {num_groups}")
        groups: List[RuleSet] = [
            RuleSet(name=f"{self.name}/part{i}") for i in range(num_groups)
        ]
        for index, rule in enumerate(self._rules):
            groups[index % num_groups].add(rule)
        return [g for g in groups if len(g) > 0]

    def summary(self) -> Dict[str, float]:
        lengths = [r.length for r in self._rules]
        if not lengths:
            return {
                "rules": 0,
                "characters": 0,
                "min_length": 0,
                "max_length": 0,
                "mean_length": 0.0,
                "unique_starting_bytes": 0,
            }
        return {
            "rules": len(lengths),
            "characters": sum(lengths),
            "min_length": min(lengths),
            "max_length": max(lengths),
            "mean_length": sum(lengths) / len(lengths),
            "unique_starting_bytes": self.unique_starting_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RuleSet(name={self.name!r}, rules={len(self)}, chars={self.total_characters})"
