"""Distribution-preserving ruleset reduction.

Section V.A: *"we created a program which reduced the number of strings by
randomly extracting strings while keeping the same character distribution"*
and Section V.E: *"we reduced the 6,275 strings from the Snort ruleset we
used until it had 19,124 characters, while keeping the original character
distribution"*.  This module implements both operations.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List

from .ruleset import PatternRule, RuleSet


def _group_by_length(ruleset: RuleSet) -> Dict[int, List[PatternRule]]:
    groups: Dict[int, List[PatternRule]] = {}
    for rule in ruleset:
        groups.setdefault(rule.length, []).append(rule)
    return groups


def reduce_ruleset(
    ruleset: RuleSet, target_count: int, seed: int = 0, name: str | None = None
) -> RuleSet:
    """Extract ``target_count`` rules while preserving the length distribution.

    Stratified sampling: every length stratum keeps a share proportional to
    its population (largest-remainder rounding), and rules within a stratum
    are chosen uniformly at random.
    """
    if target_count <= 0:
        raise ValueError(f"target_count must be positive, got {target_count}")
    if target_count > len(ruleset):
        raise ValueError(
            f"target_count {target_count} exceeds ruleset size {len(ruleset)}"
        )
    if target_count == len(ruleset):
        return RuleSet(list(ruleset), name=name or f"{ruleset.name}-reduced-{target_count}")

    rng = random.Random(seed)
    groups = _group_by_length(ruleset)
    total = len(ruleset)

    raw_share = {length: target_count * len(rules) / total for length, rules in groups.items()}
    keep = {length: int(math.floor(share)) for length, share in raw_share.items()}
    remainder = target_count - sum(keep.values())
    # Ties (equal fractional parts) break on the stratum length, never on
    # dict insertion order, so seed= fully determines the output even when
    # the same rule multiset arrives in a different order.
    by_fraction = sorted(
        raw_share.items(),
        key=lambda item: (math.floor(item[1]) - item[1], item[0]),
    )
    for length, _ in by_fraction:
        if remainder <= 0:
            break
        if keep[length] < len(groups[length]):
            keep[length] += 1
            remainder -= 1
    # If some strata were saturated, spill the remainder anywhere there is
    # room — roomiest stratum first, ties again broken by length.
    if remainder > 0:
        spill_order = sorted(
            groups, key=lambda length: (keep[length] - len(groups[length]), length)
        )
        for length in spill_order:
            while remainder > 0 and keep[length] < len(groups[length]):
                keep[length] += 1
                remainder -= 1
            if remainder == 0:
                break

    selected: List[PatternRule] = []
    for length in sorted(groups):
        count = keep.get(length, 0)
        if count <= 0:
            continue
        selected.extend(rng.sample(groups[length], count))
    selected.sort(key=lambda rule: rule.sid)
    return RuleSet(selected, name=name or f"{ruleset.name}-reduced-{target_count}")


def reduce_to_character_count(
    ruleset: RuleSet, target_characters: int, seed: int = 0, name: str | None = None
) -> RuleSet:
    """Extract rules until roughly ``target_characters`` total bytes remain.

    Used to reproduce the Table III workload (a Snort subset with 19,124
    characters).  Rules are drawn with stratified sampling so the length
    distribution is preserved; extraction stops at the rule that crosses the
    target, which leaves the total within one maximum pattern length of the
    requested count.
    """
    if target_characters <= 0:
        raise ValueError(f"target_characters must be positive, got {target_characters}")
    if target_characters >= ruleset.total_characters:
        return RuleSet(list(ruleset), name=name or f"{ruleset.name}-chars")

    rng = random.Random(seed)
    # Interleave the strata so the running selection keeps the distribution.
    groups = _group_by_length(ruleset)
    shuffled: Dict[int, List[PatternRule]] = {}
    for length, rules in groups.items():
        rules = list(rules)
        rng.shuffle(rules)
        shuffled[length] = rules

    # Probability of drawing from a stratum is proportional to its population.
    population = {length: len(rules) for length, rules in shuffled.items()}
    order: List[PatternRule] = []
    remaining = {length: list(rules) for length, rules in shuffled.items()}
    weights = dict(population)
    while any(remaining.values()):
        lengths = [length for length in remaining if remaining[length]]
        total_weight = sum(weights[length] for length in lengths)
        pick = rng.random() * total_weight
        running = 0.0
        chosen = lengths[-1]
        for length in lengths:
            running += weights[length]
            if pick <= running:
                chosen = length
                break
        order.append(remaining[chosen].pop())

    selected: List[PatternRule] = []
    characters = 0
    for rule in order:
        if characters >= target_characters:
            break
        selected.append(rule)
        characters += rule.length
    selected.sort(key=lambda rule: rule.sid)
    return RuleSet(selected, name=name or f"{ruleset.name}-{target_characters}chars")
