"""Snort-like ruleset substrate: containers, synthesis, reduction, parsing."""

from .distribution import (
    FIGURE6_DISTRIBUTION,
    PAPER_RULESET_SIZES,
    LengthDistribution,
)
from .generator import (
    ContentModel,
    ContentModelConfig,
    generate_paper_rulesets,
    generate_snort_like_ruleset,
)
from .parser import (
    ContentPattern,
    PcrePattern,
    RuleHeader,
    RuleParseError,
    RulePredicate,
    SidAllocator,
    SnortRuleSpec,
    decode_content_pattern,
    parse_pcre_option,
    parse_rule,
    parse_rules,
    render_content,
    ruleset_from_specs,
    spec_from_content,
)
from .reducer import reduce_ruleset, reduce_to_character_count
from .ruleset import PatternRule, RuleSet

__all__ = [
    "FIGURE6_DISTRIBUTION",
    "PAPER_RULESET_SIZES",
    "LengthDistribution",
    "ContentModel",
    "ContentModelConfig",
    "generate_paper_rulesets",
    "generate_snort_like_ruleset",
    "ContentPattern",
    "PcrePattern",
    "RuleHeader",
    "RuleParseError",
    "RulePredicate",
    "SidAllocator",
    "SnortRuleSpec",
    "decode_content_pattern",
    "parse_pcre_option",
    "parse_rule",
    "parse_rules",
    "render_content",
    "ruleset_from_specs",
    "spec_from_content",
    "reduce_ruleset",
    "reduce_to_character_count",
    "PatternRule",
    "RuleSet",
]
