"""Packing the compressed state machine into 324-bit memory words (Section IV.A).

States are classified into the 15 state types of :mod:`repro.core.state_types`
and assigned to memory words so that no slot is wasted inside a word (the
paper: "a state machine's states are carefully assigned a state type and
memory word after it has been built to insure no gaps of unused memory").

Each stored state consists of 12 bits of match information followed by its
transition pointers; a pointer is 24 bits — the 8-bit character needed to
follow it, the 12-bit word address of the target and the 4-bit type of the
target (the type encodes both the target's size class and its slot position,
so word address + type fully locate it).

The packer places *default target states* (the states the lookup table's
fixed addresses refer to) first, in a canonical order, so their addresses are
deterministic — this is what lets the hardware omit addresses from the
49-bit lookup-table words.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..automata.trie import ROOT
from .dtp_automaton import DTPAutomaton
from .match_memory import MatchMemory
from .state_types import (
    ADDRESS_BITS,
    CHAR_BITS,
    MATCH_INFO_BITS,
    POINTER_BITS,
    SLOTS_PER_WORD,
    WORD_BITS,
    StateType,
    slots_for_pointer_count,
    type_for_placement,
)


class PackingError(ValueError):
    """Raised when the state machine cannot be packed into the target memory."""


@dataclass
class StateRecord:
    """Everything that must be stored for one state."""

    state_id: int
    pointers: List[Tuple[int, int]]          # (character, target state id)
    match_address: Optional[int] = None      # address in the match memory

    @property
    def num_pointers(self) -> int:
        return len(self.pointers)

    @property
    def slots(self) -> int:
        return slots_for_pointer_count(self.num_pointers)


@dataclass(frozen=True)
class Placement:
    """Where a state lives: memory word plus state type (word position)."""

    word_index: int
    state_type: StateType

    @property
    def address(self) -> int:
        return self.word_index

    @property
    def type_id(self) -> int:
        return self.state_type.type_id


@dataclass
class PackedStateMachine:
    """The packed image of one string matching block's state machine."""

    records: Dict[int, StateRecord]
    placements: Dict[int, Placement]
    num_words: int
    capacity_words: Optional[int] = None

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def placement_of(self, state_id: int) -> Placement:
        return self.placements[state_id]

    def address_of(self, state_id: int) -> Tuple[int, int]:
        """(word address, type id) — what a transition pointer stores."""
        placement = self.placements[state_id]
        return placement.word_index, placement.type_id

    def states_in_word(self, word_index: int) -> List[int]:
        return [s for s, p in self.placements.items() if p.word_index == word_index]

    # ------------------------------------------------------------------
    # utilisation / accounting
    # ------------------------------------------------------------------
    def used_slots(self) -> int:
        return sum(self.placements[s].state_type.slots for s in self.placements)

    def slot_utilisation(self) -> float:
        total = self.num_words * SLOTS_PER_WORD
        return self.used_slots() / total if total else 0.0

    def memory_bits(self) -> int:
        """Bits of state-machine memory actually used (words x 324)."""
        return self.num_words * WORD_BITS

    def memory_bytes(self) -> int:
        return (self.memory_bits() + 7) // 8

    def fits(self, capacity_words: int) -> bool:
        return self.num_words <= capacity_words

    def type_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for placement in self.placements.values():
            histogram[placement.type_id] = histogram.get(placement.type_id, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # bit-level encoding
    # ------------------------------------------------------------------
    def encode_state(self, record: StateRecord, pad_lookup=None) -> int:
        """Encode one state into the low bits of its slot span.

        Unused pointer slots are padded with a *redundant but correct* pointer
        (``pad_lookup(state, char)`` must return the true next state for any
        character) so the hardware comparators can treat every slot as live;
        when no pad lookup is supplied, unused slots repeat the first stored
        pointer or, for pointer-less states, are left zeroed.
        """
        placement = self.placements[record.state_id]
        capacity = placement.state_type.max_pointers
        value = 0
        if record.match_address is not None:
            value |= 1
            value |= (record.match_address & ((1 << (MATCH_INFO_BITS - 1)) - 1)) << 1

        pointers = list(record.pointers)
        while len(pointers) < capacity:
            if pointers:
                pointers.append(pointers[0])
            elif pad_lookup is not None:
                pad_char = 0
                pointers.append((pad_char, pad_lookup(record.state_id, pad_char)))
            else:
                break
        for index, (char, target) in enumerate(pointers[:capacity]):
            word_address, type_id = self.address_of(target)
            if word_address >= (1 << ADDRESS_BITS):
                raise PackingError(
                    f"word address {word_address} does not fit in {ADDRESS_BITS} bits"
                )
            pointer_bits = (
                (char & 0xFF)
                | (word_address << CHAR_BITS)
                | (type_id << (CHAR_BITS + ADDRESS_BITS))
            )
            value |= pointer_bits << (MATCH_INFO_BITS + index * POINTER_BITS)
        return value

    def encode_words(self, pad_lookup=None) -> List[int]:
        """Produce the 324-bit word images for the whole state machine."""
        words = [0] * self.num_words
        for state_id, record in self.records.items():
            placement = self.placements[state_id]
            encoded = self.encode_state(record, pad_lookup=pad_lookup)
            words[placement.word_index] |= encoded << placement.state_type.bit_offset
        for image in words:
            if image >= (1 << WORD_BITS):
                raise PackingError("encoded word exceeds 324 bits")
        return words

    def decode_state(self, words: Sequence[int], state_id: int) -> Dict[str, object]:
        """Decode a state from word images (used by tests and the HW model)."""
        placement = self.placements[state_id]
        raw = (words[placement.word_index] >> placement.state_type.bit_offset) & (
            (1 << placement.state_type.width_bits) - 1
        )
        has_match = bool(raw & 1)
        match_address = (raw >> 1) & ((1 << (MATCH_INFO_BITS - 1)) - 1)
        pointers: List[Tuple[int, int, int]] = []
        capacity = placement.state_type.max_pointers
        for index in range(capacity):
            chunk = (raw >> (MATCH_INFO_BITS + index * POINTER_BITS)) & (
                (1 << POINTER_BITS) - 1
            )
            char = chunk & 0xFF
            address = (chunk >> CHAR_BITS) & ((1 << ADDRESS_BITS) - 1)
            type_id = chunk >> (CHAR_BITS + ADDRESS_BITS)
            if chunk != 0 or (index == 0 and capacity > 0):
                pointers.append((char, address, type_id))
        return {
            "has_match": has_match,
            "match_address": match_address if has_match else None,
            "pointers": pointers,
        }


# ----------------------------------------------------------------------
# packing algorithm
# ----------------------------------------------------------------------
@dataclass
class _OpenWord:
    """A partially filled word during packing."""

    index: int
    free_slots: List[int] = field(default_factory=lambda: list(range(SLOTS_PER_WORD)))


class _Packer:
    """Greedy, deterministic, gap-free word packer."""

    def __init__(self) -> None:
        self.placements: Dict[int, Placement] = {}
        self.next_word = 0

    def _new_word(self) -> int:
        word = self.next_word
        self.next_word += 1
        return word

    def pack_group(self, group: Sequence[StateRecord]) -> None:
        """Pack ``group`` into fresh words (words are not shared across groups)."""
        by_slots: Dict[int, List[StateRecord]] = {1: [], 3: [], 5: [], 7: [], 9: []}
        for record in group:
            by_slots[record.slots].append(record)

        singles = by_slots[1]

        def take_singles(count: int, word: int, start_slot: int) -> None:
            for offset in range(count):
                if not singles:
                    return
                record = singles.pop(0)
                self._place(record, word, 1, start_slot + offset)

        for record in by_slots[9]:
            word = self._new_word()
            self._place(record, word, 9, 0)

        for record in by_slots[7]:
            word = self._new_word()
            self._place(record, word, 7, 0)
            take_singles(2, word, 7)

        threes = by_slots[3]
        for record in by_slots[5]:
            word = self._new_word()
            self._place(record, word, 5, 0)
            if threes:
                other = threes.pop(0)
                self._place(other, word, 3, 6)
                take_singles(1, word, 5)
            else:
                take_singles(4, word, 5)

        while threes:
            word = self._new_word()
            for start in (0, 3, 6):
                if threes:
                    record = threes.pop(0)
                    self._place(record, word, 3, start)
                else:
                    take_singles(3, word, start)

        while singles:
            word = self._new_word()
            take_singles(SLOTS_PER_WORD, word, 0)

    def _place(self, record: StateRecord, word: int, slots: int, start_slot: int) -> None:
        state_type = type_for_placement(slots, start_slot)
        self.placements[record.state_id] = Placement(word_index=word, state_type=state_type)


def build_state_records(
    dtp: DTPAutomaton, match_memory: Optional[MatchMemory] = None
) -> List[StateRecord]:
    """Turn a DTP automaton (plus its match memory) into packable records."""
    records: List[StateRecord] = []
    for state_id in range(dtp.num_states):
        pointers = sorted(dtp.stored[state_id].items())
        match_address = None
        if match_memory is not None:
            match_address = match_memory.address_of(state_id)
        records.append(
            StateRecord(
                state_id=state_id,
                pointers=[(char, target) for char, target in pointers],
                match_address=match_address,
            )
        )
    return records


def default_target_order(dtp: DTPAutomaton) -> List[int]:
    """Canonical ordering of default-target states for fixed addressing.

    Depth-1 targets in character order, then depth-2 targets in (character,
    slot) order, then depth-3 targets in character order, then the root.
    A state appearing in several roles keeps its first position.
    """
    order: List[int] = []
    seen = set()

    def push(state: Optional[int]) -> None:
        if state is None or state in seen or state == ROOT:
            return
        seen.add(state)
        order.append(state)

    defaults = dtp.defaults
    for byte in range(len(defaults.d1)):
        state = int(defaults.d1[byte])
        if state != ROOT:
            push(state)
    for byte in sorted(defaults.d2):
        for entry in defaults.d2[byte]:
            push(entry.state)
    for byte in sorted(defaults.d3):
        push(defaults.d3[byte].state)
    return [ROOT] + order


def pack_state_machine(
    dtp: DTPAutomaton,
    match_memory: Optional[MatchMemory] = None,
    capacity_words: Optional[int] = None,
) -> PackedStateMachine:
    """Pack the whole automaton; raises :class:`PackingError` when it cannot fit.

    The root and every default-target state are packed first (fixed-address
    region); the remaining states follow in state-id order.
    """
    records = build_state_records(dtp, match_memory)
    record_by_id = {record.state_id: record for record in records}

    for record in records:
        if record.num_pointers > 13:
            raise PackingError(
                f"state {record.state_id} stores {record.num_pointers} pointers; "
                "the hardware handles at most 13 (Section IV.A)"
            )

    priority = default_target_order(dtp)
    priority_set = set(priority)
    rest = [record for record in records if record.state_id not in priority_set]

    packer = _Packer()
    packer.pack_group([record_by_id[s] for s in priority])
    packer.pack_group(rest)

    packed = PackedStateMachine(
        records=record_by_id,
        placements=packer.placements,
        num_words=packer.next_word,
        capacity_words=capacity_words,
    )
    if capacity_words is not None and packed.num_words > capacity_words:
        raise PackingError(
            f"state machine needs {packed.num_words} words but the block memory "
            f"holds only {capacity_words}"
        )
    if packed.num_words > (1 << ADDRESS_BITS):
        raise PackingError(
            f"state machine needs {packed.num_words} words; addresses are "
            f"{ADDRESS_BITS} bits (max {1 << ADDRESS_BITS})"
        )
    return packed
