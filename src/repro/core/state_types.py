"""The 15 state types of Figure 3.

A 324-bit memory word is divided into nine 36-bit slots.  A state occupies
1, 3, 5, 7 or 9 consecutive slots depending on how many transition pointers
it stores (each pointer is 24 bits and every state carries 12 bits of match
information, so a ``k``-slot state holds up to ``(36*k - 12) / 24`` pointers):

====================  ==========  ===============  ==================
state types           slots used  pointers stored  allowed start slot
====================  ==========  ===============  ==================
1 – 9                 1           0 – 1            0, 1, ..., 8
10 – 12               3           2 – 4            0, 3, 6
13                    5           5 – 7            0
14                    7           8 – 10           0
15                    9           11 – 13          0
====================  ==========  ===============  ==================

The *type* of a state therefore encodes both its size class and its position
inside the memory word, which is why a transition pointer only needs the
12-bit word address plus the 4-bit type to locate the target state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Bit widths of the hardware memory layout (Section IV.A).
WORD_BITS = 324
SLOT_BITS = 36
SLOTS_PER_WORD = WORD_BITS // SLOT_BITS  # 9
POINTER_BITS = 24
MATCH_INFO_BITS = 12
CHAR_BITS = 8
ADDRESS_BITS = 12
TYPE_BITS = 4

#: Size classes: slots used -> (min pointers, max pointers).
SIZE_CLASSES: Dict[int, Tuple[int, int]] = {
    1: (0, 1),
    3: (2, 4),
    5: (5, 7),
    7: (8, 10),
    9: (11, 13),
}

#: The hardware limit on pointers per state (a 9-slot state fills the word).
MAX_POINTERS_PER_STATE = SIZE_CLASSES[9][1]


@dataclass(frozen=True)
class StateType:
    """One of the 15 state types: a (size class, word position) pair."""

    type_id: int
    slots: int
    start_slot: int

    @property
    def width_bits(self) -> int:
        return self.slots * SLOT_BITS

    @property
    def bit_offset(self) -> int:
        """Offset of the state's least significant bit inside the word."""
        return self.start_slot * SLOT_BITS

    @property
    def max_pointers(self) -> int:
        return SIZE_CLASSES[self.slots][1]

    @property
    def min_pointers(self) -> int:
        return SIZE_CLASSES[self.slots][0]

    def slot_range(self) -> range:
        return range(self.start_slot, self.start_slot + self.slots)


def _build_state_types() -> Tuple[StateType, ...]:
    types: List[StateType] = []
    type_id = 1
    for start in range(SLOTS_PER_WORD):                 # types 1-9
        types.append(StateType(type_id, 1, start))
        type_id += 1
    for start in (0, 3, 6):                             # types 10-12
        types.append(StateType(type_id, 3, start))
        type_id += 1
    for slots in (5, 7, 9):                             # types 13-15
        types.append(StateType(type_id, slots, 0))
        type_id += 1
    return tuple(types)


#: All 15 state types, indexed by ``type_id - 1``.
STATE_TYPES: Tuple[StateType, ...] = _build_state_types()

#: Lookup from (slots, start_slot) to the state type.
_TYPE_BY_PLACEMENT: Dict[Tuple[int, int], StateType] = {
    (t.slots, t.start_slot): t for t in STATE_TYPES
}


def state_type(type_id: int) -> StateType:
    """Return the :class:`StateType` for a 1-based type id."""
    if not 1 <= type_id <= len(STATE_TYPES):
        raise ValueError(f"type_id must be in 1..{len(STATE_TYPES)}, got {type_id}")
    return STATE_TYPES[type_id - 1]


def type_for_placement(slots: int, start_slot: int) -> StateType:
    """Return the state type that stores a ``slots``-slot state at ``start_slot``."""
    try:
        return _TYPE_BY_PLACEMENT[(slots, start_slot)]
    except KeyError as exc:
        raise ValueError(
            f"no state type stores a {slots}-slot state at slot {start_slot}"
        ) from exc


def slots_for_pointer_count(num_pointers: int) -> int:
    """Slots needed for a state with ``num_pointers`` transition pointers."""
    if num_pointers < 0:
        raise ValueError(f"num_pointers must be non-negative, got {num_pointers}")
    for slots in sorted(SIZE_CLASSES):
        low, high = SIZE_CLASSES[slots]
        if num_pointers <= high:
            return slots
    raise ValueError(
        f"state with {num_pointers} pointers exceeds the hardware limit of "
        f"{MAX_POINTERS_PER_STATE} pointers per state"
    )


def pointer_capacity(slots: int) -> int:
    """Maximum pointers a ``slots``-slot state can hold."""
    if slots not in SIZE_CLASSES:
        raise ValueError(f"invalid slot count {slots}")
    return SIZE_CLASSES[slots][1]


def allowed_start_slots(slots: int) -> List[int]:
    """Word positions at which a ``slots``-slot state may be placed."""
    return sorted(t.start_slot for t in STATE_TYPES if t.slots == slots)
