"""The DTP-compressed Aho-Corasick automaton (the paper's core contribution).

Starting from the full move-function DFA, every transition pointer whose
target is reachable through the default-transition lookup table is removed
from the per-state pointer list.  The pruning rule, for a transition
``state --byte--> target``:

* ``depth(target) == 0`` (the root): never stored — the lookup table returns
  the root when no deeper default applies.
* ``depth(target) == 1``: never stored — the 256 depth-1 defaults cover every
  depth-1 state.
* ``depth(target) == 2``: dropped iff ``target`` is one of the (at most four)
  depth-2 defaults registered for ``byte``.
* ``depth(target) == 3``: dropped iff ``target`` is the depth-3 default
  registered for ``byte``.
* deeper targets are always stored explicitly.

Why this is safe (the argument the equivalence tests machine-check): in the
Aho-Corasick DFA the state always corresponds to the longest suffix of the
input that is a pattern prefix.  A depth-``k`` default for character ``c``
only fires when the previous ``k-1`` input bytes equal the target's preceding
characters, i.e. when that depth-``k`` prefix *is* a suffix of the input — in
which case the true DFA target is at least that deep.  Consequently a default
can never fire "too deep"; resolution order (3, then 2, then 1) picks the
deepest stored suffix, and the explicit pointer list retains every case the
table cannot express.  One character is consumed per lookup, preserving the
paper's guaranteed-rate property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..automata.aho_corasick import AhoCorasickDFA
from ..automata.trie import ALPHABET_SIZE, ROOT
from ..backend import CompiledProgramMixin, FlowState, ScanState
from .default_transitions import DefaultTransitionTable, build_default_transition_table

MatchList = List[Tuple[int, int]]

#: The hardware string matching engines handle at most 13 pointers per state
#: (Section IV.A); the packer enforces this limit.
HARDWARE_MAX_POINTERS = 13

# ``ScanState`` historically lived here; it now sits in :mod:`repro.backend`
# (shared by every backend) and the import above re-exports it for existing
# ``from repro.core.dtp_automaton import ScanState`` callers.

_CHUNK_STATES = 8192  # chunk size for the vectorised pruning pass


@dataclass
class StagedPointerCounts:
    """Stored-pointer totals for the compression stages of Figure 2 / Table II."""

    num_states: int
    original: int
    after_d1: int
    after_d1_d2: int
    after_d1_d2_d3: int

    def averages(self) -> Dict[str, float]:
        n = max(1, self.num_states)
        return {
            "original": self.original / n,
            "after_d1": self.after_d1 / n,
            "after_d1_d2": self.after_d1_d2 / n,
            "after_d1_d2_d3": self.after_d1_d2_d3 / n,
        }

    @property
    def reduction_percent(self) -> float:
        if self.original == 0:
            return 0.0
        return 100.0 * (1.0 - self.after_d1_d2_d3 / self.original)


def _default_membership_arrays(
    defaults: DefaultTransitionTable, num_states: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Map each state to the byte under which it is registered as a d2/d3 default.

    Returns two int32 arrays of length ``num_states`` holding the byte value
    or ``-1`` when the state is not a registered default of that depth.
    """
    d2_byte = np.full(num_states, -1, dtype=np.int32)
    for byte, entries in defaults.d2.items():
        for entry in entries:
            d2_byte[entry.state] = byte
    d3_byte = np.full(num_states, -1, dtype=np.int32)
    for byte, entry in defaults.d3.items():
        d3_byte[entry.state] = byte
    return d2_byte, d3_byte


def staged_pointer_counts(
    dfa: AhoCorasickDFA, defaults: DefaultTransitionTable
) -> StagedPointerCounts:
    """Count stored pointers before and after each default-insertion stage."""
    num_states = dfa.num_states
    d2_byte, d3_byte = _default_membership_arrays(defaults, num_states)
    d1_row = defaults.d1.astype(np.int64)
    columns = np.arange(ALPHABET_SIZE, dtype=np.int32)[None, :]

    original = 0
    after_d1 = 0
    after_d1_d2 = 0
    after_all = 0
    for start in range(0, num_states, _CHUNK_STATES):
        stop = min(start + _CHUNK_STATES, num_states)
        block = dfa.table[start:stop]
        non_root = block != ROOT
        target_depth = dfa.depth[block]
        original += int(non_root.sum())

        drop1 = non_root & (target_depth == 1) & (block == d1_row[None, :])
        keep1 = non_root & ~drop1
        after_d1 += int(keep1.sum())

        drop2 = keep1 & (target_depth == 2) & (d2_byte[block] == columns)
        keep2 = keep1 & ~drop2
        after_d1_d2 += int(keep2.sum())

        drop3 = keep2 & (target_depth == 3) & (d3_byte[block] == columns)
        after_all += int((keep2 & ~drop3).sum())

    return StagedPointerCounts(
        num_states=num_states,
        original=original,
        after_d1=after_d1,
        after_d1_d2=after_d1_d2,
        after_d1_d2_d3=after_all,
    )


class DTPAutomaton(CompiledProgramMixin):
    """Software model of the paper's compressed string matching automaton.

    Conforms to the :class:`repro.backend.CompiledProgram` protocol (backend
    name ``"dtp"``): the per-flow state carries the automaton state *and* the
    two-byte input history the default-transition lookup needs.

    Parameters
    ----------
    dfa:
        The move-function Aho-Corasick automaton to compress.
    defaults:
        A pre-built default transition table; built automatically when omitted.
    d2_slots, include_d2, include_d3:
        Forwarded to :func:`build_default_transition_table` when ``defaults``
        is not supplied.
    """

    backend_name = "dtp"

    def __init__(
        self,
        dfa: AhoCorasickDFA,
        defaults: Optional[DefaultTransitionTable] = None,
        d2_slots: int = 4,
        include_d2: bool = True,
        include_d3: bool = True,
        max_stored_pointers: Optional[int] = None,
    ):
        self.dfa = dfa
        self.defaults = defaults or build_default_transition_table(
            dfa,
            d2_slots=d2_slots,
            include_d2=include_d2,
            include_d3=include_d3,
            max_stored_pointers=max_stored_pointers,
        )
        self.outputs = dfa.outputs
        self.depth = dfa.depth
        self.num_states = dfa.num_states
        self.stored: List[Dict[int, int]] = [dict() for _ in range(self.num_states)]
        self._build_stored_pointers()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_patterns(cls, patterns: Sequence[bytes], **kwargs) -> "DTPAutomaton":
        return cls(AhoCorasickDFA.from_patterns(patterns), **kwargs)

    @classmethod
    def from_ruleset(cls, ruleset, **kwargs) -> "DTPAutomaton":
        """Build from a :class:`repro.rulesets.RuleSet`."""
        return cls.from_patterns(ruleset.patterns, **kwargs)

    def _build_stored_pointers(self) -> None:
        dfa = self.dfa
        defaults = self.defaults
        num_states = self.num_states
        d2_byte, d3_byte = _default_membership_arrays(defaults, num_states)
        d1_row = defaults.d1.astype(np.int64)
        columns = np.arange(ALPHABET_SIZE, dtype=np.int32)[None, :]

        for start in range(0, num_states, _CHUNK_STATES):
            stop = min(start + _CHUNK_STATES, num_states)
            block = dfa.table[start:stop]
            non_root = block != ROOT
            target_depth = dfa.depth[block]

            drop = non_root & (target_depth == 1) & (block == d1_row[None, :])
            drop |= non_root & (target_depth == 2) & (d2_byte[block] == columns)
            drop |= non_root & (target_depth == 3) & (d3_byte[block] == columns)
            keep = non_root & ~drop

            rows, cols = np.nonzero(keep)
            targets = block[rows, cols]
            stored = self.stored
            for row, col, target in zip(rows.tolist(), cols.tolist(), targets.tolist()):
                stored[start + row][col] = target

    # ------------------------------------------------------------------
    # transition / matching
    # ------------------------------------------------------------------
    def step(
        self, state: int, byte: int, prev1: Optional[int], prev2: Optional[int]
    ) -> int:
        """One transition: explicit pointer first, lookup-table default otherwise."""
        target = self.stored[state].get(byte)
        if target is not None:
            return target
        return self.defaults.resolve(byte, prev1, prev2)

    def match(self, data: bytes) -> MatchList:
        """Scan one packet payload; history resets at the packet boundary."""
        matches, _ = self._scan_chunk((ScanState(),), data)
        return matches

    def initial_scan_state(self) -> ScanState:
        """The state a fresh flow starts in (root state, empty byte history)."""
        return ScanState()

    @property
    def patterns(self) -> Tuple[bytes, ...]:
        """The compiled patterns; pattern ids index this tuple."""
        return tuple(self.dfa.trie.patterns)

    def _scan_chunk(self, states: FlowState, chunk: bytes) -> Tuple[MatchList, FlowState]:
        """Scan ``chunk`` resuming from ``states``; return matches + new state.

        Feeding the segments of one byte stream through consecutive
        :meth:`scan_from` calls is exactly equivalent to one :meth:`match`
        over the concatenated stream: the returned state carries the
        automaton state *and* the two-byte history the default-transition
        lookup needs, so patterns straddling a segment boundary are still
        found.  Match end offsets are stream-absolute (``offset`` + position
        in ``chunk``).
        """
        (scan_state,) = states
        matches: MatchList = []
        state = scan_state.state
        prev1 = scan_state.prev1
        prev2 = scan_state.prev2
        base = scan_state.offset
        outputs = self.outputs
        for position, byte in enumerate(chunk):
            state = self.step(state, byte, prev1, prev2)
            if outputs[state]:
                matches.extend((base + position + 1, pid) for pid in outputs[state])
            prev2 = prev1
            prev1 = byte
        return matches, (
            ScanState(state=state, prev1=prev1, prev2=prev2, offset=base + len(chunk)),
        )

    def iter_states(self, data: bytes) -> Iterator[int]:
        """Yield the state after each byte (mirrors ``AhoCorasickDFA.iter_states``)."""
        state = ROOT
        prev1: Optional[int] = None
        prev2: Optional[int] = None
        for byte in data:
            state = self.step(state, byte, prev1, prev2)
            yield state
            prev2 = prev1
            prev1 = byte

    def scan_packets(self, payloads: Iterable[bytes]) -> List[MatchList]:
        """Scan several packets; the automaton state and history reset per packet."""
        return [self.match(payload) for payload in payloads]

    def verify_equivalence(self, data: bytes) -> bool:
        """Check state-by-state agreement with the uncompressed DFA on ``data``."""
        for ours, reference in zip(self.iter_states(data), self.dfa.iter_states(data)):
            if ours != reference:
                return False
        return True

    # ------------------------------------------------------------------
    # statistics / memory accounting
    # ------------------------------------------------------------------
    def stored_pointer_count(self) -> int:
        return sum(len(pointers) for pointers in self.stored)

    def average_stored_pointers(self) -> float:
        return self.stored_pointer_count() / self.num_states

    def memory_bytes(self, pointer_bytes: int = 4) -> int:
        """Footprint storing one pointer per retained transition (cf. Table II)."""
        return self.stored_pointer_count() * pointer_bytes

    def pointer_count_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for pointers in self.stored:
            count = len(pointers)
            histogram[count] = histogram.get(count, 0) + 1
        return histogram

    def max_pointers_per_state(self) -> int:
        return max((len(p) for p in self.stored), default=0)

    def states_exceeding(self, limit: int = HARDWARE_MAX_POINTERS) -> List[int]:
        """State ids whose stored pointer count exceeds the hardware limit."""
        return [s for s, pointers in enumerate(self.stored) if len(pointers) > limit]

    def staged_counts(self) -> StagedPointerCounts:
        return staged_pointer_counts(self.dfa, self.defaults)

    def reduction_percent(self) -> float:
        """Pointer reduction relative to the original move-function automaton."""
        original = self.dfa.stored_pointer_count()
        if original == 0:
            return 0.0
        return 100.0 * (1.0 - self.stored_pointer_count() / original)

    def matching_states(self) -> List[int]:
        return [s for s in range(self.num_states) if self.outputs[s]]
