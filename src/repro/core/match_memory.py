"""Matching-string-number memory (Section IV.B).

Each string matching block owns a memory of 2,048 words x 27 bits, separate
from the state machine memory so that reading out match identifiers never
stalls packet scanning.  Every word holds two 13-bit string numbers plus one
bit that marks the final word of a state's match list.  A matching state's
12 bits of match information are one valid bit plus the 11-bit address of the
first word of its list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Geometry from the paper.
MATCH_MEMORY_WORDS = 2048
MATCH_WORD_BITS = 27
STRING_NUMBER_BITS = 13
NUMBERS_PER_WORD = 2
MATCH_ADDRESS_BITS = 11

#: Sentinel stored in an unused half-word (all ones is never a valid string id
#: because string numbers are limited to 13 bits minus the sentinel).
EMPTY_SLOT = (1 << STRING_NUMBER_BITS) - 1
MAX_STRING_NUMBER = EMPTY_SLOT - 1


class MatchMemoryError(ValueError):
    """Raised when the match lists cannot be encoded in the fixed memory."""


@dataclass
class MatchMemory:
    """The per-block matching-string-number memory image."""

    words: List[Tuple[int, int, bool]] = field(default_factory=list)
    #: state id -> first word address of its match list
    state_address: Dict[int, int] = field(default_factory=dict)
    capacity_words: int = MATCH_MEMORY_WORDS

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        matches_by_state: Mapping[int, Sequence[int]],
        capacity_words: int = MATCH_MEMORY_WORDS,
    ) -> "MatchMemory":
        """Lay out the match lists of every matching state.

        ``matches_by_state`` maps a state id to the string numbers (rule
        indices) reported when the state is reached.
        """
        memory = cls(capacity_words=capacity_words)
        for state in sorted(matches_by_state):
            numbers = list(matches_by_state[state])
            if not numbers:
                continue
            for number in numbers:
                if not 0 <= number <= MAX_STRING_NUMBER:
                    raise MatchMemoryError(
                        f"string number {number} does not fit in "
                        f"{STRING_NUMBER_BITS} bits (max {MAX_STRING_NUMBER})"
                    )
            memory.state_address[state] = len(memory.words)
            for index in range(0, len(numbers), NUMBERS_PER_WORD):
                chunk = numbers[index:index + NUMBERS_PER_WORD]
                first = chunk[0]
                second = chunk[1] if len(chunk) > 1 else EMPTY_SLOT
                last = index + NUMBERS_PER_WORD >= len(numbers)
                memory.words.append((first, second, last))
        if len(memory.words) > memory.capacity_words:
            raise MatchMemoryError(
                f"match lists need {len(memory.words)} words but the memory "
                f"holds only {memory.capacity_words}"
            )
        if memory.words and len(memory.words) - 1 >= (1 << MATCH_ADDRESS_BITS):
            raise MatchMemoryError(
                f"match memory addresses exceed {MATCH_ADDRESS_BITS} bits"
            )
        return memory

    # ------------------------------------------------------------------
    # queries (what the match scheduler does in hardware)
    # ------------------------------------------------------------------
    def read_list(self, address: int) -> List[int]:
        """Read string numbers starting at ``address`` until the stop bit."""
        if not 0 <= address < len(self.words):
            raise IndexError(f"match memory address {address} out of range")
        numbers: List[int] = []
        cursor = address
        while True:
            first, second, last = self.words[cursor]
            numbers.append(first)
            if second != EMPTY_SLOT:
                numbers.append(second)
            if last:
                return numbers
            cursor += 1

    def words_read(self, address: int) -> int:
        """Number of memory reads the scheduler issues for the list at ``address``."""
        count = 0
        cursor = address
        while True:
            count += 1
            if self.words[cursor][2]:
                return count
            cursor += 1

    def address_of(self, state: int) -> Optional[int]:
        return self.state_address.get(state)

    # ------------------------------------------------------------------
    # memory accounting / encoding
    # ------------------------------------------------------------------
    @property
    def used_words(self) -> int:
        return len(self.words)

    def utilisation(self) -> float:
        return self.used_words / self.capacity_words if self.capacity_words else 0.0

    def memory_bits(self, count_full_capacity: bool = True) -> int:
        """Footprint in bits; the paper reserves the full 2,048-word memory."""
        words = self.capacity_words if count_full_capacity else self.used_words
        return words * MATCH_WORD_BITS

    def memory_bytes(self, count_full_capacity: bool = True) -> int:
        return (self.memory_bits(count_full_capacity) + 7) // 8

    def encode_words(self) -> List[int]:
        """Bit-exact 27-bit word images (low 13 bits: first id, next 13: second, MSB: stop)."""
        images: List[int] = []
        for first, second, last in self.words:
            images.append(first | (second << STRING_NUMBER_BITS) | (int(last) << 26))
        return images

    @staticmethod
    def decode_word(image: int) -> Tuple[int, int, bool]:
        first = image & ((1 << STRING_NUMBER_BITS) - 1)
        second = (image >> STRING_NUMBER_BITS) & ((1 << STRING_NUMBER_BITS) - 1)
        last = bool((image >> 26) & 1)
        return first, second, last
