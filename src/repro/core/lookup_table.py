"""Encoding of the default-transition lookup table (Section IV.B).

The hardware lookup table has 256 words of 49 bits, one word per input
character value:

* 1 bit  — whether the depth-1 default points to a real depth-1 state (if
  clear, the depth-1 default is the start state);
* 4 x 8 bits — the preceding-state character values of up to four depth-2
  defaults;
* 2 x 8 bits — the characters of the two states preceding the depth-3
  default.

Default pointers do not store target addresses: each default points to a
*fixed address* in state machine memory (the compiler places the default
target states at reserved, deterministic positions and the per-character
address map is burned into the engine logic).  This module produces both the
49-bit word images and that compile-time address map.

A bit-exact hardware realisation also needs to know which of the depth-2/3
slots are populated; the paper's 49-bit figure does not include explicit
valid bits (unused slots can be made harmless by pointing their fixed
addresses at a copy of the depth-1 default state).  We keep validity as
out-of-band metadata (``d2_valid`` / ``d3_valid``) and report the paper's
49-bit accounting for comparability; see EXPERIMENTS.md, "known deviations".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..automata.trie import ALPHABET_SIZE, ROOT
from .default_transitions import DefaultTransitionTable

LOOKUP_TABLE_WORDS = ALPHABET_SIZE
LOOKUP_WORD_BITS = 49
D2_SLOTS_ENCODED = 4


@dataclass
class EncodedLookupTable:
    """The 256 x 49-bit lookup table plus the fixed-address map."""

    words: List[int]
    d2_valid: List[Tuple[bool, bool, bool, bool]]
    d3_valid: List[bool]
    #: per-character state ids the fixed addresses refer to
    d1_state: List[int]
    d2_states: List[Tuple[Optional[int], ...]]
    d3_state: List[Optional[int]]

    # ------------------------------------------------------------------
    def memory_bits(self) -> int:
        return LOOKUP_TABLE_WORDS * LOOKUP_WORD_BITS

    def memory_bytes(self) -> int:
        return (self.memory_bits() + 7) // 8

    # ------------------------------------------------------------------
    def decode_word(self, byte: int) -> Dict[str, object]:
        """Decode the word for character ``byte`` back into its fields."""
        word = self.words[byte]
        d1_valid = bool(word & 1)
        d2_chars = [(word >> (1 + 8 * slot)) & 0xFF for slot in range(D2_SLOTS_ENCODED)]
        d3_prev2 = (word >> 33) & 0xFF
        d3_prev1 = (word >> 41) & 0xFF
        return {
            "d1_valid": d1_valid,
            "d2_preceding": d2_chars,
            "d3_preceding": (d3_prev2, d3_prev1),
        }

    def resolve(
        self, byte: int, prev1: Optional[int], prev2: Optional[int]
    ) -> int:
        """Hardware-level default resolution using the encoded words.

        Mirrors :meth:`DefaultTransitionTable.resolve` but goes through the
        49-bit encoding and the fixed-address map, so tests can prove the
        encoding lossless for resolution purposes.
        """
        fields = self.decode_word(byte)
        if (
            self.d3_valid[byte]
            and prev2 == fields["d3_preceding"][0]
            and prev1 == fields["d3_preceding"][1]
        ):
            state = self.d3_state[byte]
            assert state is not None
            return state
        for slot, preceding in enumerate(fields["d2_preceding"]):
            if self.d2_valid[byte][slot] and prev1 == preceding:
                state = self.d2_states[byte][slot]
                assert state is not None
                return state
        if fields["d1_valid"]:
            return self.d1_state[byte]
        return ROOT


def encode_lookup_table(defaults: DefaultTransitionTable) -> EncodedLookupTable:
    """Produce the 256 x 49-bit image of ``defaults``."""
    if defaults.d2_slots > D2_SLOTS_ENCODED:
        raise ValueError(
            f"hardware lookup table encodes at most {D2_SLOTS_ENCODED} depth-2 "
            f"defaults per character, table uses {defaults.d2_slots}"
        )
    words: List[int] = []
    d2_valid: List[Tuple[bool, bool, bool, bool]] = []
    d3_valid: List[bool] = []
    d1_state: List[int] = []
    d2_states: List[Tuple[Optional[int], ...]] = []
    d3_state: List[Optional[int]] = []

    for byte in range(ALPHABET_SIZE):
        word = 0
        depth1 = int(defaults.d1[byte])
        if depth1 != ROOT:
            word |= 1
        d1_state.append(depth1)

        entries = defaults.d2.get(byte, [])
        valid_flags = [False] * D2_SLOTS_ENCODED
        slot_states: List[Optional[int]] = [None] * D2_SLOTS_ENCODED
        for slot, entry in enumerate(entries[:D2_SLOTS_ENCODED]):
            word |= (entry.preceding_byte & 0xFF) << (1 + 8 * slot)
            valid_flags[slot] = True
            slot_states[slot] = entry.state
        d2_valid.append(tuple(valid_flags))
        d2_states.append(tuple(slot_states))

        entry3 = defaults.d3.get(byte)
        if entry3 is not None:
            word |= (entry3.preceding_bytes[0] & 0xFF) << 33
            word |= (entry3.preceding_bytes[1] & 0xFF) << 41
            d3_valid.append(True)
            d3_state.append(entry3.state)
        else:
            d3_valid.append(False)
            d3_state.append(None)

        if word >= (1 << LOOKUP_WORD_BITS):
            raise AssertionError("lookup word exceeds 49 bits")
        words.append(word)

    return EncodedLookupTable(
        words=words,
        d2_valid=d2_valid,
        d3_valid=d3_valid,
        d1_state=d1_state,
        d2_states=d2_states,
        d3_state=d3_state,
    )
