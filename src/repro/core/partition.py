"""Splitting a ruleset across string matching blocks (Section IV.B / V.C).

Large rulesets do not fit into a single block's state machine memory, so the
strings are divided into groups and each group's state machine is loaded into
a separate block; the blocks in a group then scan the *same* packet together,
dividing the accelerator's aggregate throughput by the group size.

Two strategies are provided:

* ``"prefix"`` (default) — strings that share a first byte are kept in the
  same group whenever possible.  Shared prefixes then share trie states, which
  minimises the total number of states created by the split (the paper notes
  the split only adds a handful of states, e.g. 109,467 -> 109,638 for six
  blocks).
* ``"balanced"`` — plain greedy balancing on total characters, ignoring
  prefix sharing; used as an ablation baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..rulesets.ruleset import PatternRule, RuleSet


@dataclass
class PartitionPlan:
    """The result of splitting a ruleset into block-sized groups."""

    groups: List[RuleSet]
    strategy: str

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def group_sizes(self) -> List[int]:
        return [len(group) for group in self.groups]

    def group_characters(self) -> List[int]:
        return [group.total_characters for group in self.groups]

    def imbalance(self) -> float:
        """Max/mean character imbalance across groups (1.0 = perfectly even)."""
        characters = self.group_characters()
        mean = sum(characters) / len(characters)
        return max(characters) / mean if mean else 1.0


def _greedy_assign(
    items: Sequence[Tuple[int, List[PatternRule]]], num_groups: int
) -> List[List[PatternRule]]:
    """Assign weighted item bundles to the currently lightest group."""
    bins: List[List[PatternRule]] = [[] for _ in range(num_groups)]
    weights = [0] * num_groups
    for weight, rules in sorted(items, key=lambda item: item[0], reverse=True):
        target = min(range(num_groups), key=lambda g: weights[g])
        bins[target].extend(rules)
        weights[target] += weight
    return bins


def partition_ruleset(
    ruleset: RuleSet, num_groups: int, strategy: str = "prefix"
) -> PartitionPlan:
    """Split ``ruleset`` into ``num_groups`` groups for separate blocks."""
    if num_groups <= 0:
        raise ValueError(f"num_groups must be positive, got {num_groups}")
    if len(ruleset) == 0:
        raise ValueError("cannot partition an empty ruleset")
    if num_groups > len(ruleset):
        raise ValueError(
            f"cannot split {len(ruleset)} rules into {num_groups} non-empty groups"
        )
    if strategy not in ("prefix", "balanced"):
        raise ValueError(f"unknown partition strategy {strategy!r}")

    if num_groups == 1:
        return PartitionPlan(groups=[RuleSet(list(ruleset), name=f"{ruleset.name}/g0")],
                             strategy=strategy)

    if strategy == "prefix":
        clusters: Dict[int, List[PatternRule]] = {}
        for rule in ruleset:
            clusters.setdefault(rule.pattern[0], []).append(rule)
        items = [
            (sum(r.length for r in rules), rules) for rules in clusters.values()
        ]
        # A cluster larger than the ideal share would defeat balancing; break
        # oversized clusters up by second byte.
        ideal = ruleset.total_characters / num_groups
        refined: List[Tuple[int, List[PatternRule]]] = []
        for weight, rules in items:
            if weight <= ideal * 1.25 or len(rules) == 1:
                refined.append((weight, rules))
                continue
            sub: Dict[int, List[PatternRule]] = {}
            for rule in rules:
                key = rule.pattern[1] if rule.length > 1 else -1
                sub.setdefault(key, []).append(rule)
            refined.extend(
                (sum(r.length for r in sub_rules), sub_rules) for sub_rules in sub.values()
            )
        bins = _greedy_assign(refined, num_groups)
    else:
        items = [(rule.length, [rule]) for rule in ruleset]
        bins = _greedy_assign(items, num_groups)

    groups = []
    for index, rules in enumerate(bins):
        if not rules:
            raise ValueError(
                f"partitioning produced an empty group ({num_groups} groups for "
                f"{len(ruleset)} rules); use fewer groups"
            )
        rules = sorted(rules, key=lambda r: r.sid)
        groups.append(RuleSet(rules, name=f"{ruleset.name}/g{index}"))
    return PartitionPlan(groups=groups, strategy=strategy)
