"""End-to-end compiler: ruleset -> per-block memory images -> accelerator program.

This is the software pipeline a user of the accelerator would run at rule
update time:

1. split the ruleset into as few groups as fit a block's state machine memory
   (Section IV.B / V.C);
2. for every group, build the Aho-Corasick DFA, select default transition
   pointers, prune the per-state pointers (:mod:`repro.core.dtp_automaton`);
3. lay out the match-number memory, pack states into 324-bit words and encode
   the lookup table;
4. report the Table II statistics (states, average pointers, memory bytes,
   throughput) for the resulting configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..automata.aho_corasick import AhoCorasickDFA
from ..backend import CompiledProgramMixin, FlowState
from ..fpga.devices import FPGADevice
from ..fpga.throughput import accelerator_throughput_gbps
from ..rulesets.ruleset import RuleSet
from .default_transitions import build_default_transition_table
from .dtp_automaton import (
    HARDWARE_MAX_POINTERS,
    DTPAutomaton,
    ScanState,
    StagedPointerCounts,
)
from .lookup_table import EncodedLookupTable, encode_lookup_table
from .match_memory import MATCH_MEMORY_WORDS, MatchMemory
from .memory_layout import PackedStateMachine, PackingError, pack_state_machine
from .partition import PartitionPlan, partition_ruleset
from .state_types import SLOTS_PER_WORD

MatchList = List[Tuple[int, int]]


class CompilationError(ValueError):
    """Raised when a ruleset cannot be compiled onto the target device."""


@dataclass
class BlockProgram:
    """Everything loaded into one string matching block."""

    index: int
    ruleset: RuleSet
    dtp: DTPAutomaton
    packed: PackedStateMachine
    lookup: EncodedLookupTable
    match_memory: MatchMemory
    #: local pattern id -> global string number reported to the host
    string_numbers: Dict[int, int]

    @property
    def num_states(self) -> int:
        return self.dtp.num_states

    @property
    def stored_pointers(self) -> int:
        return self.dtp.stored_pointer_count()

    @property
    def words_used(self) -> int:
        return self.packed.num_words

    def memory_bits(self) -> int:
        """State machine (used words) + match memory + lookup table."""
        return (
            self.packed.memory_bits()
            + self.match_memory.memory_bits()
            + self.lookup.memory_bits()
        )

    def memory_bytes(self) -> int:
        return (self.memory_bits() + 7) // 8

    def match(self, payload: bytes) -> MatchList:
        """Scan a payload, reporting (end_position, global string number)."""
        return [
            (position, self.string_numbers[pattern_id])
            for position, pattern_id in self.dtp.match(payload)
        ]

    def scan_from(
        self, scan_state: ScanState, chunk: bytes
    ) -> Tuple[MatchList, ScanState]:
        """Resumable scan (see :meth:`DTPAutomaton.scan_from`), global numbers."""
        raw, next_state = self.dtp.scan_from(scan_state, chunk)
        return (
            [(position, self.string_numbers[pattern_id]) for position, pattern_id in raw],
            next_state,
        )


@dataclass
class AcceleratorProgram(CompiledProgramMixin):
    """A compiled accelerator configuration for one device.

    Conforms to the :class:`repro.backend.CompiledProgram` protocol (backend
    name ``"dtp"``): the per-flow state is one :class:`ScanState` per block
    of the group, since every block holds a disjoint string group and scans
    the whole byte stream.
    """

    device: FPGADevice
    ruleset: RuleSet
    blocks: List[BlockProgram]
    partition: PartitionPlan
    d2_slots: int = 4

    backend_name = "dtp"

    @property
    def blocks_per_group(self) -> int:
        return len(self.blocks)

    @property
    def packet_groups(self) -> int:
        """Independent packet streams the device can scan concurrently."""
        return self.device.num_matching_blocks // self.blocks_per_group

    @property
    def throughput_gbps(self) -> float:
        return accelerator_throughput_gbps(
            self.device.memory_fmax_mhz,
            self.device.num_matching_blocks,
            self.blocks_per_group,
        )

    @property
    def total_states(self) -> int:
        return sum(block.num_states for block in self.blocks)

    @property
    def total_stored_pointers(self) -> int:
        return sum(block.stored_pointers for block in self.blocks)

    @property
    def average_stored_pointers(self) -> float:
        states = self.total_states
        return self.total_stored_pointers / states if states else 0.0

    def total_memory_bytes(self) -> int:
        return sum(block.memory_bytes() for block in self.blocks)

    def staged_counts(self) -> StagedPointerCounts:
        """Aggregate staged pointer counts over all blocks (Table II columns)."""
        totals = StagedPointerCounts(0, 0, 0, 0, 0)
        for block in self.blocks:
            staged = block.dtp.staged_counts()
            totals.num_states += staged.num_states
            totals.original += staged.original
            totals.after_d1 += staged.after_d1
            totals.after_d1_d2 += staged.after_d1_d2
            totals.after_d1_d2_d3 += staged.after_d1_d2_d3
        return totals

    def default_pointer_counts(self) -> Dict[str, int]:
        """Numbers of default pointers summed over blocks (Table II d1/d2/d3 rows)."""
        d1 = sum(block.dtp.defaults.num_d1 for block in self.blocks)
        d2 = sum(block.dtp.defaults.num_d2 for block in self.blocks)
        d3 = sum(block.dtp.defaults.num_d3 for block in self.blocks)
        return {"d1": d1, "d1+d2": d1 + d2, "d1+d2+d3": d1 + d2 + d3}

    # ------------------------------------------------------------------
    # functional scanning (software reference for the hardware simulation)
    # ------------------------------------------------------------------
    @property
    def patterns(self) -> Tuple[bytes, ...]:
        """The compiled patterns; string numbers index this tuple."""
        return tuple(rule.pattern for rule in self.ruleset)

    def match(self, payload: bytes) -> MatchList:
        """Scan one payload against the full ruleset (all blocks of one group)."""
        matches: MatchList = []
        for block in self.blocks:
            matches.extend(block.match(payload))
        matches.sort()
        return matches

    def scan_packets(self, payloads: Iterable[bytes]) -> List[MatchList]:
        return [self.match(payload) for payload in payloads]

    # ------------------------------------------------------------------
    # streaming (flow-oriented) scanning
    # ------------------------------------------------------------------
    @property
    def scan_units(self) -> int:
        """One resumable :class:`ScanState` per block of the group."""
        return len(self.blocks)

    def _scan_chunk(self, states: FlowState, chunk: bytes) -> Tuple[MatchList, FlowState]:
        """Scan one segment of a flow, resuming every block from ``states``.

        Returns stream-absolute ``(end_offset, string_number)`` matches plus
        the per-block states to carry into the flow's next segment.  Chunked
        scanning is equivalent to :meth:`match` over the concatenated stream.
        """
        if len(states) != len(self.blocks):
            raise ValueError(
                f"expected {len(self.blocks)} per-block scan states, got {len(states)}"
            )
        matches: MatchList = []
        next_states: List[ScanState] = []
        for block, state in zip(self.blocks, states):
            block_matches, next_state = block.scan_from(state, chunk)
            matches.extend(block_matches)
            next_states.append(next_state)
        matches.sort()
        return matches, tuple(next_states)

    def string_number_to_sid(self) -> Dict[int, int]:
        """Map global string numbers back to rule sids."""
        return {index: rule.sid for index, rule in enumerate(self.ruleset)}


def _compile_block(
    index: int,
    group: RuleSet,
    global_index: Dict[bytes, int],
    device: FPGADevice,
    d2_slots: int,
    include_d2: bool,
    include_d3: bool,
) -> BlockProgram:
    dfa = AhoCorasickDFA.from_patterns(group.patterns)
    defaults = build_default_transition_table(
        dfa,
        d2_slots=d2_slots,
        include_d2=include_d2,
        include_d3=include_d3,
        max_stored_pointers=HARDWARE_MAX_POINTERS if include_d2 or include_d3 else None,
    )
    dtp = DTPAutomaton(dfa, defaults=defaults)

    string_numbers = {
        local_id: global_index[rule.pattern] for local_id, rule in enumerate(group)
    }
    matches_by_state = {
        state: [string_numbers[pid] for pid in dtp.outputs[state]]
        for state in dtp.matching_states()
    }
    match_memory = MatchMemory.build(matches_by_state, capacity_words=MATCH_MEMORY_WORDS)
    packed = pack_state_machine(
        dtp, match_memory=match_memory, capacity_words=device.state_machine_words
    )
    lookup = encode_lookup_table(defaults)
    return BlockProgram(
        index=index,
        ruleset=group,
        dtp=dtp,
        packed=packed,
        lookup=lookup,
        match_memory=match_memory,
        string_numbers=string_numbers,
    )


def _estimate_groups(ruleset: RuleSet, device: FPGADevice) -> int:
    """Cheap lower-bound estimate of the number of blocks needed."""
    from ..automata.trie import Trie

    trie = Trie.from_patterns(ruleset.patterns)
    # Most states store 0-1 pointers (one slot); assume a conservative average
    # of 1.5 slots per state for the initial guess, then let packing decide.
    estimated_slots = int(trie.num_states * 1.5)
    capacity_slots = device.state_machine_words * SLOTS_PER_WORD
    return max(1, math.ceil(estimated_slots / capacity_slots))


def compile_ruleset(
    ruleset: RuleSet,
    device: FPGADevice,
    blocks_per_group: Optional[int] = None,
    d2_slots: int = 4,
    include_d2: bool = True,
    include_d3: bool = True,
    partition_strategy: Optional[str] = None,
) -> AcceleratorProgram:
    """Compile ``ruleset`` for ``device``.

    When ``blocks_per_group`` is omitted the compiler finds the smallest
    number of blocks whose memories hold the ruleset, starting from a
    state-count estimate and growing on :class:`PackingError` — mirroring the
    paper's "split the strings into groups until each group fits" procedure.

    When ``partition_strategy`` is omitted the compiler first tries the
    state-sharing ``"prefix"`` split and falls back to the ``"balanced"``
    split (which scatters shared prefixes and therefore lowers per-block
    branching) before adding another block — see
    :mod:`repro.core.partition`.
    """
    if len(ruleset) == 0:
        raise CompilationError("cannot compile an empty ruleset")
    global_index = {rule.pattern: index for index, rule in enumerate(ruleset)}

    candidates: Sequence[int]
    if blocks_per_group is not None:
        if blocks_per_group <= 0:
            raise CompilationError(f"blocks_per_group must be positive, got {blocks_per_group}")
        if blocks_per_group > device.num_matching_blocks:
            raise CompilationError(
                f"requested {blocks_per_group} blocks per group but {device.family} "
                f"hosts only {device.num_matching_blocks} blocks"
            )
        candidates = [blocks_per_group]
    else:
        start = min(_estimate_groups(ruleset, device), device.num_matching_blocks)
        candidates = range(start, device.num_matching_blocks + 1)

    strategies = (
        [partition_strategy] if partition_strategy is not None else ["prefix", "balanced"]
    )
    last_error: Optional[Exception] = None
    for groups in candidates:
        if groups > len(ruleset):
            break
        for strategy in strategies:
            plan = partition_ruleset(ruleset, groups, strategy=strategy)
            try:
                blocks = [
                    _compile_block(
                        index, group, global_index, device, d2_slots, include_d2, include_d3
                    )
                    for index, group in enumerate(plan.groups)
                ]
            except (PackingError, ValueError) as error:
                last_error = error
                continue
            return AcceleratorProgram(
                device=device,
                ruleset=ruleset,
                blocks=blocks,
                partition=plan,
                d2_slots=d2_slots,
            )

    raise CompilationError(
        f"ruleset {ruleset.name!r} ({len(ruleset)} rules, "
        f"{ruleset.total_characters} characters) does not fit on {device.family} "
        f"with {device.num_matching_blocks} blocks: {last_error}"
    )
