"""Default Transition Pointer (DTP) selection — Section III.B of the paper.

The key observation: in an Aho-Corasick move-function DFA built from IDS
strings, the overwhelming majority of transition pointers target a small set
of states close to the start state.  Those pointers are removed from the
per-state pointer lists and replaced by *default transition pointers* kept in
a 256-entry lookup table indexed by the input character:

* **depth-1 defaults** — one per character value: the depth-1 state for that
  character (or the start state when no pattern starts with it).  At most 256
  entries cover *every* depth-1 state.
* **depth-2 defaults** — up to four per character value (the paper found four
  to be optimal): the most commonly pointed-to depth-2 states whose final
  character is that value.  Each entry additionally records the character of
  the preceding state, which is compared against the previous input byte.
* **depth-3 defaults** — one per character value: the most commonly
  pointed-to depth-3 state ending in that value, recording the characters of
  the two preceding states, compared against the previous two input bytes.

Resolution order is depth 3, then depth 2, then depth 1 — i.e. deepest
matching default wins, which mirrors the Aho-Corasick longest-suffix rule and
is what makes dropping the explicit pointers safe (see
:mod:`repro.core.dtp_automaton` for the pruning rule and the equivalence
tests for the machine-checked argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..automata.aho_corasick import AhoCorasickDFA
from ..automata.trie import ALPHABET_SIZE, ROOT


@dataclass(frozen=True)
class DepthTwoDefault:
    """A depth-2 default transition pointer."""

    byte: int            # final character of the target state
    preceding_byte: int  # character of the preceding (depth-1) state
    state: int           # target state id
    popularity: int      # in-degree in the full DFA (selection metric)


@dataclass(frozen=True)
class DepthThreeDefault:
    """A depth-3 default transition pointer."""

    byte: int
    preceding_bytes: Tuple[int, int]  # (depth-1 char, depth-2 char) of the path
    state: int
    popularity: int


@dataclass
class DefaultTransitionTable:
    """The lookup table of default transition pointers.

    ``d1[c]`` is the depth-1 state for character ``c`` or ``ROOT``;
    ``d2[c]`` is the (possibly empty) list of depth-2 defaults for ``c``;
    ``d3[c]`` is the single depth-3 default for ``c`` or ``None``.
    """

    d1: np.ndarray
    d2: Dict[int, List[DepthTwoDefault]] = field(default_factory=dict)
    d3: Dict[int, DepthThreeDefault] = field(default_factory=dict)
    d2_slots: int = 4

    # ------------------------------------------------------------------
    # counting (Table II columns "d1", "d1+d2", "d1+d2+d3")
    # ------------------------------------------------------------------
    @property
    def num_d1(self) -> int:
        """Number of depth-1 defaults that point to a real state (not the root)."""
        return int(np.count_nonzero(self.d1 != ROOT))

    @property
    def num_d2(self) -> int:
        return sum(len(entries) for entries in self.d2.values())

    @property
    def num_d3(self) -> int:
        return len(self.d3)

    @property
    def total_defaults(self) -> int:
        return self.num_d1 + self.num_d2 + self.num_d3

    # ------------------------------------------------------------------
    # membership sets used by the pruning pass
    # ------------------------------------------------------------------
    def depth1_states(self) -> List[int]:
        return [int(s) for s in self.d1 if s != ROOT]

    def depth2_states(self) -> List[int]:
        return [entry.state for entries in self.d2.values() for entry in entries]

    def depth3_states(self) -> List[int]:
        return [entry.state for entry in self.d3.values()]

    def covered_state_mask(self, num_states: int) -> np.ndarray:
        """Boolean mask over state ids covered by *any* default pointer."""
        mask = np.zeros(num_states, dtype=bool)
        for state in self.depth1_states():
            mask[state] = True
        for state in self.depth2_states():
            mask[state] = True
        for state in self.depth3_states():
            mask[state] = True
        return mask

    # ------------------------------------------------------------------
    # transition resolution (the hardware's "no explicit pointer" path)
    # ------------------------------------------------------------------
    def resolve(self, byte: int, prev1: Optional[int], prev2: Optional[int]) -> int:
        """Resolve the default transition for ``byte``.

        ``prev1`` is the previous input byte and ``prev2`` the one before
        that; ``None`` means "no such byte yet" (start of packet), which can
        never match a stored preceding-character value.
        """
        entry3 = self.d3.get(byte)
        if (
            entry3 is not None
            and prev1 == entry3.preceding_bytes[1]
            and prev2 == entry3.preceding_bytes[0]
        ):
            return entry3.state
        for entry2 in self.d2.get(byte, ()):
            if prev1 == entry2.preceding_byte:
                return entry2.state
        return int(self.d1[byte])


def build_default_transition_table(
    dfa: AhoCorasickDFA,
    d2_slots: int = 4,
    include_d2: bool = True,
    include_d3: bool = True,
    min_popularity: int = 1,
    max_stored_pointers: Optional[int] = None,
) -> DefaultTransitionTable:
    """Select default transition pointers for ``dfa``.

    "Most commonly pointed to" is measured as the state's in-degree in the
    full move-function DFA: the number of (state, character) pairs whose
    transition targets it.  That is exactly the number of stored pointers the
    default will eliminate, so ranking by it maximises the saving.

    Parameters
    ----------
    d2_slots:
        Maximum number of depth-2 defaults per character value (paper: 4).
    include_d2, include_d3:
        Disable deeper defaults to reproduce the intermediate rows of
        Figure 2 / Table II.
    min_popularity:
        Minimum in-degree for a depth-2/3 state to earn a default entry.
    max_stored_pointers:
        When given, run the slot-repair pass of
        :func:`enforce_pointer_limit` so that no state keeps more than this
        many explicit pointers (the hardware supports 13).  The pass trades a
        small amount of total memory for a bounded worst case; it never
        changes the lookup-table geometry (still at most ``d2_slots`` depth-2
        and one depth-3 default per character).
    """
    if d2_slots < 0:
        raise ValueError(f"d2_slots must be non-negative, got {d2_slots}")

    trie = dfa.trie
    d1 = np.full(ALPHABET_SIZE, ROOT, dtype=np.int64)
    for byte, child in trie.children[ROOT].items():
        d1[byte] = child

    table = DefaultTransitionTable(d1=d1, d2_slots=d2_slots)
    if not include_d2 and not include_d3:
        return table

    # In-degree of every state over the full transition table.
    in_degree = np.bincount(dfa.table.ravel(), minlength=dfa.num_states)

    if include_d2 and d2_slots > 0:
        depth2_states = np.flatnonzero(dfa.depth == 2)
        per_byte: Dict[int, List[DepthTwoDefault]] = {}
        for state in depth2_states:
            state = int(state)
            popularity = int(in_degree[state])
            if popularity < min_popularity:
                continue
            byte = int(dfa.label[state])
            entry = DepthTwoDefault(
                byte=byte,
                preceding_byte=int(dfa.parent_label[state]),
                state=state,
                popularity=popularity,
            )
            per_byte.setdefault(byte, []).append(entry)
        for byte, entries in per_byte.items():
            entries.sort(key=lambda e: (-e.popularity, e.state))
            table.d2[byte] = entries[:d2_slots]

    if include_d3:
        depth3_states = np.flatnonzero(dfa.depth == 3)
        best: Dict[int, DepthThreeDefault] = {}
        for state in depth3_states:
            state = int(state)
            popularity = int(in_degree[state])
            if popularity < min_popularity:
                continue
            byte = int(dfa.label[state])
            parent = int(dfa.parent[state])
            grandparent = int(dfa.parent[parent])
            entry = DepthThreeDefault(
                byte=byte,
                preceding_bytes=(int(dfa.label[grandparent]), int(dfa.label[parent])),
                state=state,
                popularity=popularity,
            )
            current = best.get(byte)
            if (
                current is None
                or entry.popularity > current.popularity
                or (entry.popularity == current.popularity and entry.state < current.state)
            ):
                best[byte] = entry
        table.d3 = best

    if max_stored_pointers is not None:
        enforce_pointer_limit(dfa, table, max_stored_pointers)
    return table


# ----------------------------------------------------------------------
# pointer-limit repair pass
# ----------------------------------------------------------------------
def _stored_pointer_counts(dfa: AhoCorasickDFA, table: DefaultTransitionTable) -> np.ndarray:
    """Per-state count of explicit pointers kept after pruning against ``table``."""
    num_states = dfa.num_states
    d2_byte = np.full(num_states, -1, dtype=np.int32)
    for byte, entries in table.d2.items():
        for entry in entries:
            d2_byte[entry.state] = byte
    d3_byte = np.full(num_states, -1, dtype=np.int32)
    for byte, entry in table.d3.items():
        d3_byte[entry.state] = byte
    d1_row = table.d1.astype(np.int64)
    columns = np.arange(ALPHABET_SIZE, dtype=np.int32)[None, :]

    counts = np.zeros(num_states, dtype=np.int64)
    chunk = 8192
    for start in range(0, num_states, chunk):
        stop = min(start + chunk, num_states)
        block = dfa.table[start:stop]
        non_root = block != ROOT
        target_depth = dfa.depth[block]
        drop = non_root & (target_depth == 1) & (block == d1_row[None, :])
        drop |= non_root & (target_depth == 2) & (d2_byte[block] == columns)
        drop |= non_root & (target_depth == 3) & (d3_byte[block] == columns)
        counts[start:stop] = (non_root & ~drop).sum(axis=1)
    return counts


def enforce_pointer_limit(
    dfa: AhoCorasickDFA,
    table: DefaultTransitionTable,
    limit: int,
    max_iterations: int = 20000,
) -> bool:
    """Reassign default slots so no state stores more than ``limit`` pointers.

    The paper's popularity-based selection minimises the *total* number of
    stored pointers but does not bound the per-state worst case, which the
    hardware requires (at most 13 pointers per state).  This pass repairs
    violations by re-targeting depth-2/3 default slots:

    * if the character of an offending uncovered target still has a free
      slot, the target simply takes it;
    * otherwise the least popular currently covered state of that character
      is evicted, provided none of the states that would regain its pointer
      is already at the limit.

    Covering a state removes the explicit pointer from *every* state that
    transitions to it (all of them end with the required preceding
    characters), so each repair strictly reduces the offender's count by one.
    Returns ``True`` when all states are within the limit afterwards.
    """
    if limit < 1:
        raise ValueError(f"limit must be positive, got {limit}")
    in_degree = np.bincount(dfa.table.ravel(), minlength=dfa.num_states)
    counts = _stored_pointer_counts(dfa, table)

    def sources_of(state: int, byte: int) -> np.ndarray:
        return np.flatnonzero(dfa.table[:, byte] == state)

    d2_states = {entry.state for entries in table.d2.values() for entry in entries}
    d3_states = {entry.state for entry in table.d3.values()}

    def try_cover_depth2(byte: int, target: int) -> bool:
        entries = table.d2.setdefault(byte, [])
        evicted: Optional[DepthTwoDefault] = None
        if len(entries) >= table.d2_slots:
            for candidate in sorted(entries, key=lambda e: e.popularity):
                gaining = sources_of(candidate.state, byte)
                if gaining.size == 0 or counts[gaining].max() < limit:
                    evicted = candidate
                    break
            if evicted is None:
                return False
            entries.remove(evicted)
            d2_states.discard(evicted.state)
            counts[sources_of(evicted.state, byte)] += 1
        entries.append(
            DepthTwoDefault(
                byte=byte,
                preceding_byte=int(dfa.parent_label[target]),
                state=target,
                popularity=int(in_degree[target]),
            )
        )
        d2_states.add(target)
        counts[sources_of(target, byte)] -= 1
        return True

    def try_cover_depth3(byte: int, target: int) -> bool:
        current = table.d3.get(byte)
        if current is not None:
            gaining = sources_of(current.state, byte)
            if gaining.size and counts[gaining].max() >= limit:
                return False
            d3_states.discard(current.state)
            counts[gaining] += 1
        parent = int(dfa.parent[target])
        grandparent = int(dfa.parent[parent])
        table.d3[byte] = DepthThreeDefault(
            byte=byte,
            preceding_bytes=(int(dfa.label[grandparent]), int(dfa.label[parent])),
            state=target,
            popularity=int(in_degree[target]),
        )
        d3_states.add(target)
        counts[sources_of(target, byte)] -= 1
        return True

    iterations = 0
    stuck: set = set()
    while iterations < max_iterations:
        over = np.flatnonzero(counts > limit)
        fixable = [s for s in over.tolist() if s not in stuck]
        if not fixable:
            break
        offender = max(fixable, key=lambda s: counts[s])
        repaired = False
        row = dfa.table[offender]
        candidate_bytes = np.flatnonzero(
            (row != ROOT) & np.isin(dfa.depth[row], (2, 3))
        )
        # Prefer high in-degree targets: covering them helps the most states.
        candidate_bytes = sorted(
            candidate_bytes.tolist(), key=lambda c: -int(in_degree[row[c]])
        )
        for byte in candidate_bytes:
            iterations += 1
            target = int(row[byte])
            depth = int(dfa.depth[target])
            if depth == 2 and target not in d2_states:
                repaired = try_cover_depth2(byte, target)
            elif depth == 3 and target not in d3_states:
                repaired = try_cover_depth3(byte, target)
            if repaired:
                break
        if not repaired:
            stuck.add(offender)
    return bool(counts.max() <= limit)
