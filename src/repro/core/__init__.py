"""The paper's core contribution: DTP compression, memory layout, compiler."""

from .accelerator_config import (
    AcceleratorProgram,
    BlockProgram,
    CompilationError,
    compile_ruleset,
)
from .compiled import CompiledDenseProgram
from .default_transitions import (
    DefaultTransitionTable,
    DepthThreeDefault,
    DepthTwoDefault,
    build_default_transition_table,
)
from .dtp_automaton import (
    HARDWARE_MAX_POINTERS,
    DTPAutomaton,
    ScanState,
    StagedPointerCounts,
    staged_pointer_counts,
)
from .lookup_table import (
    LOOKUP_TABLE_WORDS,
    LOOKUP_WORD_BITS,
    EncodedLookupTable,
    encode_lookup_table,
)
from .match_memory import (
    MATCH_MEMORY_WORDS,
    MATCH_WORD_BITS,
    MatchMemory,
    MatchMemoryError,
)
from .memory_layout import (
    PackedStateMachine,
    PackingError,
    Placement,
    StateRecord,
    build_state_records,
    default_target_order,
    pack_state_machine,
)
from .partition import PartitionPlan, partition_ruleset
from .state_types import (
    MATCH_INFO_BITS,
    MAX_POINTERS_PER_STATE,
    POINTER_BITS,
    SLOTS_PER_WORD,
    STATE_TYPES,
    WORD_BITS,
    StateType,
    allowed_start_slots,
    pointer_capacity,
    slots_for_pointer_count,
    state_type,
    type_for_placement,
)

__all__ = [
    "AcceleratorProgram",
    "BlockProgram",
    "CompilationError",
    "compile_ruleset",
    "CompiledDenseProgram",
    "DefaultTransitionTable",
    "DepthThreeDefault",
    "DepthTwoDefault",
    "build_default_transition_table",
    "HARDWARE_MAX_POINTERS",
    "DTPAutomaton",
    "ScanState",
    "StagedPointerCounts",
    "staged_pointer_counts",
    "LOOKUP_TABLE_WORDS",
    "LOOKUP_WORD_BITS",
    "EncodedLookupTable",
    "encode_lookup_table",
    "MATCH_MEMORY_WORDS",
    "MATCH_WORD_BITS",
    "MatchMemory",
    "MatchMemoryError",
    "PackedStateMachine",
    "PackingError",
    "Placement",
    "StateRecord",
    "build_state_records",
    "default_target_order",
    "pack_state_machine",
    "PartitionPlan",
    "partition_ruleset",
    "MATCH_INFO_BITS",
    "MAX_POINTERS_PER_STATE",
    "POINTER_BITS",
    "SLOTS_PER_WORD",
    "STATE_TYPES",
    "WORD_BITS",
    "StateType",
    "allowed_start_slots",
    "pointer_capacity",
    "slots_for_pointer_count",
    "state_type",
    "type_for_placement",
]
