"""The compiled dense-table fast path: any AC-equivalent automaton flattened
to NumPy arrays and scanned as a tight table walk.

Every other backend in this repository interprets some linked structure per
input byte — dict lookups in the DTP pointer lists, bitmap popcounts, failure
walks.  This backend trades memory for speed the same way the paper's *move
function* baseline does, but engineered for a software host:

* ``table`` — a dense ``(num_states, 256)`` ``int32`` transition table
  (``table[s, c]`` is the next state), the software analogue of reading one
  324-bit state word per character;
* ``match_index`` / ``match_pids`` — a packed match-output array: state ``s``
  matches the pattern ids ``match_pids[match_index[s]:match_index[s + 1]]``,
  mirroring the hardware's matching-string-number memory walk;
* a *signed* flat table for the hot loop: transitions into matching states
  store the negated state id, so the per-byte work is one flat-list index
  plus one sign test — the (rare) match bookkeeping is paid only on hits,
  the way the hardware pays for the match memory walk only on the match
  signal;
* a per-chunk *root-skip* vector pass: when NumPy classification shows that
  few chunk bytes can move the start state (``starter[chunk]``), runs of
  bytes that would leave the automaton parked at the root are skipped
  wholesale instead of being stepped through one at a time.

The scan is resumable: the per-flow state is a 1-tuple
:class:`repro.backend.ScanState` carrying the current table row, so the
streaming layer (flow table, stream scanner, sharded service) uses this
backend unchanged.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..automata.aho_corasick import AhoCorasickDFA
from ..automata.trie import ALPHABET_SIZE, ROOT
from ..backend import (
    CompiledProgramMixin,
    FlowState,
    MatchList,
    ScanState,
    advance_history,
)

#: Chunks shorter than this skip the NumPy pre-pass: classifying a handful of
#: bytes costs more than just stepping them.
VECTOR_MIN_CHUNK = 64

#: Root-skip is used when fewer than 1/16 of a chunk's bytes can move the
#: start state; above that the automaton leaves the root too often for
#: position jumping to beat the straight-line loop.
SKIP_DENSITY_SHIFT = 4


class CompiledDenseProgram(CompiledProgramMixin):
    """A multi-pattern matcher compiled to dense transition/match tables."""

    backend_name = "dense"

    def __init__(
        self,
        table: np.ndarray,
        outputs: Sequence[Sequence[int]],
        patterns: Sequence[bytes],
    ):
        if table.ndim != 2 or table.shape[1] != ALPHABET_SIZE:
            raise ValueError(f"transition table must be (num_states, 256), got {table.shape}")
        if table.shape[0] != len(outputs):
            raise ValueError("one output list per state is required")
        self.table = np.ascontiguousarray(table, dtype=np.int32)
        self.num_states = int(table.shape[0])
        self._patterns = tuple(bytes(p) for p in patterns)

        # packed match-output arrays (the dense analogue of the match memory)
        counts = np.fromiter((len(o) for o in outputs), dtype=np.int64, count=len(outputs))
        self.match_index = np.zeros(self.num_states + 1, dtype=np.int32)
        np.cumsum(counts, out=self.match_index[1:])
        self.match_pids = np.fromiter(
            (pid for o in outputs for pid in o), dtype=np.int32, count=int(counts.sum())
        )

        # hot-path view: one flat signed Python list avoids per-byte NumPy
        # scalar overhead; transitions into matching states are negated so
        # the loop pays for match bookkeeping only on actual hits (the root,
        # state 0, can never match — patterns are non-empty — so the sign
        # encoding is unambiguous)
        has_match = counts > 0
        signed = np.where(has_match[self.table], -self.table, self.table)
        self._flat = signed.ravel().tolist()
        self._outputs: List[List[int]] = [list(o) for o in outputs]
        # byte values that move the start state off itself; everything else
        # keeps a root-parked automaton at the root and can be skipped
        self._root_starter = self.table[ROOT] != ROOT

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_automaton(cls, automaton) -> "CompiledDenseProgram":
        """Flatten any AC-equivalent automaton.

        Accepts an :class:`AhoCorasickDFA` directly, or anything exposing an
        equivalent one (``automaton.dfa``, e.g. a ``DTPAutomaton``); other
        protocol backends are re-compiled from their ``patterns``.
        """
        dfa = getattr(automaton, "dfa", automaton)
        if isinstance(dfa, AhoCorasickDFA):
            return cls(dfa.table, dfa.outputs, dfa.trie.patterns)
        patterns = getattr(automaton, "patterns", None)
        if patterns is None:
            raise TypeError(
                f"cannot flatten {type(automaton).__name__}: "
                "expected an AhoCorasickDFA, a .dfa attribute, or .patterns"
            )
        return cls.from_patterns(patterns)

    @classmethod
    def from_patterns(cls, patterns: Sequence[bytes]) -> "CompiledDenseProgram":
        return cls.from_automaton(AhoCorasickDFA.from_patterns(patterns))

    @classmethod
    def from_ruleset(cls, ruleset) -> "CompiledDenseProgram":
        """Build from a :class:`repro.rulesets.RuleSet`."""
        return cls.from_patterns(ruleset.patterns)

    # ------------------------------------------------------------------
    # protocol surface
    # ------------------------------------------------------------------
    @property
    def patterns(self) -> Tuple[bytes, ...]:
        """The compiled patterns; pattern ids index this tuple."""
        return self._patterns

    def matches_of(self, state: int) -> Sequence[int]:
        """Pattern ids reported when ``state`` is entered (packed-array view)."""
        return self.match_pids[self.match_index[state]:self.match_index[state + 1]]

    @property
    def signed_table(self) -> np.ndarray:
        """The hot-loop flat table re-shaped: ``abs`` is the target state,
        the sign marks transitions into matching states.  Exposed for the
        static verifier (:mod:`repro.check`), which proves it consistent
        with :attr:`table` instead of trusting the constructor."""
        return np.asarray(self._flat, dtype=np.int64).reshape(self.table.shape)

    def _scan_chunk(self, states: FlowState, chunk: bytes) -> Tuple[MatchList, FlowState]:
        (scan_state,) = states
        state = scan_state.state
        base = scan_state.offset
        matches: MatchList = []
        flat = self._flat
        outputs = self._outputs
        n = len(chunk)

        # decide per chunk whether the root-skip pass pays for itself
        hot: Optional[List[int]] = None
        if n >= VECTOR_MIN_CHUNK:
            starters = self._root_starter[np.frombuffer(chunk, dtype=np.uint8)]
            if (int(starters.sum()) << SKIP_DENSITY_SHIFT) < n:
                hot = np.nonzero(starters)[0].tolist()

        if hot is None:
            # straight-line table walk: one flat index + sign test per byte
            for position, byte in enumerate(chunk):
                state = flat[(state << 8) | byte]
                if state < 0:
                    state = -state
                    end = base + position + 1
                    for pid in outputs[state]:
                        matches.append((end, pid))
        else:
            position = 0
            hot_cursor = 0
            num_hot = len(hot)
            while position < n:
                if state == ROOT:
                    # parked at the root: jump to the next byte that leaves it
                    while hot_cursor < num_hot and hot[hot_cursor] < position:
                        hot_cursor += 1
                    if hot_cursor == num_hot:
                        position = n
                        break
                    position = hot[hot_cursor]
                    hot_cursor += 1
                state = flat[(state << 8) | chunk[position]]
                if state < 0:
                    state = -state
                    end = base + position + 1
                    for pid in outputs[state]:
                        matches.append((end, pid))
                position += 1

        prev1, prev2 = advance_history(scan_state.prev1, scan_state.prev2, chunk)
        return matches, (
            ScanState(state=state, prev1=prev1, prev2=prev2, offset=base + n),
        )

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Total resident footprint: dense arrays plus the hot-loop views.

        Counts the NumPy transition/match arrays, the flat Python list the
        scan loop indexes (8-byte slots), and the boxed int objects backing
        entries outside CPython's small-int cache (targets > 256, one object
        per table cell).  Matters because the dense backend's whole trade is
        memory for speed — understating it would skew the dense-vs-DTP
        comparison BENCH_backends.json tracks.
        """
        array_bytes = self.table.nbytes + self.match_index.nbytes + self.match_pids.nbytes
        flat_slots = sys.getsizeof(self._flat)
        boxed_ints = int((self.table > 256).sum()) * 32
        return int(array_bytes + flat_slots + boxed_ints)

    def memory_words(self, word_bits: int = 324) -> int:
        """Equivalent count of the paper's 324-bit state-machine words.

        The hardware packs up to four pointers (plus type/match bits) into
        one 324-bit word; expressing the dense table in the same unit makes
        the speed/memory trade against the DTP encoding directly comparable.
        """
        return -(-self.memory_bytes() * 8 // word_bits)
