"""Reproduction of "Ultra-High Throughput String Matching for Deep Packet
Inspection" (Kennedy, Wang, Liu, Liu — DATE 2010).

The package is organised as:

* :mod:`repro.core`     — the paper's contribution: the DTP-compressed
  Aho-Corasick automaton, its memory layout and the ruleset -> accelerator
  compiler;
* :mod:`repro.automata` — classic string matching substrates and baselines;
* :mod:`repro.rulesets` — synthetic Snort-like rulesets (the paper's workload);
* :mod:`repro.hardware` — cycle-level simulation of the engines/blocks;
* :mod:`repro.fpga`     — device, resource, power and throughput models;
* :mod:`repro.traffic`  — packets and traffic generation;
* :mod:`repro.ids`      — an end-to-end mini intrusion detection pipeline;
* :mod:`repro.analysis` — the metrics behind every table and figure.

Quick start::

    from repro import generate_snort_like_ruleset, compile_ruleset, STRATIX_III

    ruleset = generate_snort_like_ruleset(634)
    program = compile_ruleset(ruleset, STRATIX_III)
    print(program.throughput_gbps, program.total_memory_bytes())
    print(program.match(b"... packet payload ..."))
"""

from .automata import (
    AhoCorasickDFA,
    AhoCorasickNFA,
    BitmapAhoCorasick,
    PathCompressedAhoCorasick,
    Trie,
    WuManber,
)
from .core import (
    AcceleratorProgram,
    DTPAutomaton,
    DefaultTransitionTable,
    MatchMemory,
    PackedStateMachine,
    build_default_transition_table,
    compile_ruleset,
    pack_state_machine,
    partition_ruleset,
)
from .fpga import (
    CYCLONE_III,
    STRATIX_III,
    FPGADevice,
    PowerModel,
    estimate_resources,
    get_device,
)
from .hardware import HardwareAccelerator, StringMatchingBlock, StringMatchingEngine
from .ids import IDSRule, IntrusionDetectionSystem
from .rulesets import (
    RuleSet,
    generate_paper_rulesets,
    generate_snort_like_ruleset,
    parse_rule,
    reduce_ruleset,
    reduce_to_character_count,
)
from .traffic import Packet, TrafficGenerator, TrafficProfile

__version__ = "0.1.0"

__all__ = [
    "AhoCorasickDFA",
    "AhoCorasickNFA",
    "BitmapAhoCorasick",
    "PathCompressedAhoCorasick",
    "Trie",
    "WuManber",
    "AcceleratorProgram",
    "DTPAutomaton",
    "DefaultTransitionTable",
    "MatchMemory",
    "PackedStateMachine",
    "build_default_transition_table",
    "compile_ruleset",
    "pack_state_machine",
    "partition_ruleset",
    "CYCLONE_III",
    "STRATIX_III",
    "FPGADevice",
    "PowerModel",
    "estimate_resources",
    "get_device",
    "HardwareAccelerator",
    "StringMatchingBlock",
    "StringMatchingEngine",
    "IDSRule",
    "IntrusionDetectionSystem",
    "RuleSet",
    "generate_paper_rulesets",
    "generate_snort_like_ruleset",
    "parse_rule",
    "reduce_ruleset",
    "reduce_to_character_count",
    "Packet",
    "TrafficGenerator",
    "TrafficProfile",
    "__version__",
]
