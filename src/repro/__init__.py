"""Reproduction of "Ultra-High Throughput String Matching for Deep Packet
Inspection" (Kennedy, Wang, Liu, Liu — DATE 2010).

The package is organised as:

* :mod:`repro.api`      — the declarative pipeline layer: a
  :class:`PipelineConfig` (source + rules + engine + sinks, JSON/TOML
  round-trippable) and the :class:`Session` facade that runs it;
* :mod:`repro.backend`  — the unified :class:`MatcherBackend` /
  :class:`CompiledProgram` protocol and the registry every scan layer
  (streaming, IDS, hardware, CLI) is written against;
* :mod:`repro.core`     — the paper's contribution: the DTP-compressed
  Aho-Corasick automaton, its memory layout, the ruleset -> accelerator
  compiler and the compiled dense-table fast path;
* :mod:`repro.automata` — classic string matching substrates and baselines;
* :mod:`repro.rulesets` — synthetic Snort-like rulesets (the paper's workload);
* :mod:`repro.hardware` — cycle-level simulation of the engines/blocks;
* :mod:`repro.fpga`     — device, resource, power and throughput models;
* :mod:`repro.traffic`  — packets, multi-packet flows and traffic generation;
* :mod:`repro.capture`  — pcap/pcapng capture I/O, frame en/decoding and
  replay through every scan layer;
* :mod:`repro.streaming`— stateful flow scanning: cross-packet matching, the
  LRU flow table and the sharded scan service;
* :mod:`repro.ids`      — an end-to-end mini intrusion detection pipeline;
* :mod:`repro.analysis` — the metrics behind every table and figure.

Quick start — compile a synthetic ruleset and scan a payload:

    >>> from repro import generate_snort_like_ruleset, compile_ruleset, STRATIX_III
    >>> ruleset = generate_snort_like_ruleset(64, seed=7)
    >>> program = compile_ruleset(ruleset, STRATIX_III)
    >>> program.blocks_per_group
    1
    >>> program.throughput_gbps > 40.0
    True
    >>> pattern = ruleset[0].pattern
    >>> (2 + len(pattern), 0) in program.match(b">>" + pattern + b"<<")
    True

Streaming: a pattern split across packets of one flow is missed by the
per-packet scan but found by the stateful scan service:

    >>> from repro import ScanService, TrafficGenerator
    >>> flow = TrafficGenerator(ruleset, seed=5).flow(num_packets=3, split_patterns=1)
    >>> result = ScanService(program, num_shards=2).scan(flow.packets)
    >>> streamed = {ruleset[e.string_number].sid for e in result.events}
    >>> set(flow.split_sids) <= streamed
    True
    >>> per_packet = {ruleset[number].sid
    ...               for packet in flow.packets
    ...               for _, number in program.match(packet.payload)}
    >>> set(flow.split_sids) & per_packet
    set()

Captures round-trip: the flow written as a pcap, read back and replayed,
reports the identical events:

    >>> import io
    >>> from repro import load_packets, write_packets
    >>> capture = io.BytesIO()
    >>> write_packets(capture, flow.packets)
    3
    >>> _ = capture.seek(0)
    >>> replayed, stats = load_packets(capture)
    >>> [p.payload for p in replayed] == [p.payload for p in flow.packets]
    True
    >>> ScanService(program, num_shards=2).scan(replayed).events == result.events
    True
"""

__version__ = "0.2.0"

from .api import (
    ContentRule,
    EngineSpec,
    PipelineConfig,
    RulesSpec,
    RunResult,
    Session,
    SinkSpec,
    SourceSpec,
    load_config,
)
from .automata import (
    AhoCorasickDFA,
    AhoCorasickNFA,
    BitmapAhoCorasick,
    PathCompressedAhoCorasick,
    Trie,
    WuManber,
)
from .backend import (
    Backend,
    CompiledProgram,
    ScanState,
    all_backends,
    backend_names,
    get_backend,
    register_backend,
)
from .capture import (
    CaptureFile,
    CaptureRecord,
    load_packets,
    read_capture,
    replay_ids,
    replay_scan,
    replay_stream,
    write_packets,
    write_pcap,
    write_pcapng,
)
from .core import (
    AcceleratorProgram,
    CompiledDenseProgram,
    DTPAutomaton,
    DefaultTransitionTable,
    MatchMemory,
    PackedStateMachine,
    build_default_transition_table,
    compile_ruleset,
    pack_state_machine,
    partition_ruleset,
)
from .fpga import (
    CYCLONE_III,
    STRATIX_III,
    FPGADevice,
    PowerModel,
    estimate_resources,
    get_device,
)
from .hardware import HardwareAccelerator, StringMatchingBlock, StringMatchingEngine
from .ids import IDSRule, IntrusionDetectionSystem
from .rulesets import (
    RuleSet,
    generate_paper_rulesets,
    generate_snort_like_ruleset,
    parse_rule,
    reduce_ruleset,
    reduce_to_character_count,
)
from .streaming import (
    FlowEntry,
    FlowKey,
    FlowTable,
    ParallelScanService,
    ScanService,
    StreamMatch,
    StreamScanner,
    StreamScanResult,
)
from .traffic import GeneratedFlow, Packet, TrafficGenerator, TrafficProfile

__all__ = [
    "ContentRule",
    "EngineSpec",
    "PipelineConfig",
    "RulesSpec",
    "RunResult",
    "Session",
    "SinkSpec",
    "SourceSpec",
    "load_config",
    "AhoCorasickDFA",
    "AhoCorasickNFA",
    "BitmapAhoCorasick",
    "PathCompressedAhoCorasick",
    "Trie",
    "WuManber",
    "Backend",
    "CaptureFile",
    "CaptureRecord",
    "load_packets",
    "read_capture",
    "replay_ids",
    "replay_scan",
    "replay_stream",
    "write_packets",
    "write_pcap",
    "write_pcapng",
    "CompiledProgram",
    "all_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "AcceleratorProgram",
    "CompiledDenseProgram",
    "DTPAutomaton",
    "DefaultTransitionTable",
    "MatchMemory",
    "PackedStateMachine",
    "ScanState",
    "build_default_transition_table",
    "compile_ruleset",
    "pack_state_machine",
    "partition_ruleset",
    "CYCLONE_III",
    "STRATIX_III",
    "FPGADevice",
    "PowerModel",
    "estimate_resources",
    "get_device",
    "HardwareAccelerator",
    "StringMatchingBlock",
    "StringMatchingEngine",
    "IDSRule",
    "IntrusionDetectionSystem",
    "RuleSet",
    "generate_paper_rulesets",
    "generate_snort_like_ruleset",
    "parse_rule",
    "reduce_ruleset",
    "reduce_to_character_count",
    "FlowEntry",
    "FlowKey",
    "FlowTable",
    "ParallelScanService",
    "ScanService",
    "StreamMatch",
    "StreamScanner",
    "StreamScanResult",
    "GeneratedFlow",
    "Packet",
    "TrafficGenerator",
    "TrafficProfile",
    "__version__",
]
