"""Ruleset linter: content-level problems a compiled automaton cannot show.

The program verifier (:mod:`repro.check.program`) proves a compiled artifact
faithful to its patterns; this module asks whether the *patterns themselves*
are worth compiling — duplicate or shadowed content, sid conflicts,
un-encodable bytes, and states that will not fit the hardware's 13-pointer
words.  It operates on :class:`~repro.rulesets.RuleSet` instances, plain
pattern lists, or raw Snort rule files (one finding per unparsable line,
instead of the parser's first-error-wins behaviour).

Diagnostic codes
----------------
=======  ========  ==============================================================
code     severity  meaning
=======  ========  ==============================================================
RS001    error     exact duplicate pattern (the automaton rejects these)
RS002    error     two rules share one sid
RS003    error     empty content (matches everywhere / rejected by the parser)
RS004    warning   pattern is a proper substring of another -> duplicate alerts
RS005    error     content is not latin-1 encodable (one byte per character)
RS006    warning   pattern longer than ``OVERLONG_PATTERN`` bytes
RS007    warning   automaton state stores more than 13 pointers (hardware cap)
RS008    error     unsatisfiable window: ``depth``/``within`` shorter than the
                   content it bounds (the window can never contain the pattern)
RS009    warning   rule has only negated contents; the ids engine skips it
                   (no positive content for the prefilter to anchor on)
RS010    error     invalid ``pcre`` option (unbalanced delimiters, bad flag,
                   pattern :mod:`re` cannot compile)
RS011    error     positional window (``offset``/``depth``/``distance``/
                   ``within``) combined with a sticky buffer: windows measure
                   raw-stream offsets, which a normalized buffer does not have
RS012    error     relative content anchored to a sticky-buffer content: a
                   ``distance``/``within`` window cannot cross from a
                   normalized buffer into the raw stream
RS101    error     rule-file line failed to parse (message from the parser)
=======  ========  ==============================================================

RS008–RS012 need the positional/negation/pcre/sticky grammar, so they fire from
:func:`lint_rule_file` (where the full predicate is parsed), not from the
bytes-only :func:`lint_ruleset` entry point.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.dtp_automaton import HARDWARE_MAX_POINTERS, DTPAutomaton
from ..rulesets.parser import RuleParseError, parse_rule
from ..rulesets.ruleset import PatternRule, RuleSet
from .diagnostics import ERROR, WARNING, Report

#: Patterns longer than this draw RS006 — far beyond any Snort content and a
#: likely sign of a mis-decoded hex block.
OVERLONG_PATTERN = 256

RulesInput = Union[RuleSet, Sequence[bytes], Sequence[PatternRule]]


def _as_rules(rules: RulesInput) -> List[Tuple[bytes, Optional[int], int]]:
    """Normalise input to ``(pattern, sid-or-None, position)`` triples."""
    out: List[Tuple[bytes, Optional[int], int]] = []
    for position, item in enumerate(rules):
        if isinstance(item, PatternRule):
            out.append((item.pattern, item.sid, position))
        else:
            out.append((bytes(item), None, position))
    return out


def _shadow_pairs(
    patterns: Sequence[bytes],
) -> Iterable[Tuple[int, int, int]]:
    """Yield ``(inner, outer, offset)`` where ``patterns[inner]`` occurs
    inside ``patterns[outer]`` at ``offset``.

    Found by scanning each pattern *as traffic* through an Aho-Corasick
    automaton over all patterns — O(total length), not O(n^2) pairs — the
    same trick the matcher itself uses.
    """
    from ..automata.aho_corasick import AhoCorasickDFA

    dfa = AhoCorasickDFA.from_patterns(patterns)
    for outer, pattern in enumerate(patterns):
        state = 0
        for end, byte in enumerate(pattern):
            state = int(dfa.table[state, byte])
            for inner in dfa.outputs[state]:
                if inner == outer and end == len(pattern) - 1:
                    continue  # the pattern matching itself at its own end
                yield inner, outer, end - len(patterns[inner]) + 1


def lint_ruleset(rules: RulesInput, subject: str = "") -> Report:
    """Lint patterns/rules that are already decoded into bytes."""
    triples = _as_rules(rules)
    report = Report(subject=subject or f"ruleset lint over {len(triples)} rule(s)")
    if not triples:
        report.add(ERROR, "RS003", "ruleset is empty: nothing to compile")
        return report

    seen_pattern: Dict[bytes, int] = {}
    seen_sid: Dict[int, int] = {}
    for pattern, sid, position in triples:
        if len(pattern) == 0:
            report.add(
                ERROR,
                "RS003",
                "empty content pattern (would match at every byte)",
                rule=position,
            )
            continue
        if pattern in seen_pattern:
            report.add(
                ERROR,
                "RS001",
                f"pattern {pattern!r} duplicates rule {seen_pattern[pattern]}",
                rule=position,
            )
        else:
            seen_pattern[pattern] = position
        if len(pattern) > OVERLONG_PATTERN:
            report.add(
                WARNING,
                "RS006",
                f"pattern is {len(pattern)} bytes long "
                f"(> {OVERLONG_PATTERN}); likely a mis-decoded content",
                rule=position,
            )
        if sid is not None:
            if sid in seen_sid:
                report.add(
                    ERROR,
                    "RS002",
                    f"sid {sid} already claimed by rule {seen_sid[sid]}",
                    rule=position,
                )
            else:
                seen_sid[sid] = position

    # Shadowing: a substring pattern fires on every hit of its superstring,
    # so the pair always alerts together — usually one of them is dead weight.
    unique = [p for p, _, _ in triples if p]
    positions = [pos for p, _, pos in triples if p]
    deduped: Dict[bytes, int] = {}
    for pattern, position in zip(unique, positions):
        deduped.setdefault(pattern, position)
    ordered = list(deduped)
    for inner, outer, offset in _shadow_pairs(ordered):
        report.add(
            WARNING,
            "RS004",
            f"pattern {ordered[inner]!r} is a substring of "
            f"{ordered[outer]!r} (offset {offset}): every match of the "
            "longer rule also alerts the shorter one",
            rule=deduped[ordered[inner]],
        )

    # Hardware capacity: states keeping more pointers than a 324-bit word
    # holds.  Built without the pointer cap so the raw requirement shows.
    if ordered:
        dtp = DTPAutomaton.from_patterns(ordered)
        for state in dtp.states_exceeding(HARDWARE_MAX_POINTERS):
            report.add(
                WARNING,
                "RS007",
                f"automaton state {state} needs {len(dtp.stored[state])} "
                f"stored pointers; the hardware word holds "
                f"{HARDWARE_MAX_POINTERS} (the block compiler will have to "
                "split or re-partition)",
                state=state,
            )
    return report


def lint_rule_file(path: str) -> Report:
    """Lint a Snort rules file line by line.

    Unlike :func:`repro.rulesets.parse_rules` (first error aborts), every
    unparsable line becomes its own RS101 finding with the line number in
    ``rule``, and the parsable remainder is linted as a ruleset.
    """
    rules: List[PatternRule] = []
    report = Report(subject=f"rule file lint: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    line_of: Dict[int, int] = {}
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            spec = parse_rule(stripped)
        except RuleParseError as exc:
            message = str(exc)
            if "latin-1" in message:
                code = "RS005"
            elif "empty content" in message:
                code = "RS003"
            elif "pcre" in message:
                code = "RS010"
            elif "raw-stream offsets" in message:
                code = "RS011"
            elif "cannot cross" in message:
                code = "RS012"
            else:
                code = "RS101"
            report.add(ERROR, code, message, rule=number)
            continue
        raw_index = 0
        for content in spec.contents:
            for bound_name, bound in (
                ("depth", content.depth),
                ("within", content.within),
            ):
                if bound is not None and bound < len(content.pattern):
                    report.add(
                        ERROR,
                        "RS008",
                        f"{bound_name} {bound} is shorter than the "
                        f"{len(content.pattern)}-byte content "
                        f"{content.pattern!r}: the window can never contain "
                        "the pattern",
                        rule=number,
                    )
            if content.is_sticky:
                # tested against normalized buffers: never compiled, so the
                # pattern-level lint (duplicates, shadowing) does not apply
                continue
            line_of[len(rules)] = number
            rules.append(
                PatternRule(
                    pattern=content.effective_pattern(),
                    # only the first content carries the rule's sid: the
                    # extras get placeholders, mirroring SidAllocator, so a
                    # multi-content rule does not RS002-conflict with itself
                    sid=spec.sid
                    if spec.sid is not None and raw_index == 0
                    else -(len(rules) + 1),
                    msg=spec.msg,
                )
            )
            raw_index += 1
        if spec.contents and not spec.positive_contents:
            report.add(
                WARNING,
                "RS009",
                "rule has only negated contents; the ids engine skips it "
                "(no positive content for the prefilter to anchor on)",
                rule=number,
            )
        if not spec.contents:
            report.add(
                ERROR,
                "RS003",
                "rule has no content option: nothing to match",
                rule=number,
            )
    content_report = lint_ruleset(rules) if rules else Report()
    # Re-anchor content findings to file line numbers where we can.
    for diagnostic in content_report.diagnostics:
        report.add(
            diagnostic.severity,
            diagnostic.code,
            diagnostic.message,
            state=diagnostic.state,
            byte=diagnostic.byte,
            rule=line_of.get(diagnostic.rule, diagnostic.rule)
            if diagnostic.rule is not None
            else None,
            source=diagnostic.source,
        )
    return report
