"""AST checker for the repo's CLI error idiom (stdlib-only, runs offline).

The contract (docstring of :mod:`repro.cli`, re-fixed by hand in two
separate PRs before this checker existed): *bad input values raise raw
``ValueError`` tracebacks; empty-result and flag-combination errors print
one line to stderr and return 1; ``ConfigError`` belongs to the spec
layer.*  Each rule below pins one way that contract has historically
drifted:

=======  ==============================================================
code     meaning
=======  ==============================================================
IDM101   bare ``except:`` (swallows SystemExit/KeyboardInterrupt)
IDM102   ``sys.exit`` inside a ``_cmd_*`` handler (handlers return codes)
IDM103   stderr ``print`` in a handler not immediately followed by
         ``return <nonzero int>``
IDM104   ``raise ConfigError`` in a module that defines ``_cmd_*``
         handlers (the CLI layer reports spec errors, it does not raise
         them)
IDM105   ``*Error`` raised with a constant "must be ..." message that
         does not interpolate the offending value (use an f-string so
         the traceback shows what was passed)
IDM106   a ``_cmd_*`` handler reads a count flag (``args.workers``,
         ``args.flows``, ...) without calling ``_require_count`` on it
=======  ==============================================================

Run as ``python -m repro.check.idioms [paths...]`` (default:
``src/repro``); exits 1 if any finding is an error.  All rules are
errors — the idiom either holds or it does not.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .diagnostics import ERROR, Report

#: argparse count flags whose handlers must range-check before any work.
COUNT_ATTRS = frozenset({
    "shards",
    "workers",
    "flow_capacity",
    "max_packets",
    "batch_packets",
    "flows",
    "packets_per_flow",
    "packets",
    "payload",
})

#: "must be <constraint>" messages that describe a value range — these must
#: interpolate the rejected value.  Deliberately does NOT match protocol
#: messages like "must be called before ..." (no value to show there).
_MUST_BE_RANGE = re.compile(
    r"must be (?:>=?\s|<=?\s|==\s|positive|non-?negative|at least|at most"
    r"|between|one of|in |a |an )"
)


def _is_stderr_print(stmt: ast.stmt) -> bool:
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
        return False
    call = stmt.value
    if not (isinstance(call.func, ast.Name) and call.func.id == "print"):
        return False
    for keyword in call.keywords:
        value = keyword.value
        if (
            keyword.arg == "file"
            and isinstance(value, ast.Attribute)
            and value.attr == "stderr"
            and isinstance(value.value, ast.Name)
            and value.value.id == "sys"
        ):
            return True
    return False


def _is_nonzero_int_return(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Return)
        and isinstance(stmt.value, ast.Constant)
        and type(stmt.value.value) is int
        and stmt.value.value != 0
    )


def _statement_lists(node: ast.AST) -> Iterable[List[ast.stmt]]:
    for child in ast.walk(node):
        for field in ("body", "orelse", "finalbody"):
            block = getattr(child, field, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block


def _exception_name(node: Optional[ast.expr]) -> Optional[str]:
    """Name of the exception in ``raise X(...)`` / ``raise X``."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _args_attr(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "args"
    ):
        return node.attr
    return None


def _check_handler(report: Report, function: ast.FunctionDef, where: str) -> None:
    source = f"{where}:{function.lineno}"
    required: set = set()
    read: set = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Call):
            name = node.func.id if isinstance(node.func, ast.Name) else (
                node.func.attr if isinstance(node.func, ast.Attribute) else None
            )
            if name == "exit" and isinstance(node.func, ast.Attribute) and (
                isinstance(node.func.value, ast.Name) and node.func.value.id == "sys"
            ):
                report.add(
                    ERROR,
                    "IDM102",
                    f"{function.name} calls sys.exit at line {node.lineno}; "
                    "handlers return an exit code to main()",
                    source=source,
                )
            if name == "_require_count" and len(node.args) >= 2:
                attr = _args_attr(node.args[1])
                if attr is not None:
                    required.add(attr)
        attr = _args_attr(node) if isinstance(node, ast.Attribute) else None
        if attr is not None:
            read.add(attr)
    for attr in sorted(read & COUNT_ATTRS - required):
        flag = "--" + attr.replace("_", "-")
        report.add(
            ERROR,
            "IDM106",
            f"{function.name} reads args.{attr} without "
            f'_require_count("{flag}", args.{attr}) — a bad {flag} must '
            "raise a raw ValueError before any work happens",
            source=source,
        )
    for block in _statement_lists(function):
        for index, stmt in enumerate(block):
            if not _is_stderr_print(stmt):
                continue
            follower = block[index + 1] if index + 1 < len(block) else None
            if follower is None or not _is_nonzero_int_return(follower):
                report.add(
                    ERROR,
                    "IDM103",
                    f"{function.name} prints to stderr at line "
                    f"{stmt.lineno} without an immediate "
                    "'return <nonzero>' — the error would be reported but "
                    "not reflected in the exit code",
                    source=f"{where}:{stmt.lineno}",
                )


def check_source(source: str, filename: str = "<string>") -> Report:
    """Check one module's source text; findings carry ``file:line`` sources."""
    report = Report(subject=f"idiom check: {filename}")
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        report.add(
            ERROR,
            "IDM100",
            f"cannot parse: {exc.msg}",
            source=f"{filename}:{exc.lineno or 0}",
        )
        return report

    handlers = [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef) and node.name.startswith("_cmd_")
    ]
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            report.add(
                ERROR,
                "IDM101",
                "bare 'except:' swallows SystemExit and KeyboardInterrupt; "
                "catch Exception (or something narrower)",
                source=f"{filename}:{node.lineno}",
            )
        if isinstance(node, ast.Raise):
            name = _exception_name(node.exc)
            if name == "ConfigError" and handlers:
                report.add(
                    ERROR,
                    "IDM104",
                    "CLI modules report spec errors, they do not raise "
                    "ConfigError themselves",
                    source=f"{filename}:{node.lineno}",
                )
            if (
                name is not None
                and name.endswith("Error")
                and isinstance(node.exc, ast.Call)
                and len(node.exc.args) == 1
                and isinstance(node.exc.args[0], ast.Constant)
                and isinstance(node.exc.args[0].value, str)
                and _MUST_BE_RANGE.search(node.exc.args[0].value)
            ):
                report.add(
                    ERROR,
                    "IDM105",
                    f"{name} message {node.exc.args[0].value!r} rejects a "
                    "value without showing it — use an f-string "
                    "(\"... must be >= 1, got {value}\")",
                    source=f"{filename}:{node.lineno}",
                )
    for function in handlers:
        _check_handler(report, function, filename)
    return report


def check_paths(paths: Sequence[str]) -> Report:
    """Check every ``*.py`` under the given files/directories."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    merged = Report(subject=f"idiom check over {len(files)} file(s)")
    for path in files:
        merged.extend(check_source(path.read_text(encoding="utf-8"), str(path)))
    return merged


def main(argv: Optional[Sequence[str]] = None) -> int:
    paths = list(argv) if argv else ["src/repro"]
    report = check_paths(paths)
    if report.diagnostics:
        print(report.render(limit=None))
    else:
        print(f"{report.subject}: clean")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
