"""Typed findings shared by every static checker in :mod:`repro.check`.

A :class:`Diagnostic` is one finding with a severity, a stable code (``DTP002``,
``RS001``, ``IDM103``, ...) and provenance — the state, byte, rule or source
location the finding is about.  A :class:`Report` is an ordered collection of
them with the aggregation helpers the CLI and :meth:`repro.api.Session.verify`
need (error counting, JSON serialisation, text rendering).

Severity semantics follow the usual linter convention:

* ``error``   — the artifact is wrong; scanning with it can mis-match.
* ``warning`` — legal but suspicious (duplicate alerts, hardware-capacity
  overruns the repair pass would have to fix).
* ``info``    — observations that carry no judgement.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static check."""

    severity: str
    code: str
    message: str
    #: automaton state id the finding is about (program verifier)
    state: Optional[int] = None
    #: input byte value the finding is about (program verifier)
    byte: Optional[int] = None
    #: pattern id / sid / rule-file line the finding is about (linter)
    rule: Optional[int] = None
    #: originating check context, e.g. ``"dtp"``, ``"block[2]"``, ``"cli.py:41"``
    source: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_ORDER:
            raise ValueError(
                f"severity must be one of {sorted(_SEVERITY_ORDER)}, got {self.severity!r}"
            )

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON artifact / ``--json`` output)."""
        return {key: value for key, value in asdict(self).items() if value not in (None, "")}

    def render(self) -> str:
        """One-line human form: ``error DTP002 [dtp state=3 byte=0x69] message``."""
        where = []
        if self.source:
            where.append(self.source)
        if self.state is not None:
            where.append(f"state={self.state}")
        if self.byte is not None:
            where.append(f"byte=0x{self.byte:02x}")
        if self.rule is not None:
            where.append(f"rule={self.rule}")
        location = f" [{' '.join(where)}]" if where else ""
        return f"{self.severity} {self.code}{location} {self.message}"


@dataclass
class Report:
    """An ordered collection of diagnostics plus aggregation helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: free-form description of what was checked (shown in headers / JSON)
    subject: str = ""

    def add(
        self,
        severity: str,
        code: str,
        message: str,
        *,
        state: Optional[int] = None,
        byte: Optional[int] = None,
        rule: Optional[int] = None,
        source: str = "",
    ) -> Diagnostic:
        diagnostic = Diagnostic(
            severity=severity,
            code=code,
            message=message,
            state=state,
            byte=byte,
            rule=rule,
            source=source,
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "Report") -> "Report":
        """Absorb another report's diagnostics (subject is kept)."""
        self.diagnostics.extend(other.diagnostics)
        return self

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings/info do not fail a check)."""
        return not self.errors

    def counts(self) -> Dict[str, int]:
        out = {ERROR: 0, WARNING: 0, INFO: 0}
        for diagnostic in self.diagnostics:
            out[diagnostic.severity] += 1
        return out

    def sorted(self) -> List[Diagnostic]:
        """Diagnostics ordered by severity, then insertion order."""
        return sorted(
            self.diagnostics, key=lambda d: _SEVERITY_ORDER[d.severity]
        )

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        counts = self.counts()
        return {
            "subject": self.subject,
            "ok": self.ok,
            "errors": counts[ERROR],
            "warnings": counts[WARNING],
            "diagnostics": [d.as_dict() for d in self.sorted()],
        }

    def render(self, limit: Optional[int] = 50) -> str:
        """Multi-line human rendering; at most ``limit`` findings are shown."""
        counts = self.counts()
        header = (
            f"{self.subject or 'check'}: "
            f"{counts[ERROR]} error(s), {counts[WARNING]} warning(s)"
        )
        shown = self.sorted()
        lines = [header]
        if limit is not None and len(shown) > limit:
            lines.extend(f"  {d.render()}" for d in shown[:limit])
            lines.append(f"  ... {len(shown) - limit} more finding(s) suppressed")
        else:
            lines.extend(f"  {d.render()}" for d in shown)
        return "\n".join(lines)


def merge_reports(subject: str, reports: Iterable[Report]) -> Report:
    """Concatenate several reports under one subject line."""
    merged = Report(subject=subject)
    for report in reports:
        merged.extend(report)
    return merged
