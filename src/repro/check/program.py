"""Static program verifier: prove compiled-artifact invariants without scanning.

The dynamic harnesses (``DTPAutomaton.verify_equivalence``, the
``assert_equivalent_events`` fixture) *sample* behaviour by scanning traffic.
This module walks the compiled artifacts themselves and proves the invariants
over the whole state graph:

* **DTP pruning exactness** — every pruned transition is reproduced by the
  256-entry default lookup table, and no default ever lands deeper than the
  true longest-suffix state.  The proof enumerates *consistent histories*:
  at a depth-``k`` state (``k >= 2``) the two preceding input bytes are fixed
  by the state's own prefix, so the deep rows are checked vectorised against
  that canonical history; depth-1 and root rows quantify over the finite set
  of ``(prev1, prev2)`` classes the resolver can actually distinguish (the
  stored preceding bytes of the d2/d3 entries, plus an arbitrary
  representative of "anything else"), keeping only classes consistent with
  being at that state (a history whose suffix is a deeper trie path can never
  leave the automaton at the shallower state).
* **AC failure-link / move-function consistency** — table rows, failure links
  and propagated outputs of every backend are compared against an
  *independent* reference construction (dict-trie + BFS, deliberately not the
  production builder, so a builder bug cannot hide itself).
* **Structural bisimulation** — the ``ac``/``dense``/``bitmap``/``path``/
  ``dtp`` backends share state numbering by construction, so proving each
  backend's effective transition function and output sets equal to the
  reference exhibits the identity relation as a bisimulation between any two
  of them (:func:`verify_cross_backend`).
* **Memory-word packing round-trips** — every packed state decodes from its
  324-bit word image back to its stored pointers and match address, within
  the 13-pointer hardware limit, with no two states overlapping inside a
  word.
* **Match-memory completeness** — every pattern's terminal state is reachable
  (by walking the pattern through the reference table) and reports the
  pattern's string number through the match memory.

Findings are :class:`repro.check.diagnostics.Diagnostic` records; every
checker appends to a :class:`~repro.check.diagnostics.Report` and never
raises on a *finding* (only on misuse, e.g. verifying an object that is not a
compiled program).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..automata.aho_corasick import AhoCorasickDFA
from ..automata.bitmap_ac import BitmapAhoCorasick
from ..automata.path_compressed_ac import PathCompressedAhoCorasick
from ..automata.wu_manber import WuManber
from ..backend import get_backend
from ..core.accelerator_config import AcceleratorProgram, BlockProgram
from ..core.compiled import CompiledDenseProgram
from ..core.dtp_automaton import HARDWARE_MAX_POINTERS, DTPAutomaton
from ..core.match_memory import MatchMemory
from ..core.state_types import WORD_BITS
from .diagnostics import ERROR, WARNING, Report

ROOT = 0
ALPHABET = 256

#: Automaton backends that share trie state numbering (bisimulation family).
AUTOMATON_BACKENDS: Tuple[str, ...] = ("ac", "dense", "bitmap", "path", "dtp")

#: Findings reported per (code, source) before the remainder is summarised.
MAX_FINDINGS_PER_CODE = 20


class _Capped:
    """Per-code emission cap so a systematic corruption stays readable."""

    def __init__(self, report: Report):
        self.report = report
        self._counts: Dict[Tuple[str, str], int] = {}

    def add(self, severity: str, code: str, message: str, **kwargs) -> None:
        key = (code, kwargs.get("source", ""))
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        if count <= MAX_FINDINGS_PER_CODE:
            self.report.add(severity, code, message, **kwargs)

    def flush(self) -> None:
        for (code, source), count in self._counts.items():
            if count > MAX_FINDINGS_PER_CODE:
                self.report.add(
                    ERROR,
                    code,
                    f"... {count - MAX_FINDINGS_PER_CODE} further {code} "
                    f"finding(s) suppressed",
                    source=source,
                )


class Reference:
    """Independent Aho-Corasick reference built from the patterns alone.

    A plain dict-trie plus BFS closure — deliberately *not* the production
    :class:`~repro.automata.trie.Trie`/:class:`AhoCorasickDFA` code, so that a
    bug in the production builders is caught instead of reproduced.  State
    numbering follows pattern insertion order, which is exactly how every
    production automaton numbers its states.
    """

    def __init__(self, patterns: Sequence[bytes]):
        self.patterns = [bytes(p) for p in patterns]
        children: List[Dict[int, int]] = [{}]
        parent: List[int] = [ROOT]
        label: List[int] = [-1]
        depth: List[int] = [0]
        own_outputs: List[List[int]] = [[]]
        for pid, pattern in enumerate(self.patterns):
            node = ROOT
            for byte in pattern:
                nxt = children[node].get(byte)
                if nxt is None:
                    nxt = len(children)
                    children[node][byte] = nxt
                    children.append({})
                    parent.append(node)
                    label.append(byte)
                    depth.append(depth[node] + 1)
                    own_outputs.append([])
                node = nxt
            own_outputs[node].append(pid)

        self.children = children
        self.parent = np.asarray(parent, dtype=np.int64)
        self.label = np.asarray(label, dtype=np.int64)
        self.depth = np.asarray(depth, dtype=np.int64)
        self.num_states = len(children)

        # Failure function via BFS over the dict trie.
        fail = [ROOT] * self.num_states
        order: List[int] = [ROOT]
        index = 0
        while index < len(order):
            state = order[index]
            index += 1
            for byte, child in children[state].items():
                order.append(child)
                if state == ROOT:
                    fail[child] = ROOT
                    continue
                cursor = fail[state]
                while cursor != ROOT and byte not in children[cursor]:
                    cursor = fail[cursor]
                candidate = children[cursor].get(byte, ROOT)
                fail[child] = ROOT if candidate == child else candidate
        self.fail = fail
        self.bfs_order = order

        # Move function: inherit the failure row, overwrite own goto edges.
        table = np.zeros((self.num_states, ALPHABET), dtype=np.int64)
        for byte, child in children[ROOT].items():
            table[ROOT, byte] = child
        for state in order[1:]:
            table[state] = table[fail[state]]
            for byte, child in children[state].items():
                table[state, byte] = child
        self.table = table

        # Outputs propagated along failure links (own first, as production does).
        outputs: List[List[int]] = [[] for _ in range(self.num_states)]
        for state in order:
            outputs[state] = list(own_outputs[state]) + list(outputs[self.fail[state]])
        self.outputs = outputs

    def terminal_state(self, pattern: bytes) -> int:
        """The state reached by walking ``pattern`` from the root."""
        state = ROOT
        for byte in pattern:
            state = int(self.table[state, byte])
        return state


def _outputs_match(got: Iterable[int], want: Iterable[int]) -> bool:
    return sorted(got) == sorted(want)


def _check_state_count(
    capped: _Capped, got: int, ref: Reference, source: str
) -> bool:
    if got != ref.num_states:
        capped.add(
            ERROR,
            "STR001",
            f"program has {got} states, reference construction has "
            f"{ref.num_states}",
            source=source,
        )
        return False
    return True


def _check_outputs(
    capped: _Capped,
    outputs_of,
    ref: Reference,
    source: str,
    code: str = "STR003",
) -> None:
    for state in range(ref.num_states):
        if not _outputs_match(outputs_of(state), ref.outputs[state]):
            capped.add(
                ERROR,
                code,
                f"output set {sorted(outputs_of(state))} != reference "
                f"{sorted(ref.outputs[state])}",
                state=state,
                source=source,
            )


def _check_pattern_reachability(
    capped: _Capped, outputs_of, ref: Reference, source: str
) -> None:
    """Every pattern has a reachable accepting state reporting its id."""
    for pid, pattern in enumerate(ref.patterns):
        terminal = ref.terminal_state(pattern)
        if pid not in list(outputs_of(terminal)):
            capped.add(
                ERROR,
                "STR004",
                f"pattern {pid} ({pattern!r}) walks to state {terminal} "
                "but is not reported there",
                state=terminal,
                rule=pid,
                source=source,
            )


def _check_table(
    capped: _Capped,
    table: np.ndarray,
    ref: Reference,
    source: str,
    code: str = "STR002",
) -> None:
    mismatched = np.argwhere(np.asarray(table, dtype=np.int64) != ref.table)
    for state, byte in mismatched.tolist():
        capped.add(
            ERROR,
            code,
            f"transition -> {int(table[state, byte])}, reference says "
            f"{int(ref.table[state, byte])}",
            state=int(state),
            byte=int(byte),
            source=source,
        )


def _closure_table(
    capped: _Capped,
    children_rows: Sequence[Dict[int, int]],
    fail: Sequence[int],
    ref: Reference,
    source: str,
) -> Optional[np.ndarray]:
    """Effective move function of a goto/failure structure.

    ``eff[s] = eff[fail[s]]`` overwritten by the state's own goto edges — the
    closed form of the failure walk, valid because failure links strictly
    decrease depth (checked first; a cyclic or depth-increasing link makes
    the walk potentially non-terminating and is an error in itself).
    """
    n = ref.num_states
    bad = False
    for state in range(1, n):
        target = fail[state]
        if not 0 <= target < n or ref.depth[target] >= ref.depth[state]:
            capped.add(
                ERROR,
                "STR005",
                f"failure link -> {target} does not decrease depth "
                f"({int(ref.depth[state])} -> "
                f"{int(ref.depth[target]) if 0 <= target < n else '?'})",
                state=state,
                source=source,
            )
            bad = True
    if bad:
        return None
    eff = np.zeros((n, ALPHABET), dtype=np.int64)
    for state in sorted(range(n), key=lambda s: int(ref.depth[s])):
        if state != ROOT:
            eff[state] = eff[fail[state]]
        for byte, child in children_rows[state].items():
            eff[state, byte] = child
    return eff


def _check_fail(
    capped: _Capped, fail: Sequence[int], ref: Reference, source: str, code: str
) -> None:
    for state in range(ref.num_states):
        if int(fail[state]) != int(ref.fail[state]):
            capped.add(
                ERROR,
                code,
                f"failure link -> {int(fail[state])}, reference says "
                f"{int(ref.fail[state])}",
                state=state,
                source=source,
            )


# ----------------------------------------------------------------------
# per-backend checkers
# ----------------------------------------------------------------------
def _check_ac(capped: _Capped, program: AhoCorasickDFA, ref: Reference) -> None:
    source = "ac"
    if not _check_state_count(capped, program.num_states, ref, source):
        return
    _check_table(capped, program.table, ref, source, code="AC001")
    _check_fail(capped, program.fail, ref, source, code="AC002")
    _check_outputs(capped, lambda s: program.outputs[s], ref, source, code="AC003")
    _check_pattern_reachability(capped, lambda s: program.outputs[s], ref, source)


def _check_dense(capped: _Capped, program: CompiledDenseProgram, ref: Reference) -> None:
    source = "dense"
    if not _check_state_count(capped, program.num_states, ref, source):
        return
    _check_table(capped, program.table, ref, source, code="DEN001")
    _check_outputs(capped, program.matches_of, ref, source, code="DEN002")
    _check_pattern_reachability(capped, program.matches_of, ref, source)

    # The hot-loop signed flat table must agree with the dense table: absolute
    # values are the targets, the sign marks transitions into matching states.
    signed = program.signed_table
    if signed.shape != program.table.shape:
        capped.add(
            ERROR,
            "DEN003",
            f"signed table shape {signed.shape} != table shape "
            f"{program.table.shape}",
            source=source,
        )
        return
    has_match = np.fromiter(
        (len(ref.outputs[s]) > 0 for s in range(ref.num_states)),
        dtype=bool,
        count=ref.num_states,
    )
    targets_ok = np.abs(signed.astype(np.int64)) == program.table.astype(np.int64)
    signs_ok = (signed < 0) == has_match[program.table]
    for state, byte in np.argwhere(~(targets_ok & signs_ok)).tolist():
        capped.add(
            ERROR,
            "DEN003",
            f"signed flat entry {int(signed[state, byte])} disagrees with "
            f"table target {int(program.table[state, byte])} "
            "(value or match-sign)",
            state=int(state),
            byte=int(byte),
            source=source,
        )


def _check_bitmap(capped: _Capped, program: BitmapAhoCorasick, ref: Reference) -> None:
    source = "bitmap"
    if not _check_state_count(capped, program.num_states, ref, source):
        return
    # Bitmap + popcount-packed child arrays must encode exactly the trie edges.
    decoded_rows: List[Dict[int, int]] = []
    for state in range(ref.num_states):
        decoded = dict(program.children_of(state))
        decoded_rows.append(decoded)
        if decoded != ref.children[state]:
            capped.add(
                ERROR,
                "BMP001",
                f"bitmap/popcount children {decoded} != reference trie edges "
                f"{ref.children[state]}",
                state=state,
                source=source,
            )
    _check_fail(capped, program.fail, ref, source, code="BMP002")
    _check_outputs(capped, lambda s: program.outputs[s], ref, source, code="BMP003")
    _check_pattern_reachability(capped, lambda s: program.outputs[s], ref, source)
    # The failure walk's effective move function must equal the reference DFA.
    eff = _closure_table(capped, decoded_rows, program.fail, ref, source)
    if eff is not None:
        _check_table(capped, eff, ref, source, code="BMP004")


def _check_path(
    capped: _Capped, program: PathCompressedAhoCorasick, ref: Reference
) -> None:
    source = "path"
    trie = program.trie
    if not _check_state_count(capped, trie.num_states, ref, source):
        return
    for state in range(ref.num_states):
        if dict(trie.children[state]) != ref.children[state]:
            capped.add(
                ERROR,
                "PTH001",
                f"trie edges {dict(trie.children[state])} != reference "
                f"{ref.children[state]}",
                state=state,
                source=source,
            )
    _check_fail(capped, program.fail, ref, source, code="PTH002")
    _check_outputs(capped, lambda s: program.outputs[s], ref, source, code="PTH003")
    _check_pattern_reachability(capped, lambda s: program.outputs[s], ref, source)

    # Node cover: every state lives in exactly one node; path nodes are
    # single-child non-matching chains whose characters spell their labels.
    owner_count = [0] * ref.num_states
    for node_id, node in enumerate(program.nodes):
        for state in node.states:
            owner_count[state] += 1
            if program.node_of(state) != node_id:
                capped.add(
                    ERROR,
                    "PTH004",
                    f"state is indexed under node {program.node_of(state)} "
                    f"but stored in node {node_id}",
                    state=state,
                    source=source,
                )
        if node.kind == "path":
            spelled = bytes(int(ref.label[s]) for s in node.states)
            if node.characters != spelled:
                capped.add(
                    ERROR,
                    "PTH004",
                    f"path node {node_id} characters {node.characters!r} do "
                    f"not spell its states' labels {spelled!r}",
                    source=source,
                )
            for prev, state in zip(node.states, node.states[1:]):
                if int(ref.parent[state]) != prev:
                    capped.add(
                        ERROR,
                        "PTH004",
                        f"path node {node_id} chain breaks: state {state} is "
                        f"not a child of {prev}",
                        state=state,
                        source=source,
                    )
            for state in node.states[:-1]:
                if len(ref.children[state]) != 1 or ref.outputs[state]:
                    capped.add(
                        ERROR,
                        "PTH004",
                        "path node interior state must have exactly one child "
                        "and no outputs (match points must stay addressable)",
                        state=state,
                        source=source,
                    )
    for state, count in enumerate(owner_count):
        if count != 1:
            capped.add(
                ERROR,
                "PTH004",
                f"state is covered by {count} nodes (must be exactly 1)",
                state=state,
                source=source,
            )
    eff = _closure_table(
        capped,
        [dict(trie.children[s]) for s in range(ref.num_states)],
        program.fail,
        ref,
        source,
    )
    if eff is not None:
        _check_table(capped, eff, ref, source, code="PTH005")


# ----------------------------------------------------------------------
# DTP: pruning exactness
# ----------------------------------------------------------------------
def _default_arrays(defaults) -> Tuple[np.ndarray, ...]:
    """Vector form of the lookup table; ``-2`` never equals a real byte."""
    d1 = np.asarray(defaults.d1, dtype=np.int64)
    d2p = np.full((ALPHABET, 4), -2, dtype=np.int64)
    d2t = np.zeros((ALPHABET, 4), dtype=np.int64)
    for byte, entries in defaults.d2.items():
        for slot, entry in enumerate(entries[:4]):
            d2p[byte, slot] = entry.preceding_byte
            d2t[byte, slot] = entry.state
    d3p0 = np.full(ALPHABET, -2, dtype=np.int64)
    d3p1 = np.full(ALPHABET, -2, dtype=np.int64)
    d3t = np.zeros(ALPHABET, dtype=np.int64)
    for byte, entry in defaults.d3.items():
        d3p0[byte] = entry.preceding_bytes[0]
        d3p1[byte] = entry.preceding_bytes[1]
        d3t[byte] = entry.state
    return d1, d2p, d2t, d3p0, d3p1, d3t


def _vector_resolve(
    arrays: Tuple[np.ndarray, ...], prev1: np.ndarray, prev2: np.ndarray
) -> np.ndarray:
    """``defaults.resolve`` for whole rows: one (prev1, prev2) pair per row.

    Applied in reverse priority — d1 base, then d2 slots 3..0 (slot 0 wins,
    matching the resolver's first-match scan), then d3 on top.
    """
    d1, d2p, d2t, d3p0, d3p1, d3t = arrays
    rows = prev1.shape[0]
    resolved = np.broadcast_to(d1, (rows, ALPHABET)).copy()
    for slot in range(3, -1, -1):
        hit = prev1[:, None] == d2p[None, :, slot]
        resolved = np.where(hit, d2t[None, :, slot], resolved)
    hit3 = (prev1[:, None] == d3p1[None, :]) & (prev2[:, None] == d3p0[None, :])
    return np.where(hit3, d3t[None, :], resolved)


def _report_default_mismatch(
    capped: _Capped,
    ref: Reference,
    state: int,
    byte: int,
    resolved: int,
    expected: int,
    history: str,
    source: str,
) -> None:
    if int(ref.depth[resolved]) > int(ref.depth[expected]):
        capped.add(
            ERROR,
            "DTP003",
            f"default resolution lands at state {resolved} "
            f"(depth {int(ref.depth[resolved])}) — deeper than the true "
            f"longest-suffix state {expected} "
            f"(depth {int(ref.depth[expected])}) under history {history}",
            state=state,
            byte=byte,
            source=source,
        )
    else:
        capped.add(
            ERROR,
            "DTP002",
            f"pruned transition resolves to {resolved} via the lookup table "
            f"but the true target is {expected} under history {history}",
            state=state,
            byte=byte,
            source=source,
        )


def _consistent_prev2_for_depth1(ref: Reference, state: int, candidate: int) -> bool:
    """Can the byte before ``label[state]`` have been ``candidate`` at ``state``?

    Only if ``(candidate, label[state])`` is *not* a depth-2 trie path —
    otherwise the longest suffix would be that deeper state, not ``state``.
    """
    via = ref.children[ROOT].get(candidate)
    return via is None or int(ref.label[state]) not in ref.children[via]


def _check_dtp_automaton(
    capped: _Capped, dtp: DTPAutomaton, ref: Reference, source: str = "dtp"
) -> None:
    if not _check_state_count(capped, dtp.num_states, ref, source):
        return
    defaults = dtp.defaults
    _check_outputs(capped, lambda s: dtp.outputs[s], ref, source, code="DTP005")
    _check_pattern_reachability(capped, lambda s: dtp.outputs[s], ref, source)

    # --- well-formedness of the default table itself (DTP004) -------------
    for byte in range(ALPHABET):
        d1_state = int(defaults.d1[byte])
        expected_d1 = ref.children[ROOT].get(byte, ROOT)
        if d1_state != expected_d1:
            capped.add(
                ERROR,
                "DTP004",
                f"depth-1 default -> {d1_state}, but the depth-1 state for "
                f"this byte is {expected_d1}",
                byte=byte,
                source=source,
            )
    for byte, entries in defaults.d2.items():
        for entry in entries:
            via = ref.children[ROOT].get(entry.preceding_byte)
            expected = None if via is None else ref.children[via].get(byte)
            if expected != entry.state:
                capped.add(
                    ERROR,
                    "DTP004",
                    f"depth-2 default (preceding {entry.preceding_byte:#04x})"
                    f" -> {entry.state}, but the trie path resolves to "
                    f"{expected}",
                    byte=byte,
                    source=source,
                )
    for byte, entry in defaults.d3.items():
        w0, w1 = entry.preceding_bytes
        via1 = ref.children[ROOT].get(w0)
        via2 = None if via1 is None else ref.children[via1].get(w1)
        expected = None if via2 is None else ref.children[via2].get(byte)
        if expected != entry.state:
            capped.add(
                ERROR,
                "DTP004",
                f"depth-3 default (preceding {w0:#04x},{w1:#04x}) -> "
                f"{entry.state}, but the trie path resolves to {expected}",
                byte=byte,
                source=source,
            )

    # --- stored pointers are exact (DTP001) + capacity (DTP006) -----------
    stored_mask = np.zeros((ref.num_states, ALPHABET), dtype=bool)
    for state, row in enumerate(dtp.stored):
        for byte, target in row.items():
            stored_mask[state, byte] = True
            if target != int(ref.table[state, byte]):
                capped.add(
                    ERROR,
                    "DTP001",
                    f"stored pointer -> {target}, reference says "
                    f"{int(ref.table[state, byte])}",
                    state=state,
                    byte=byte,
                    source=source,
                )
        if len(row) > HARDWARE_MAX_POINTERS:
            capped.add(
                WARNING,
                "DTP006",
                f"state stores {len(row)} pointers; the hardware handles at "
                f"most {HARDWARE_MAX_POINTERS} (packing will reject this "
                "block — rebuild with max_stored_pointers set)",
                state=state,
                source=source,
            )

    arrays = _default_arrays(defaults)

    # --- pruned transitions, depth >= 2: canonical history, vectorised ----
    deep = np.flatnonzero(ref.depth >= 2)
    chunk = 8192
    for start in range(0, deep.size, chunk):
        states = deep[start:start + chunk]
        prev1 = ref.label[states]
        prev2 = ref.label[ref.parent[states]]
        resolved = _vector_resolve(arrays, prev1, prev2)
        expected = ref.table[states]
        bad = ~stored_mask[states] & (resolved != expected)
        for row, byte in np.argwhere(bad).tolist():
            state = int(states[row])
            _report_default_mismatch(
                capped,
                ref,
                state,
                int(byte),
                int(resolved[row, byte]),
                int(expected[row, byte]),
                f"(prev2={int(prev2[row]):#04x}, prev1={int(prev1[row]):#04x})",
                source,
            )

    # --- pruned transitions, depth-1 rows: finite history case split ------
    # At a depth-1 state prev1 is pinned to the state's label; prev2 ranges
    # over None plus any byte w with (w, label) not a deeper trie path.  The
    # resolver only ever distinguishes prev2 against the d3 entry's first
    # preceding byte, so two cases per byte cover every consistent history.
    for state in np.flatnonzero(ref.depth == 1).tolist():
        prev1 = int(ref.label[state])
        for byte in range(ALPHABET):
            if stored_mask[state, byte]:
                continue
            expected = int(ref.table[state, byte])
            cases: List[Tuple[Optional[int], str]] = [(None, "prev2=None")]
            entry = defaults.d3.get(byte)
            if entry is not None and entry.preceding_bytes[1] == prev1:
                w0 = entry.preceding_bytes[0]
                if _consistent_prev2_for_depth1(ref, state, w0):
                    cases.append((w0, f"prev2={w0:#04x}"))
            for prev2, describe in cases:
                resolved = defaults.resolve(byte, prev1, prev2)
                if resolved != expected:
                    _report_default_mismatch(
                        capped, ref, state, byte, resolved, expected,
                        f"({describe}, prev1={prev1:#04x})", source,
                    )

    # --- pruned transitions, root row: finite history case split ----------
    # At the root the last byte v must not be a depth-1 path (else the
    # automaton would sit deeper) or the stream just started (None).  The
    # resolver distinguishes v against the d2 preceding bytes and the d3
    # second preceding byte; everything else behaves like one "other" class.
    root_children = set(ref.children[ROOT])
    for byte in range(ALPHABET):
        if stored_mask[ROOT, byte]:
            continue
        expected = int(ref.table[ROOT, byte])
        distinguished = {
            entry.preceding_byte for entry in defaults.d2.get(byte, [])
        }
        entry3 = defaults.d3.get(byte)
        if entry3 is not None:
            distinguished.add(entry3.preceding_bytes[1])
        other = next(
            (v for v in range(ALPHABET)
             if v not in root_children and v not in distinguished),
            None,
        )
        cases: List[Tuple[Optional[int], Optional[int], str]] = [
            (None, None, "start of stream")
        ]
        if other is not None:
            cases.append((other, None, f"prev1={other:#04x} (undistinguished)"))
        for v in sorted(distinguished):
            if v in root_children:
                continue  # inconsistent: the automaton could not be at root
            cases.append((v, None, f"prev1={v:#04x}, prev2=None"))
            if entry3 is not None and entry3.preceding_bytes[1] == v:
                w0 = entry3.preceding_bytes[0]
                via = ref.children[ROOT].get(w0)
                if via is None or v not in ref.children[via]:
                    cases.append((v, w0, f"prev1={v:#04x}, prev2={w0:#04x}"))
        for prev1, prev2, describe in cases:
            resolved = defaults.resolve(byte, prev1, prev2)
            if resolved != expected:
                _report_default_mismatch(
                    capped, ref, ROOT, byte, resolved, expected,
                    f"({describe})", source,
                )


def _dtp_effective_table(dtp: DTPAutomaton, ref: Reference) -> np.ndarray:
    """Effective move function of a DTP automaton under canonical histories."""
    prev1 = np.where(ref.depth >= 1, ref.label, -3)
    prev2 = np.where(ref.depth >= 2, ref.label[ref.parent], -3)
    eff = _vector_resolve(_default_arrays(dtp.defaults), prev1, prev2)
    for state, row in enumerate(dtp.stored):
        for byte, target in row.items():
            eff[state, byte] = target
    return eff


# ----------------------------------------------------------------------
# hardware-layer checkers (packing, lookup encoding, match memory, image)
# ----------------------------------------------------------------------
def _check_packing(capped: _Capped, block: BlockProgram, ref: Reference, source: str) -> None:
    packed = block.packed
    dtp = block.dtp
    for state in range(dtp.num_states):
        if state not in packed.placements or state not in packed.records:
            capped.add(
                ERROR,
                "PACK001",
                "state has no placement/record in the packed state machine",
                state=state,
                source=source,
            )
            return
    # No two states may overlap inside a 324-bit word.
    by_word: Dict[int, List[Tuple[int, int, int]]] = {}
    for state, placement in packed.placements.items():
        kind = placement.state_type
        by_word.setdefault(placement.word_index, []).append(
            (kind.bit_offset, kind.bit_offset + kind.width_bits, state)
        )
    for word_index, spans in by_word.items():
        spans.sort()
        for (_, end, state), (start, _, other) in zip(spans, spans[1:]):
            if start < end:
                capped.add(
                    ERROR,
                    "PACK002",
                    f"states {state} and {other} overlap inside word "
                    f"{word_index}",
                    state=other,
                    source=source,
                )
        if spans[-1][1] > WORD_BITS:
            capped.add(
                ERROR,
                "PACK002",
                f"word {word_index} spans {spans[-1][1]} bits "
                f"(limit {WORD_BITS})",
                state=spans[-1][2],
                source=source,
            )
    for state, record in packed.records.items():
        capacity = packed.placements[state].state_type.max_pointers
        if record.num_pointers > HARDWARE_MAX_POINTERS:
            capped.add(
                ERROR,
                "PACK003",
                f"record stores {record.num_pointers} pointers "
                f"(hardware limit {HARDWARE_MAX_POINTERS})",
                state=state,
                source=source,
            )
        elif record.num_pointers > capacity:
            capped.add(
                ERROR,
                "PACK003",
                f"record stores {record.num_pointers} pointers but its state "
                f"type holds {capacity}",
                state=state,
                source=source,
            )
        if sorted(record.pointers) != sorted(dtp.stored[state].items()):
            capped.add(
                ERROR,
                "PACK001",
                "record pointers disagree with the automaton's stored "
                "pointer list",
                state=state,
                source=source,
            )
        expected_address = block.match_memory.address_of(state)
        if record.match_address != expected_address:
            capped.add(
                ERROR,
                "PACK001",
                f"record match address {record.match_address} != match "
                f"memory address {expected_address}",
                state=state,
                source=source,
            )

    # Bit-level round trip: every word image decodes back to its pointers.
    try:
        words = packed.encode_words()
    except Exception as error:  # PackingError or a corrupted-geometry artefact
        capped.add(
            ERROR,
            "PACK002",
            f"encoding the packed state machine failed: {error}",
            source=source,
        )
        return
    for state, record in packed.records.items():
        decoded = packed.decode_state(words, state)
        if bool(decoded["has_match"]) != (record.match_address is not None):
            capped.add(
                ERROR,
                "PACK004",
                "decoded match flag disagrees with the record",
                state=state,
                source=source,
            )
        elif record.match_address is not None and (
            decoded["match_address"] != record.match_address
        ):
            capped.add(
                ERROR,
                "PACK004",
                f"decoded match address {decoded['match_address']} != "
                f"record address {record.match_address}",
                state=state,
                source=source,
            )
        if record.pointers:
            # unused slots pad by repeating a stored pointer, so the decoded
            # *set* must equal the stored set, address-mapped
            want = {
                (char,) + packed.address_of(target)
                for char, target in record.pointers
            }
            got = set(decoded["pointers"])
            if got != want:
                capped.add(
                    ERROR,
                    "PACK004",
                    f"decoded pointer set {sorted(got)} != encoded "
                    f"{sorted(want)}",
                    state=state,
                    source=source,
                )


def _check_lookup_encoding(capped: _Capped, block: BlockProgram, source: str) -> None:
    lookup = block.lookup
    defaults = block.dtp.defaults
    for byte in range(ALPHABET):
        fields = lookup.decode_word(byte)
        d1_state = int(defaults.d1[byte])
        if fields["d1_valid"] != (d1_state != ROOT) or lookup.d1_state[byte] != d1_state:
            capped.add(
                ERROR,
                "LKT001",
                f"encoded depth-1 default (valid={fields['d1_valid']}, "
                f"state={lookup.d1_state[byte]}) != table ({d1_state})",
                byte=byte,
                source=source,
            )
        entries = defaults.d2.get(byte, [])
        for slot in range(4):
            valid = lookup.d2_valid[byte][slot]
            if slot < len(entries):
                entry = entries[slot]
                preceding = fields["d2_preceding"][slot]
                if (not valid or preceding != entry.preceding_byte
                        or lookup.d2_states[byte][slot] != entry.state):
                    capped.add(
                        ERROR,
                        "LKT001",
                        f"encoded depth-2 slot {slot} "
                        f"(valid={valid}, preceding={preceding:#04x}) != "
                        f"table entry (preceding="
                        f"{entry.preceding_byte:#04x}, state={entry.state})",
                        byte=byte,
                        source=source,
                    )
            elif valid:
                capped.add(
                    ERROR,
                    "LKT001",
                    f"depth-2 slot {slot} marked valid but the table has no "
                    "entry",
                    byte=byte,
                    source=source,
                )
        entry3 = defaults.d3.get(byte)
        if entry3 is not None:
            if (not lookup.d3_valid[byte]
                    or fields["d3_preceding"] != entry3.preceding_bytes
                    or lookup.d3_state[byte] != entry3.state):
                capped.add(
                    ERROR,
                    "LKT001",
                    f"encoded depth-3 default {fields['d3_preceding']} / "
                    f"{lookup.d3_state[byte]} != table "
                    f"{entry3.preceding_bytes} / {entry3.state}",
                    byte=byte,
                    source=source,
                )
        elif lookup.d3_valid[byte]:
            capped.add(
                ERROR,
                "LKT001",
                "depth-3 default marked valid but the table has none",
                byte=byte,
                source=source,
            )


def _check_match_memory(
    capped: _Capped,
    memory: MatchMemory,
    outputs_of,
    string_numbers: Dict[int, int],
    ref: Reference,
    source: str,
) -> None:
    # Encoding round trip of every 27-bit word.
    for address, word in enumerate(memory.words):
        image = word[0] | (word[1] << 13) | (int(word[2]) << 26)
        if MatchMemory.decode_word(image) != word:
            capped.add(
                ERROR,
                "MAT002",
                f"word {word} does not round-trip through its 27-bit image",
                source=source,
            )
            break
    encoded = memory.encode_words()
    for address, (word, image) in enumerate(zip(memory.words, encoded)):
        if MatchMemory.decode_word(image) != word:
            capped.add(
                ERROR,
                "MAT002",
                f"encode_words()[{address}] decodes to "
                f"{MatchMemory.decode_word(image)}, stored word is {word}",
                source=source,
            )
    # Completeness: every matching state's list reads back its string numbers.
    for state in range(ref.num_states):
        want = sorted(string_numbers[pid] for pid in outputs_of(state))
        address = memory.address_of(state)
        if not want:
            if address is not None:
                capped.add(
                    ERROR,
                    "MAT001",
                    "non-matching state has a match memory address",
                    state=state,
                    source=source,
                )
            continue
        if address is None:
            capped.add(
                ERROR,
                "MAT001",
                f"matching state (string numbers {want}) has no match "
                "memory address",
                state=state,
                source=source,
            )
            continue
        got = sorted(memory.read_list(address))
        if got != want:
            capped.add(
                ERROR,
                "MAT001",
                f"match memory reads {got}, automaton outputs map to {want}",
                state=state,
                source=source,
            )


def _check_block_image(capped: _Capped, block: BlockProgram, source: str) -> None:
    """The address-level hardware image agrees with the logical structures."""
    from ..hardware.image import build_block_image

    image = build_block_image(block)
    packed = block.packed
    if image.root_address != packed.address_of(ROOT):
        capped.add(
            ERROR,
            "HWI001",
            f"image root address {image.root_address} != packed root "
            f"{packed.address_of(ROOT)}",
            source=source,
        )
    for state, row in enumerate(block.dtp.stored):
        entry = image.states.get(packed.address_of(state))
        if entry is None:
            capped.add(
                ERROR,
                "HWI001",
                "state has no entry in the block image",
                state=state,
                source=source,
            )
            continue
        want = {char: packed.address_of(target) for char, target in row.items()}
        if entry.pointers != want:
            capped.add(
                ERROR,
                "HWI001",
                "image pointer map disagrees with the stored pointer list",
                state=state,
                source=source,
            )
        if entry.match_address != block.match_memory.address_of(state):
            capped.add(
                ERROR,
                "HWI001",
                "image match address disagrees with the match memory",
                state=state,
                source=source,
            )


def _check_accelerator(capped: _Capped, program: AcceleratorProgram, ref: Reference) -> None:
    # Partition coverage: blocks hold disjoint groups that cover the ruleset,
    # and local ids map to the global string numbers the host reports.
    covered: Dict[bytes, str] = {}
    for block in program.blocks:
        source = f"block[{block.index}]"
        for local_id, rule in enumerate(block.ruleset):
            number = block.string_numbers.get(local_id)
            if number is None or not (
                0 <= number < len(ref.patterns)
            ) or ref.patterns[number] != rule.pattern:
                capped.add(
                    ERROR,
                    "ACC001",
                    f"local pattern {local_id} maps to string number "
                    f"{number}, which is not its position in the ruleset",
                    rule=local_id,
                    source=source,
                )
            if rule.pattern in covered:
                capped.add(
                    ERROR,
                    "ACC001",
                    f"pattern {rule.pattern!r} appears in {covered[rule.pattern]} "
                    f"and {source}",
                    rule=local_id,
                    source=source,
                )
            covered[rule.pattern] = source
    missing = [p for p in ref.patterns if p not in covered]
    if missing:
        capped.add(
            ERROR,
            "ACC001",
            f"{len(missing)} pattern(s) are in no block "
            f"(first: {missing[0]!r})",
            source="accelerator",
        )

    for block in program.blocks:
        source = f"block[{block.index}]"
        block_ref = Reference([rule.pattern for rule in block.ruleset])
        _check_dtp_automaton(capped, block.dtp, block_ref, source=source)
        _check_lookup_encoding(capped, block, source)
        _check_packing(capped, block, block_ref, source)
        _check_match_memory(
            capped,
            block.match_memory,
            lambda s: block.dtp.outputs[s],
            block.string_numbers,
            block_ref,
            source,
        )
        _check_block_image(capped, block, source)


def _check_wu_manber(capped: _Capped, program: WuManber, ref: Reference) -> None:
    """Shift-table soundness: a stored shift may never skip a real match."""
    source = "wu-manber"
    block = program.block_size
    m = program._minimum_length
    expected_shift: Dict[bytes, int] = {}
    for _, pattern in program._long_patterns:
        window = pattern[:m]
        for offset in range(m - block + 1):
            chunk = bytes(window[offset:offset + block])
            shift = m - block - offset
            expected_shift[chunk] = min(expected_shift.get(chunk, shift), shift)
    if program._default_shift > max(1, m - block + 1):
        capped.add(
            ERROR,
            "WM002",
            f"default shift {program._default_shift} exceeds the sound "
            f"maximum {max(1, m - block + 1)}",
            source=source,
        )
    for chunk, want in expected_shift.items():
        got = program._shift.get(chunk, program._default_shift)
        if got > want:
            capped.add(
                ERROR,
                "WM002",
                f"shift for block {chunk!r} is {got}, but a pattern window "
                f"allows at most {want} — matches would be skipped",
                source=source,
            )
    for pid, pattern in enumerate(program.patterns):
        if len(pattern) < block:
            if (pid, pattern) not in program._short_patterns:
                capped.add(
                    ERROR,
                    "WM001",
                    f"short pattern {pid} is missing from the prefix-scan "
                    "list",
                    rule=pid,
                    source=source,
                )
            continue
        suffix = bytes(pattern[:m][m - block:m])
        if pid not in program._hash.get(suffix, []):
            capped.add(
                ERROR,
                "WM001",
                f"pattern {pid} is missing from the hash bucket of its "
                f"window suffix {suffix!r}",
                rule=pid,
                source=source,
            )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def verify_program(program, patterns: Optional[Sequence[bytes]] = None) -> Report:
    """Statically verify one compiled program against its patterns.

    ``patterns`` defaults to ``program.patterns`` — pass them explicitly to
    verify a program against the ruleset it *should* implement (e.g. before
    hot-swapping it into a live service).
    """
    if patterns is None:
        patterns = program.patterns
    patterns = [bytes(p) for p in patterns]
    name = getattr(program, "backend_name", type(program).__name__)
    report = Report(subject=f"{name} program over {len(patterns)} pattern(s)")
    capped = _Capped(report)
    ref = Reference(patterns)

    if isinstance(program, AcceleratorProgram):
        _check_accelerator(capped, program, ref)
    elif isinstance(program, DTPAutomaton):
        _check_dtp_automaton(capped, program, ref)
    elif isinstance(program, AhoCorasickDFA):
        _check_ac(capped, program, ref)
    elif isinstance(program, CompiledDenseProgram):
        _check_dense(capped, program, ref)
    elif isinstance(program, BitmapAhoCorasick):
        _check_bitmap(capped, program, ref)
    elif isinstance(program, PathCompressedAhoCorasick):
        _check_path(capped, program, ref)
    elif isinstance(program, WuManber):
        _check_wu_manber(capped, program, ref)
    else:
        raise TypeError(
            f"cannot verify {type(program).__name__}: not a compiled program "
            "this verifier knows"
        )
    capped.flush()
    return report


def _effective_view(program, ref: Reference):
    """(effective transition table, outputs accessor) for bisimulation."""
    if isinstance(program, AhoCorasickDFA):
        return np.asarray(program.table, dtype=np.int64), lambda s: program.outputs[s]
    if isinstance(program, CompiledDenseProgram):
        return np.asarray(program.table, dtype=np.int64), program.matches_of
    if isinstance(program, BitmapAhoCorasick):
        rows = [dict(program.children_of(s)) for s in range(program.num_states)]
        capped = _Capped(Report())  # guard failures surface via the table diff
        eff = _closure_table(capped, rows, program.fail, ref, "bitmap")
        return eff, lambda s: program.outputs[s]
    if isinstance(program, PathCompressedAhoCorasick):
        trie = program.trie
        rows = [dict(trie.children[s]) for s in range(trie.num_states)]
        capped = _Capped(Report())
        eff = _closure_table(capped, rows, program.fail, ref, "path")
        return eff, lambda s: program.outputs[s]
    if isinstance(program, DTPAutomaton):
        return _dtp_effective_table(program, ref), lambda s: program.outputs[s]
    raise TypeError(f"no structural view for {type(program).__name__}")


def verify_cross_backend(
    patterns: Sequence[bytes],
    backends: Sequence[str] = AUTOMATON_BACKENDS,
) -> Report:
    """Prove the automaton backends structurally bisimilar on ``patterns``.

    All listed backends number their states identically (they share the trie
    construction), so the identity relation is a bisimulation iff every
    backend's effective move function and output sets equal the independent
    reference — which is what this checks.  No byte of traffic is scanned.
    """
    patterns = [bytes(p) for p in patterns]
    report = Report(
        subject=f"cross-backend equivalence ({', '.join(backends)}) over "
                f"{len(patterns)} pattern(s)"
    )
    capped = _Capped(report)
    ref = Reference(patterns)
    for name in backends:
        program = get_backend(name).compile(tuple(patterns))
        num_states = getattr(program, "num_states", ref.num_states)
        if not _check_state_count(capped, num_states, ref, name):
            continue
        eff, outputs_of = _effective_view(program, ref)
        if eff is None:
            capped.add(
                ERROR,
                "BSM001",
                "failure links do not strictly decrease depth; no effective "
                "move function exists",
                source=name,
            )
            continue
        mismatched = np.argwhere(eff != ref.table)
        for state, byte in mismatched.tolist():
            capped.add(
                ERROR,
                "BSM001",
                f"effective transition -> {int(eff[state, byte])}, the "
                f"common reference says {int(ref.table[state, byte])}",
                state=int(state),
                byte=int(byte),
                source=name,
            )
        _check_outputs(capped, outputs_of, ref, name, code="BSM002")
    capped.flush()
    return report
