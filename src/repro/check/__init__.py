"""Static verification layer: program prover, ruleset linter, idiom gate.

Three layers, one :class:`~repro.check.diagnostics.Report` currency:

* :func:`verify_program` / :func:`verify_cross_backend` — prove compiled
  artifacts correct (DTP pruning exactness, failure-link consistency,
  packing round-trips, match-memory completeness) without scanning a byte.
* :func:`lint_ruleset` / :func:`lint_rule_file` — content-level problems:
  duplicates, shadowed substrings, sid conflicts, hardware-capacity
  overruns.
* :mod:`repro.check.idioms` — AST enforcement of the CLI error idiom
  (``python -m repro.check.idioms``).

Surfaced as ``repro verify`` / ``repro lint`` and
:meth:`repro.api.Session.verify`.
"""

from .diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    Report,
    merge_reports,
)
from .idioms import check_paths, check_source
from .program import (
    AUTOMATON_BACKENDS,
    Reference,
    verify_cross_backend,
    verify_program,
)
from .ruleset import lint_rule_file, lint_ruleset

__all__ = [
    "ERROR",
    "INFO",
    "WARNING",
    "Diagnostic",
    "Report",
    "merge_reports",
    "check_paths",
    "check_source",
    "AUTOMATON_BACKENDS",
    "Reference",
    "verify_cross_backend",
    "verify_program",
    "lint_rule_file",
    "lint_ruleset",
]
