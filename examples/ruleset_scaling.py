#!/usr/bin/env python3
"""How memory, block count and throughput scale with the ruleset size.

Regenerates a miniature version of Table II on both FPGA targets, plus the
power/throughput trade-off of Figures 7 and 8, using smaller ruleset sizes so
the example runs in a few seconds.

Run with:  python examples/ruleset_scaling.py
"""

from repro import CYCLONE_III, STRATIX_III, compile_ruleset
from repro.analysis import format_table, power_curves
from repro.automata import AhoCorasickDFA
from repro.rulesets import generate_paper_rulesets

SIZES = (200, 400, 800, 1600)


def main() -> None:
    family = generate_paper_rulesets(sizes=SIZES, seed=42)

    for device in (STRATIX_III, CYCLONE_III):
        rows = []
        for size in SIZES:
            ruleset = family[size]
            baseline = AhoCorasickDFA.from_patterns(ruleset.patterns)
            program = compile_ruleset(ruleset, device)
            rows.append({
                "strings": size,
                "characters": ruleset.total_characters,
                "orig avg ptrs": round(baseline.average_pointers_per_state(), 2),
                "compressed avg": round(program.average_stored_pointers, 2),
                "blocks": program.blocks_per_group,
                "memory (bytes)": program.total_memory_bytes(),
                "bytes/string": round(program.total_memory_bytes() / size, 1),
                "throughput (Gbps)": round(program.throughput_gbps, 1),
            })
        print(format_table(rows, title=f"Scaling on {device.family}"))
        print()

    # the power/throughput fan-out of Figures 7/8, for the largest and the
    # smallest configuration on the Stratix III target
    blocks = {
        f"{SIZES[0]} strings": compile_ruleset(family[SIZES[0]], STRATIX_III).blocks_per_group,
        f"{SIZES[-1]} strings": compile_ruleset(family[SIZES[-1]], STRATIX_III).blocks_per_group,
    }
    for curve in power_curves(STRATIX_III, blocks, num_points=6):
        print(format_table(curve.points,
                           title=f"Power sweep — {curve.label} "
                                 f"({curve.blocks_per_group} block(s) per group)"))
        print()


if __name__ == "__main__":
    main()
