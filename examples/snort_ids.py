#!/usr/bin/env python3
"""A miniature Snort: parse rules, classify headers, scan payloads, raise alerts.

Demonstrates the full DPI rule semantics described in the paper's
introduction: a rule fires only when both its 5-tuple header pattern and all
of its content strings match.

Run with:  python examples/snort_ids.py
"""

from repro.ids import IntrusionDetectionSystem
from repro.rulesets import parse_rules
from repro.traffic import FiveTuple, Packet

SNORT_RULES = [
    'alert tcp $EXTERNAL_NET any -> $HOME_NET 80 '
    '(msg:"WEB-IIS cmd.exe access"; content:"cmd.exe"; nocase; sid:1002;)',

    'alert tcp $EXTERNAL_NET any -> $HOME_NET 80 '
    '(msg:"WEB-IIS CodeRed v2 root.exe"; content:"GET /"; content:"root.exe"; sid:1256;)',

    'alert udp any any -> any 53 '
    '(msg:"DNS query for known-bad domain"; content:"badguy|03|com"; sid:2100;)',

    'alert tcp any any -> $HOME_NET 445 '
    '(msg:"NETBIOS SMB suspicious marker"; content:"|DE AD BE EF|"; sid:3000;)',
]

PACKETS = [
    Packet(packet_id=0,
           header=FiveTuple("203.0.113.9", "192.168.1.20", 51515, 80, "tcp"),
           payload=b"GET /scripts/..%255c../winnt/system32/CMD.EXE?/c+dir HTTP/1.0\r\n"),
    Packet(packet_id=1,
           header=FiveTuple("203.0.113.9", "192.168.1.20", 51516, 80, "tcp"),
           payload=b"GET /default.ida?NNNN root.exe HTTP/1.0\r\n"),
    Packet(packet_id=2,
           header=FiveTuple("198.51.100.7", "192.168.1.53", 33333, 53, "udp"),
           payload=b"\x12\x34\x01\x00\x00\x01badguy\x03com\x00\x00\x01\x00\x01"),
    Packet(packet_id=3,  # right payload, wrong port -> header must veto it
           header=FiveTuple("198.51.100.7", "192.168.1.53", 33333, 8080, "tcp"),
           payload=b"cmd.exe but not on port 80"),
    Packet(packet_id=4,
           header=FiveTuple("192.0.2.1", "192.168.1.99", 1029, 445, "tcp"),
           payload=b"\x00SMB\xde\xad\xbe\xef trailing"),
    Packet(packet_id=5,
           header=FiveTuple("192.0.2.2", "192.168.1.99", 1030, 80, "tcp"),
           payload=b"GET /index.html HTTP/1.1\r\nHost: example.org\r\n"),
]


def main() -> None:
    specs = parse_rules(SNORT_RULES)
    ids = IntrusionDetectionSystem.from_specs(specs, use_hardware_model=True)
    print(f"loaded {len(ids.rules)} rules; content strings compiled into "
          f"{ids.program.blocks_per_group} string matching block(s) on {ids.device.family}")

    alerts = ids.process(PACKETS)
    print(f"\nprocessed {ids.stats.packets_processed} packets "
          f"({ids.stats.payload_bytes} payload bytes)")
    if not alerts:
        print("no alerts")
    for alert in alerts:
        print(f"  ALERT packet={alert.packet_id} sid={alert.sid} msg={alert.msg!r}")

    expected = {(0, 1002), (1, 1256), (2, 2100), (4, 3000)}
    got = {(a.packet_id, a.sid) for a in alerts}
    assert got == expected, f"unexpected alert set: {got ^ expected}"
    print("\nalert set matches the expected ground truth "
          "(packet 3 correctly suppressed by the header check)")


if __name__ == "__main__":
    main()
