"""Synthesise a capture whose flows exercise ``community_sample.rules``.

Writes a small pcap with HTTP and DNS flows that trip every rule in
``examples/community_sample.rules`` — anchored multi-content, nocase+pcre,
and the negated-content rule (one flow violates it, one satisfies it) — so
the CI smoke can drive ``scan-pcap`` and ``ids --pcap`` over genuine
community-style rules:

    python examples/make_community_pcap.py community_sample.pcap
"""

import sys

from repro.capture import write_packets
from repro.traffic.packet import FiveTuple, Packet


def build_packets():
    def flow(fid, payloads, sport, proto="tcp", dport=80, dst="192.168.0.1"):
        return [
            (
                FiveTuple(
                    src_ip=f"10.0.0.{fid}",
                    dst_ip=dst,
                    src_port=sport,
                    dst_port=dport,
                    protocol=proto,
                ),
                payload,
            )
            for payload in payloads
        ]

    items = []
    # sid 2000001 (GET ... HTTP/1.1, split across segments) and
    # sid 2000002 (upper-case cmd.exe confirmed by the pcre)
    items += flow(
        1,
        [b"GET /scripts/..%2f../CMD.EXE?/c+dir ", b"HTTP/1.1\r\nHost: x\r\n\r\n"],
        1111,
    )
    # sid 2000003: POST that never sends Content-Length (decided at flow end)
    items += flow(2, [b"POST /upload HTTP/1.1\r\n", b"Host: y\r\n\r\nbody"], 2222)
    # counter-example: the header is present (lower-case, the rule is nocase),
    # so the negated content suppresses the alert
    items += flow(3, [b"POST /a HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd"], 3333)
    # sid 2000004: DNS A query for baddomain
    items += flow(
        9,
        [
            b"\xab\xcd\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00"
            b"\x09baddomain\x03com\x00\x00\x01\x00\x01"
        ],
        5353,
        proto="udp",
        dport=53,
        dst="8.8.8.8",
    )
    return [
        Packet(payload=payload, header=header, packet_id=index)
        for index, (header, payload) in enumerate(items)
    ]


def main(argv):
    destination = argv[1] if len(argv) > 1 else "community_sample.pcap"
    frames = write_packets(destination, build_packets())
    print(f"wrote {frames} frames to {destination}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
