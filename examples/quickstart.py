#!/usr/bin/env python3
"""Quickstart: compress a ruleset, inspect the savings, scan a payload.

Run with:  python examples/quickstart.py
"""

from repro import STRATIX_III, compile_ruleset, generate_snort_like_ruleset
from repro.automata import AhoCorasickDFA


def main() -> None:
    # 1. a Snort-like ruleset (the paper's workload is synthesised; see DESIGN.md)
    ruleset = generate_snort_like_ruleset(num_strings=634, seed=2010)
    print(f"ruleset: {len(ruleset)} strings, {ruleset.total_characters} characters, "
          f"{ruleset.unique_starting_bytes} distinct starting bytes")

    # 2. the uncompressed baseline: the move-function Aho-Corasick automaton
    baseline = AhoCorasickDFA.from_patterns(ruleset.patterns)
    print(f"original Aho-Corasick: {baseline.num_states} states, "
          f"{baseline.average_pointers_per_state():.2f} stored pointers per state")

    # 3. compile for the Stratix III target: DTP compression + memory packing
    program = compile_ruleset(ruleset, STRATIX_III)
    staged = program.staged_counts()
    averages = staged.averages()
    print(f"after depth-1 defaults      : {averages['after_d1']:.2f} pointers/state")
    print(f"after depth-1+2 defaults    : {averages['after_d1_d2']:.2f} pointers/state")
    print(f"after depth-1+2+3 defaults  : {averages['after_d1_d2_d3']:.2f} pointers/state")
    reduction = 100 * (1 - averages["after_d1_d2_d3"] / baseline.average_pointers_per_state())
    print(f"pointer reduction           : {reduction:.1f} %")
    print(f"total memory                : {program.total_memory_bytes():,} bytes "
          f"across {program.blocks_per_group} block(s)")
    print(f"nominal throughput          : {program.throughput_gbps:.1f} Gbps "
          f"({program.packet_groups} packet groups on {program.device.family})")

    # 4. scan a payload
    payload = b"GET /index.html " + ruleset[10].pattern + b" trailing bytes " + ruleset[42].pattern
    matches = program.match(payload)
    sid_of = program.string_number_to_sid()
    print(f"\nscanning a {len(payload)}-byte payload -> {len(matches)} matches")
    for end, number in matches:
        print(f"  offset {end:4d}  string #{number}  (sid {sid_of[number]})")


if __name__ == "__main__":
    main()
