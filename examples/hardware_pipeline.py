#!/usr/bin/env python3
"""Drive the cycle-level hardware model: blocks, engines, match scheduler.

Compiles a ruleset, loads it into the simulated multi-block accelerator,
streams synthetic traffic through it and reports the architectural statistics
the paper's throughput claims rest on (one byte per engine per cycle, memory
port sharing, match scheduling).

Run with:  python examples/hardware_pipeline.py
"""

from repro import STRATIX_III, compile_ruleset, generate_snort_like_ruleset
from repro.fpga import PowerModel
from repro.hardware import HardwareAccelerator
from repro.traffic import TrafficGenerator, TrafficProfile


def main() -> None:
    ruleset = generate_snort_like_ruleset(num_strings=400, seed=77)
    program = compile_ruleset(ruleset, STRATIX_III)
    accelerator = HardwareAccelerator(program)
    print(f"device           : {program.device.family} "
          f"({program.device.num_matching_blocks} blocks, "
          f"{program.device.memory_fmax_mhz:.2f} MHz memory clock)")
    print(f"ruleset          : {len(ruleset)} strings in {program.blocks_per_group} block(s) per group")
    print(f"packet groups    : {accelerator.packet_groups} "
          f"(idle blocks: {accelerator.idle_blocks()})")
    print(f"nominal rate     : {accelerator.nominal_throughput_gbps():.1f} Gbps")

    generator = TrafficGenerator(
        ruleset,
        TrafficProfile(mean_payload_bytes=512, attack_probability=0.35, max_injected=2),
        seed=123,
    )
    packets = generator.packets(60)
    result = accelerator.scan(packets)

    print(f"\nscanned {len(packets)} packets / {result.bytes_processed:,} bytes")
    print(f"engine cycles            : {result.engine_cycles:,}")
    print(f"bytes per engine cycle   : {result.bytes_per_engine_cycle:.3f} "
          f"(1.0 = every active engine consumed a byte every cycle)")
    print(f"match events             : {len(result.events)}")

    alerts = accelerator.alerts_by_sid(result)
    injected = {sid for packet in packets for sid in packet.injected_sids}
    detected = injected & set(alerts)
    print(f"injected attack rules    : {len(injected)}, detected: {len(detected)}")
    assert detected == injected, "the accelerator missed an injected attack string"

    block = accelerator.groups[0][0]
    print("\nper-memory port statistics (group 0, block 0):")
    for name, memory in (("state machine", block.state_memory), ("lookup table", block.lookup_memory)):
        for port, stats in enumerate(memory.port_stats):
            print(f"  {name:14s} port {port}: {stats.reads:7d} reads, "
                  f"max {stats.max_reads_in_cycle}/cycle (limit 3)")

    power = PowerModel(program.device)
    print(f"\nestimated power at fmax  : {power.peak_power_watts():.2f} W")
    print(f"energy per payload bit   : "
          f"{power.energy_per_bit_nanojoules(program.blocks_per_group):.3f} nJ")


if __name__ == "__main__":
    main()
