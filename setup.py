"""Setuptools shim.

Kept so the package can be installed in environments without the ``wheel``
package (offline legacy editable installs); all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
