"""Tests for the metrics and table formatting used by the benchmark harness."""

import pytest

from repro.analysis import (
    PAPER_TABLE2_REFERENCE,
    ascii_chart,
    format_comparison,
    format_histogram,
    format_table,
    power_curves,
    table1_row,
    table2_row,
    table3_rows,
)
from repro.fpga import CYCLONE_III, STRATIX_III
from repro.rulesets import reduce_to_character_count


class TestTable2Row:
    def test_row_fields(self, small_ruleset, small_program):
        row = table2_row(small_ruleset, STRATIX_III, program=small_program)
        assert row.num_strings == len(small_ruleset)
        assert row.blocks == small_program.blocks_per_group
        assert row.original_avg_pointers > row.avg_after_d1 > row.avg_after_d1_d2
        assert row.avg_after_d1_d2 >= row.avg_after_d1_d2_d3
        assert row.reduction_percent > 90
        assert row.memory_bytes == small_program.total_memory_bytes()
        assert row.throughput_gbps == pytest.approx(small_program.throughput_gbps)

    def test_as_dict_keys(self, small_ruleset, small_program):
        row = table2_row(small_ruleset, STRATIX_III, program=small_program).as_dict()
        for key in ("strings", "blocks", "d1", "d1+d2", "d1+d2+d3", "reduction_%", "speed_gbps"):
            assert key in row

    def test_paper_reference_structure(self):
        assert set(PAPER_TABLE2_REFERENCE) == {"Stratix III", "Cyclone III"}
        assert PAPER_TABLE2_REFERENCE["Stratix III"][6275]["reduction_%"] == 98.2


class TestTable1And3:
    def test_table1_rows(self):
        for device in (CYCLONE_III, STRATIX_III):
            row = table1_row(device)
            assert row.logic_used <= row.logic_available
            assert row.m9k_used <= row.m9k_available
            assert row.fmax_mhz == device.memory_fmax_mhz

    def test_table3_rows_include_baselines(self, small_ruleset):
        workload = reduce_to_character_count(small_ruleset, 1200, seed=1)
        rows = table3_rows(workload, (CYCLONE_III, STRATIX_III))
        approaches = [row.approach for row in rows]
        assert any("DTP" in approach for approach in approaches)
        assert any("Bitmap" in approach for approach in approaches)
        assert any("Path-compressed" in approach for approach in approaches)
        ours = min(row.memory_bytes for row in rows if "DTP" in row.approach)
        bitmap = next(row.memory_bytes for row in rows if row.approach.startswith("Bitmap AC (reimpl"))
        assert ours < bitmap  # the paper's headline: our structure is much smaller


class TestPowerCurves:
    def test_curves_have_expected_shape(self):
        curves = power_curves(STRATIX_III, {"small": 1, "large": 6}, num_points=5)
        assert len(curves) == 2
        small = next(c for c in curves if c.label == "small")
        large = next(c for c in curves if c.label == "large")
        assert small.points[-1]["throughput_gbps"] > large.points[-1]["throughput_gbps"]
        assert small.points[-1]["power_watts"] == pytest.approx(large.points[-1]["power_watts"])


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bb": "x"}, {"a": 222, "bb": "yyy"}], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_comparison(self):
        text = format_comparison({"x": 1, "y": 2}, {"x": 3, "z": 4})
        assert "x" in text and "z" not in text

    def test_ascii_chart(self):
        points = [{"x": i, "y": i * i} for i in range(5)]
        chart = ascii_chart(points, "x", "y", label="parabola")
        assert "parabola" in chart
        assert "*" in chart
        assert ascii_chart([], "x", "y", label="none").endswith("(no points)")

    def test_format_histogram(self):
        text = format_histogram({"1-4": 10, "5-9": 0}, title="h")
        assert text.splitlines()[0] == "h"
        assert "#" in text
        assert "(empty)" in format_histogram({}, title="e")
