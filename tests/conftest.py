"""Shared fixtures for the test suite.

Expensive artefacts (rulesets, compiled accelerator programs) are
session-scoped so the suite stays fast; tests that need to mutate state build
their own small instances.
"""

from __future__ import annotations

import random

import pytest

from repro.automata import AhoCorasickDFA
from repro.core import DTPAutomaton, compile_ruleset
from repro.fpga import CYCLONE_III, STRATIX_III
from repro.rulesets import RuleSet, generate_snort_like_ruleset

#: The worked example of Figures 1 and 2.
PAPER_EXAMPLE_PATTERNS = [b"he", b"she", b"his", b"hers"]


@pytest.fixture(scope="session")
def example_patterns():
    return list(PAPER_EXAMPLE_PATTERNS)


@pytest.fixture(scope="session")
def example_dfa(example_patterns):
    return AhoCorasickDFA.from_patterns(example_patterns)


@pytest.fixture(scope="session")
def example_dtp(example_dfa):
    return DTPAutomaton(example_dfa)


@pytest.fixture(scope="session")
def small_ruleset() -> RuleSet:
    """A 120-string synthetic ruleset; cheap enough for most tests."""
    return generate_snort_like_ruleset(120, seed=99)


@pytest.fixture(scope="session")
def medium_ruleset() -> RuleSet:
    """A 400-string synthetic ruleset for integration-style tests."""
    return generate_snort_like_ruleset(400, seed=2024)


@pytest.fixture(scope="session")
def small_program(small_ruleset):
    """The small ruleset compiled for the Stratix III target."""
    return compile_ruleset(small_ruleset, STRATIX_III)


@pytest.fixture(scope="session")
def small_program_cyclone(small_ruleset):
    return compile_ruleset(small_ruleset, CYCLONE_III)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(12345)


def random_text(rng: random.Random, length: int, alphabet=range(97, 123)) -> bytes:
    alphabet = list(alphabet)
    return bytes(rng.choice(alphabet) for _ in range(length))


def text_with_patterns(rng: random.Random, patterns, length: int = 2000) -> bytes:
    """Random text with several of ``patterns`` spliced in at random offsets."""
    data = bytearray(random_text(rng, length, alphabet=range(0, 256)))
    for _ in range(min(8, len(patterns))):
        pattern = patterns[rng.randrange(len(patterns))]
        if len(pattern) >= length:
            continue
        offset = rng.randrange(0, length - len(pattern))
        data[offset:offset + len(pattern)] = pattern
    return bytes(data)
