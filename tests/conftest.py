"""Shared fixtures and the differential-equivalence harness.

Expensive artefacts (rulesets, compiled accelerator programs) are
session-scoped so the suite stays fast; tests that need to mutate state build
their own small instances.

:func:`assert_equivalent_events` is the regression gate for every streaming
optimisation: it scans one randomized workload through every requested
{backend} × {serial, workers} × {in-memory, pcap-replay} combination and
asserts the event streams, shard reports and service gauges are
byte-identical.  The four scan-equivalence test families (backends, parallel
executor, capture replay, pipeline API) all call it instead of hand-rolling
their own comparison loops.
"""

from __future__ import annotations

import io
import random
from typing import Dict, List, Optional, Sequence, Tuple

import pytest

from repro.automata import AhoCorasickDFA
from repro.backend import get_backend
from repro.capture import replay_scan, write_packets
from repro.core import DTPAutomaton, compile_ruleset
from repro.fpga import CYCLONE_III, STRATIX_III
from repro.rulesets import RuleSet, generate_snort_like_ruleset
from repro.streaming import ParallelScanService, ScanService
from repro.traffic import Packet, TrafficGenerator

#: The worked example of Figures 1 and 2.
PAPER_EXAMPLE_PATTERNS = [b"he", b"she", b"his", b"hers"]


@pytest.fixture(scope="session")
def example_patterns():
    return list(PAPER_EXAMPLE_PATTERNS)


@pytest.fixture(scope="session")
def example_dfa(example_patterns):
    return AhoCorasickDFA.from_patterns(example_patterns)


@pytest.fixture(scope="session")
def example_dtp(example_dfa):
    return DTPAutomaton(example_dfa)


@pytest.fixture(scope="session")
def small_ruleset() -> RuleSet:
    """A 120-string synthetic ruleset; cheap enough for most tests."""
    return generate_snort_like_ruleset(120, seed=99)


@pytest.fixture(scope="session")
def medium_ruleset() -> RuleSet:
    """A 400-string synthetic ruleset for integration-style tests."""
    return generate_snort_like_ruleset(400, seed=2024)


@pytest.fixture(scope="session")
def small_program(small_ruleset):
    """The small ruleset compiled for the Stratix III target."""
    return compile_ruleset(small_ruleset, STRATIX_III)


@pytest.fixture(scope="session")
def small_program_cyclone(small_ruleset):
    return compile_ruleset(small_ruleset, CYCLONE_III)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(12345)


def random_text(rng: random.Random, length: int, alphabet=range(97, 123)) -> bytes:
    alphabet = list(alphabet)
    return bytes(rng.choice(alphabet) for _ in range(length))


def text_with_patterns(rng: random.Random, patterns, length: int = 2000) -> bytes:
    """Random text with several of ``patterns`` spliced in at random offsets."""
    data = bytearray(random_text(rng, length, alphabet=range(0, 256)))
    for _ in range(min(8, len(patterns))):
        pattern = patterns[rng.randrange(len(patterns))]
        if len(pattern) >= length:
            continue
        offset = rng.randrange(0, length - len(pattern))
        data[offset:offset + len(pattern)] = pattern
    return bytes(data)


# ----------------------------------------------------------------------
# the differential-equivalence harness
# ----------------------------------------------------------------------
def renumbered(packets: Sequence[Packet]) -> List[Packet]:
    """Packets re-id'd in arrival order — the id convention a replay uses
    (ids are not on the wire, so capture order is the shared ground)."""
    return [
        Packet(p.payload, p.header, index, list(p.injected_sids),
               tcp_seq=p.tcp_seq, tcp_flags=p.tcp_flags)
        for index, p in enumerate(packets)
    ]


def build_program(ruleset: RuleSet, backend: str):
    """Compile ``ruleset`` for ``backend`` the way the pipeline API does:
    ``dtp`` through the full device compiler, everything else bare."""
    if backend == "dtp":
        return compile_ruleset(ruleset, STRATIX_III)
    return get_backend(backend).compile(ruleset.patterns)


def equivalence_workload(
    num_rules: int = 40,
    flows: int = 6,
    num_packets: int = 3,
    seed: int = 5,
    **flow_kwargs,
) -> Tuple[RuleSet, List[Packet]]:
    """One randomized ruleset plus interleaved boundary-split flows over it
    (the canonical input to :func:`assert_equivalent_events`)."""
    flow_kwargs.setdefault("split_patterns", 1)
    ruleset = generate_snort_like_ruleset(num_rules, seed=seed)
    generator = TrafficGenerator(ruleset, seed=seed + 1)
    return ruleset, TrafficGenerator.interleave(
        generator.flows(flows, num_packets=num_packets, **flow_kwargs)
    )


class EquivalenceReference:
    """What :func:`assert_equivalent_events` proved everything equal *to*.

    ``results`` holds the reference combination's ``StreamScanResult`` per
    scanned batch (one entry unless ``batches > 1``); ``events`` flattens
    their event lists; ``stats`` is the reference service's final gauge dict
    (``num_workers`` removed, since it legitimately differs per front-end);
    ``combinations`` counts how many configurations were compared.
    """

    def __init__(self, results, stats: Dict, combinations: int):
        self.results = results
        self.events = [event for result in results for event in result.events]
        self.stats = stats
        self.combinations = combinations

    @property
    def result(self):
        """The single reference result (``batches == 1`` convenience)."""
        (result,) = self.results
        return result


def _comparable_stats(stats: Dict) -> Dict:
    stats = dict(stats)
    stats.pop("num_workers", None)  # serial None vs parallel N, by design
    stats.pop("transport", None)  # data-plane counters exist only parallel-side
    return stats


def assert_equivalent_events(
    ruleset: RuleSet,
    packets: Sequence[Packet],
    *,
    backends: Sequence[str] = ("dtp", "dense"),
    worker_counts: Sequence[Optional[int]] = (None, 2),
    sources: Sequence[str] = ("memory", "pcap"),
    num_shards: int = 2,
    flow_capacity: int = 4096,
    track_nocase: bool = False,
    batches: int = 1,
    capture_fmt: str = "pcap",
    parallel_kwargs: Optional[Dict] = None,
) -> EquivalenceReference:
    """Differentially scan one workload through every requested combination.

    Every ``backend`` × ``workers`` (``None`` = the serial
    :class:`ScanService`) × ``source`` (``"memory"`` scans the packet list,
    ``"pcap"`` replays it from an in-memory capture) must produce
    byte-identical events, shard reports, batch totals and final service
    gauges; the first combination is the reference and every other one is
    asserted against it.  Returns the reference (see
    :class:`EquivalenceReference`) so callers can pile on workload-specific
    assertions — e.g. that the deliberately split patterns were actually
    found.

    ``batches > 1`` splits the packets into that many consecutive ``scan()``
    calls, pinning state carry-over *between* batches; it is memory-source
    only, because a capture replay is a single pass.  ``parallel_kwargs``
    are forwarded to every :class:`ParallelScanService` built — the
    transport tests use them to force tiny ring geometries (wraparound,
    spill, backpressure) and assert the events stay canonical.  When ``"pcap"`` is
    among the sources, packets are renumbered in arrival order first — the
    id convention replay uses — so both sources report comparable events.
    """
    if batches > 1 and "pcap" in sources:
        raise ValueError("batches > 1 is memory-source only (replay is one pass)")
    packets = list(packets)
    if "pcap" in sources:
        packets = renumbered(packets)
        buffer = io.BytesIO()
        write_packets(buffer, packets, fmt=capture_fmt)
        capture = buffer.getvalue()

    split = max(1, (len(packets) + batches - 1) // batches)
    chunks = [packets[i : i + split] for i in range(0, len(packets), split)]

    def run(backend: str, program, workers: Optional[int], source: str):
        if workers is None:
            service = ScanService(
                program,
                num_shards=num_shards,
                flow_capacity_per_shard=flow_capacity,
                track_nocase=track_nocase,
            )
        else:
            service = ParallelScanService(
                program,
                num_shards=num_shards,
                flow_capacity_per_shard=flow_capacity,
                track_nocase=track_nocase,
                workers=workers,
                **(parallel_kwargs or {}),
            )
        with service:
            if source == "memory":
                results = [service.scan(chunk) for chunk in chunks]
            else:
                results = [replay_scan(io.BytesIO(capture), service)]
            stats = service.stats()
        return results, stats

    reference: Optional[EquivalenceReference] = None
    reference_label = None
    combinations = 0
    for backend in backends:
        program = build_program(ruleset, backend)
        for workers in worker_counts:
            for source in sources:
                label = f"backend={backend} workers={workers} source={source}"
                results, stats = run(backend, program, workers, source)
                combinations += 1
                if reference is None:
                    reference = EquivalenceReference(
                        results, _comparable_stats(stats), combinations
                    )
                    reference_label = label
                    continue
                for got, want in zip(results, reference.results):
                    assert got.events == want.events, (
                        f"{label} events differ from {reference_label}"
                    )
                    assert got.shards == want.shards, (
                        f"{label} shard reports differ from {reference_label}"
                    )
                    assert got.packets == want.packets
                    assert got.bytes_scanned == want.bytes_scanned
                assert _comparable_stats(stats) == reference.stats, (
                    f"{label} service gauges differ from {reference_label}"
                )
    assert reference is not None, "no backend/worker/source combinations given"
    reference.combinations = combinations
    return reference


# ----------------------------------------------------------------------
# the naive rule-semantics reference and the alert-equivalence harness
# ----------------------------------------------------------------------
def naive_occurrence_ends(data: bytes, content) -> List[int]:
    """All end offsets of a content in ``data`` by plain ``bytes.find``.

    ``nocase`` searches the lower-cased bytes — byte-for-byte what the
    two-stage pipeline's merged raw+lowered views amount to, derived
    independently from whole reassembled payloads.
    """
    pattern = content.effective_pattern()
    haystack = data.lower() if content.nocase else data
    ends: List[int] = []
    start = haystack.find(pattern)
    while start != -1:
        ends.append(start + len(pattern))
        start = haystack.find(pattern, start + 1)
    return ends


def naive_rule_match(spec, data: bytes, at_end: bool) -> bool:
    """Evaluate one parsed rule over a whole (reassembled) flow prefix.

    An independent implementation of the documented predicate semantics
    (see :mod:`repro.ids.confirm`): occurrence windows by ``bytes.find``,
    chain backtracking by plain recursion, negation decided when the window
    is provably complete, pcre via :mod:`re` over the full bytes.  This is
    the ground truth the two-stage pipeline is differentially tested
    against; it shares no code with the prefilter or the confirm stage.
    """
    contents = list(spec.contents)

    def window(content, doe):
        if content.is_relative:
            lo = doe + (content.distance or 0)
            hi = lo + content.within if content.within is not None else None
        else:
            lo = content.offset or 0
            hi = lo + content.depth if content.depth is not None else None
        return lo, hi

    def pcres_ok() -> bool:
        for pcre in spec.pcres:
            found = pcre.compile().search(data) is not None
            if pcre.negated:
                if found or not at_end:
                    return False
            elif not found:
                return False
        return True

    def chain(index: int, doe: int) -> bool:
        if index == len(contents):
            return pcres_ok()
        content = contents[index]
        length = len(content.pattern)
        lo, hi = window(content, doe)
        ends = naive_occurrence_ends(data, content)
        if content.negated:
            occupied = any(
                end - length >= lo and (hi is None or end <= hi) for end in ends
            )
            decided = at_end or (hi is not None and len(data) >= hi)
            return (not occupied) and decided and chain(index + 1, doe)
        for end in ends:
            if hi is not None and end > hi:
                continue
            if end - length >= lo and chain(index + 1, end):
                return True
        return False

    return chain(0, 0)


def naive_reference_alerts(specs, packets: Sequence[Packet]) -> List[Tuple[int, int]]:
    """The exact ``(packet_id, sid)`` alert sequence the pipeline must emit.

    Mirrors the pipeline's attribution contract on whole reassembled
    prefixes: a rule alerts once per flow at the first packet where its
    predicate holds mid-stream, and rules with negated components get one
    more evaluation at flow end, attributed to the flow's last packet, with
    flows walked in first-seen order.  Assumes wildcard rule headers (what
    the randomized predicate workloads use), so every rule is a candidate
    for every flow.
    """
    active = [spec for spec in specs if spec.positive_contents]
    flows: Dict[object, Dict] = {}
    out: List[Tuple[int, int]] = []
    for packet in packets:
        key = (packet.header.src_ip, packet.header.src_port,
               packet.header.dst_ip, packet.header.dst_port,
               packet.header.protocol) if packet.header is not None else None
        state = flows.get(key)
        if state is None:
            state = flows[key] = {"data": bytearray(), "last": -1, "alerted": set()}
        state["data"] += packet.payload
        state["last"] = packet.packet_id
        for spec in active:
            if spec.sid in state["alerted"]:
                continue
            if naive_rule_match(spec, bytes(state["data"]), at_end=False):
                state["alerted"].add(spec.sid)
                out.append((packet.packet_id, spec.sid))
    for state in flows.values():  # insertion order = first-seen order
        for spec in active:
            if spec.sid in state["alerted"]:
                continue
            requires_end = any(c.negated for c in spec.contents) or any(
                p.negated for p in spec.pcres
            )
            if not requires_end:
                continue
            if naive_rule_match(spec, bytes(state["data"]), at_end=True):
                state["alerted"].add(spec.sid)
                out.append((state["last"], spec.sid))
    return out


def random_predicate_rules(ruleset: RuleSet, seed: int, num_rules: int = 12):
    """Randomized full-grammar rules over a synthetic ruleset's patterns.

    Builds rule *lines* (then parses them, so the parser is in the loop):
    wildcard headers, 1–3 contents drawn from ``ruleset`` (later ones may be
    negated), random offset/depth/distance/within windows, occasional
    ``nocase`` and ``pcre`` options.  Patterns come from the same ruleset
    the traffic generator injects, so prefilter hits are guaranteed and the
    windows decide the interesting part.
    """
    from repro.rulesets import parse_rules, render_content

    rng = random.Random(seed)
    patterns = list(ruleset.patterns)
    lines = []
    for index in range(num_rules):
        # biased toward short chains: single-content rules fire often enough
        # to keep the differential workload hot, longer chains exercise the
        # relative-window machinery
        count = 1 if rng.random() < 0.45 else (2 if rng.random() < 0.8 else 3)
        count = min(count, len(patterns))
        chosen = rng.sample(patterns, count)
        options = []
        for position, pattern in enumerate(chosen):
            negated = position > 0 and rng.random() < 0.25
            bang = "!" if negated else ""
            options.append(f'content:{bang}"{render_content(pattern)}"')
            if rng.random() < 0.2:
                options.append("nocase")
            if position == 0:
                if rng.random() < 0.4:
                    options.append(f"offset:{rng.randint(0, 8)}")
                if rng.random() < 0.4:
                    options.append(f"depth:{len(pattern) + rng.randint(0, 600)}")
            else:
                if rng.random() < 0.5:
                    options.append(f"distance:{rng.randint(0, 4)}")
                if rng.random() < 0.5:
                    options.append(f"within:{len(pattern) + rng.randint(0, 300)}")
        if rng.random() < 0.3:
            # regex over an alphanumeric fragment of a positive pattern, so
            # the body never collides with the option grammar
            fragment = _alnum_fragment(chosen[0])
            if fragment:
                bang = "!" if rng.random() < 0.3 else ""
                flags = "i" if rng.random() < 0.5 else ""
                options.append(f'pcre:{bang}"/{fragment}.*/{flags}"')
        options.append(f"sid:{5000 + index}")
        lines.append(
            "alert ip any any -> any any (" + "; ".join(options) + ";)"
        )
    return parse_rules(lines)


def _alnum_fragment(pattern: bytes, minimum: int = 3):
    """Longest run of ``[a-z0-9]`` bytes, or ``None`` if shorter than
    ``minimum`` — keeps generated pcre bodies free of regex metacharacters."""
    best = b""
    current = b""
    for byte in pattern:
        if 97 <= byte <= 122 or 48 <= byte <= 57:
            current += bytes([byte])
            if len(current) > len(best):
                best = current
        else:
            current = b""
    return best.decode("ascii") if len(best) >= minimum else None


def assert_equivalent_alerts(
    specs,
    packets: Sequence[Packet],
    *,
    backends: Sequence[str] = ("dtp", "dense"),
    worker_counts: Sequence[Optional[int]] = (None, 2),
    sources: Sequence[str] = ("memory", "pcap"),
    flow_capacity: int = 4096,
) -> List[Tuple[int, int]]:
    """Differentially check the two-stage pipeline against the naive
    reference: every backend × workers × source combination must produce the
    naive evaluator's exact ``(packet_id, sid)`` alert sequence.  Returns
    that sequence so callers can assert workload-specific properties.
    """
    from repro.capture import replay_ids
    from repro.ids import IntrusionDetectionSystem

    packets = renumbered(list(packets))
    expected = naive_reference_alerts(specs, packets)
    capture = None
    if "pcap" in sources:
        buffer = io.BytesIO()
        write_packets(buffer, packets)
        capture = buffer.getvalue()
    for backend in backends:
        for workers in worker_counts:
            for source in sources:
                label = f"backend={backend} workers={workers} source={source}"
                ids = IntrusionDetectionSystem.from_specs(
                    specs, backend=backend, workers=workers
                )
                if flow_capacity != 4096:
                    ids.reset_flows(capacity=flow_capacity)
                with ids:
                    if source == "memory":
                        alerts = ids.scan_flow(packets) + ids.finish()
                    else:
                        alerts = replay_ids(io.BytesIO(capture), ids)
                got = [(alert.packet_id, alert.sid) for alert in alerts]
                assert got == expected, (
                    f"{label} alerts differ from the naive reference"
                )
    return expected
