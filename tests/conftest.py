"""Shared fixtures and the differential-equivalence harness.

Expensive artefacts (rulesets, compiled accelerator programs) are
session-scoped so the suite stays fast; tests that need to mutate state build
their own small instances.

:func:`assert_equivalent_events` is the regression gate for every streaming
optimisation: it scans one randomized workload through every requested
{backend} × {serial, workers} × {in-memory, pcap-replay} combination and
asserts the event streams, shard reports and service gauges are
byte-identical.  The four scan-equivalence test families (backends, parallel
executor, capture replay, pipeline API) all call it instead of hand-rolling
their own comparison loops.
"""

from __future__ import annotations

import io
import random
from typing import Dict, List, Optional, Sequence, Tuple

import pytest

from repro.automata import AhoCorasickDFA
from repro.backend import get_backend
from repro.capture import replay_scan, write_packets
from repro.core import DTPAutomaton, compile_ruleset
from repro.fpga import CYCLONE_III, STRATIX_III
from repro.rulesets import RuleSet, generate_snort_like_ruleset
from repro.streaming import ParallelScanService, ScanService
from repro.traffic import Packet, TrafficGenerator

#: The worked example of Figures 1 and 2.
PAPER_EXAMPLE_PATTERNS = [b"he", b"she", b"his", b"hers"]


@pytest.fixture(scope="session")
def example_patterns():
    return list(PAPER_EXAMPLE_PATTERNS)


@pytest.fixture(scope="session")
def example_dfa(example_patterns):
    return AhoCorasickDFA.from_patterns(example_patterns)


@pytest.fixture(scope="session")
def example_dtp(example_dfa):
    return DTPAutomaton(example_dfa)


@pytest.fixture(scope="session")
def small_ruleset() -> RuleSet:
    """A 120-string synthetic ruleset; cheap enough for most tests."""
    return generate_snort_like_ruleset(120, seed=99)


@pytest.fixture(scope="session")
def medium_ruleset() -> RuleSet:
    """A 400-string synthetic ruleset for integration-style tests."""
    return generate_snort_like_ruleset(400, seed=2024)


@pytest.fixture(scope="session")
def small_program(small_ruleset):
    """The small ruleset compiled for the Stratix III target."""
    return compile_ruleset(small_ruleset, STRATIX_III)


@pytest.fixture(scope="session")
def small_program_cyclone(small_ruleset):
    return compile_ruleset(small_ruleset, CYCLONE_III)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(12345)


def random_text(rng: random.Random, length: int, alphabet=range(97, 123)) -> bytes:
    alphabet = list(alphabet)
    return bytes(rng.choice(alphabet) for _ in range(length))


def text_with_patterns(rng: random.Random, patterns, length: int = 2000) -> bytes:
    """Random text with several of ``patterns`` spliced in at random offsets."""
    data = bytearray(random_text(rng, length, alphabet=range(0, 256)))
    for _ in range(min(8, len(patterns))):
        pattern = patterns[rng.randrange(len(patterns))]
        if len(pattern) >= length:
            continue
        offset = rng.randrange(0, length - len(pattern))
        data[offset:offset + len(pattern)] = pattern
    return bytes(data)


# ----------------------------------------------------------------------
# the differential-equivalence harness
# ----------------------------------------------------------------------
def renumbered(packets: Sequence[Packet]) -> List[Packet]:
    """Packets re-id'd in arrival order — the id convention a replay uses
    (ids are not on the wire, so capture order is the shared ground)."""
    return [
        Packet(p.payload, p.header, index, list(p.injected_sids))
        for index, p in enumerate(packets)
    ]


def build_program(ruleset: RuleSet, backend: str):
    """Compile ``ruleset`` for ``backend`` the way the pipeline API does:
    ``dtp`` through the full device compiler, everything else bare."""
    if backend == "dtp":
        return compile_ruleset(ruleset, STRATIX_III)
    return get_backend(backend).compile(ruleset.patterns)


def equivalence_workload(
    num_rules: int = 40,
    flows: int = 6,
    num_packets: int = 3,
    seed: int = 5,
    **flow_kwargs,
) -> Tuple[RuleSet, List[Packet]]:
    """One randomized ruleset plus interleaved boundary-split flows over it
    (the canonical input to :func:`assert_equivalent_events`)."""
    flow_kwargs.setdefault("split_patterns", 1)
    ruleset = generate_snort_like_ruleset(num_rules, seed=seed)
    generator = TrafficGenerator(ruleset, seed=seed + 1)
    return ruleset, TrafficGenerator.interleave(
        generator.flows(flows, num_packets=num_packets, **flow_kwargs)
    )


class EquivalenceReference:
    """What :func:`assert_equivalent_events` proved everything equal *to*.

    ``results`` holds the reference combination's ``StreamScanResult`` per
    scanned batch (one entry unless ``batches > 1``); ``events`` flattens
    their event lists; ``stats`` is the reference service's final gauge dict
    (``num_workers`` removed, since it legitimately differs per front-end);
    ``combinations`` counts how many configurations were compared.
    """

    def __init__(self, results, stats: Dict, combinations: int):
        self.results = results
        self.events = [event for result in results for event in result.events]
        self.stats = stats
        self.combinations = combinations

    @property
    def result(self):
        """The single reference result (``batches == 1`` convenience)."""
        (result,) = self.results
        return result


def _comparable_stats(stats: Dict) -> Dict:
    stats = dict(stats)
    stats.pop("num_workers", None)  # serial None vs parallel N, by design
    stats.pop("transport", None)  # data-plane counters exist only parallel-side
    return stats


def assert_equivalent_events(
    ruleset: RuleSet,
    packets: Sequence[Packet],
    *,
    backends: Sequence[str] = ("dtp", "dense"),
    worker_counts: Sequence[Optional[int]] = (None, 2),
    sources: Sequence[str] = ("memory", "pcap"),
    num_shards: int = 2,
    flow_capacity: int = 4096,
    track_nocase: bool = False,
    batches: int = 1,
    capture_fmt: str = "pcap",
    parallel_kwargs: Optional[Dict] = None,
) -> EquivalenceReference:
    """Differentially scan one workload through every requested combination.

    Every ``backend`` × ``workers`` (``None`` = the serial
    :class:`ScanService`) × ``source`` (``"memory"`` scans the packet list,
    ``"pcap"`` replays it from an in-memory capture) must produce
    byte-identical events, shard reports, batch totals and final service
    gauges; the first combination is the reference and every other one is
    asserted against it.  Returns the reference (see
    :class:`EquivalenceReference`) so callers can pile on workload-specific
    assertions — e.g. that the deliberately split patterns were actually
    found.

    ``batches > 1`` splits the packets into that many consecutive ``scan()``
    calls, pinning state carry-over *between* batches; it is memory-source
    only, because a capture replay is a single pass.  ``parallel_kwargs``
    are forwarded to every :class:`ParallelScanService` built — the
    transport tests use them to force tiny ring geometries (wraparound,
    spill, backpressure) and assert the events stay canonical.  When ``"pcap"`` is
    among the sources, packets are renumbered in arrival order first — the
    id convention replay uses — so both sources report comparable events.
    """
    if batches > 1 and "pcap" in sources:
        raise ValueError("batches > 1 is memory-source only (replay is one pass)")
    packets = list(packets)
    if "pcap" in sources:
        packets = renumbered(packets)
        buffer = io.BytesIO()
        write_packets(buffer, packets, fmt=capture_fmt)
        capture = buffer.getvalue()

    split = max(1, (len(packets) + batches - 1) // batches)
    chunks = [packets[i : i + split] for i in range(0, len(packets), split)]

    def run(backend: str, program, workers: Optional[int], source: str):
        if workers is None:
            service = ScanService(
                program,
                num_shards=num_shards,
                flow_capacity_per_shard=flow_capacity,
                track_nocase=track_nocase,
            )
        else:
            service = ParallelScanService(
                program,
                num_shards=num_shards,
                flow_capacity_per_shard=flow_capacity,
                track_nocase=track_nocase,
                workers=workers,
                **(parallel_kwargs or {}),
            )
        with service:
            if source == "memory":
                results = [service.scan(chunk) for chunk in chunks]
            else:
                results = [replay_scan(io.BytesIO(capture), service)]
            stats = service.stats()
        return results, stats

    reference: Optional[EquivalenceReference] = None
    reference_label = None
    combinations = 0
    for backend in backends:
        program = build_program(ruleset, backend)
        for workers in worker_counts:
            for source in sources:
                label = f"backend={backend} workers={workers} source={source}"
                results, stats = run(backend, program, workers, source)
                combinations += 1
                if reference is None:
                    reference = EquivalenceReference(
                        results, _comparable_stats(stats), combinations
                    )
                    reference_label = label
                    continue
                for got, want in zip(results, reference.results):
                    assert got.events == want.events, (
                        f"{label} events differ from {reference_label}"
                    )
                    assert got.shards == want.shards, (
                        f"{label} shard reports differ from {reference_label}"
                    )
                    assert got.packets == want.packets
                    assert got.bytes_scanned == want.bytes_scanned
                assert _comparable_stats(stats) == reference.stats, (
                    f"{label} service gauges differ from {reference_label}"
                )
    assert reference is not None, "no backend/worker/source combinations given"
    reference.combinations = combinations
    return reference
