"""The repro.proto subsystem: TCP reassembly, HTTP normalization, sticky buffers.

Three layers under test:

* :class:`repro.proto.TcpReassembler` — the documented stream-ordering
  semantics (anchoring, wraparound, overlap policies, bounded holes,
  SYN/FIN/RST, fallback, checkpoint/restore), pinned case by case;
* :class:`repro.proto.HttpStream` — incremental request normalization
  (percent-decoding, header canonicalisation, body framing, caps) and its
  segmentation-independence;
* the sticky-buffer rule grammar and confirm-stage evaluation
  (``http_uri`` / ``http_header``), including the RS011/RS012 lint codes;

plus the differential gates: adversarially mangled flows, reassembled, must
scan byte-identically across every backend × worker × source combination,
and the whole pipeline must catch splits that per-packet and no-reassembly
scans provably miss.
"""

from __future__ import annotations

import io
import json
import random

import pytest

from tests.conftest import assert_equivalent_events, equivalence_workload, renumbered
from repro.capture.replay import load_packets, write_packets
from repro.proto import (
    HTTP_BUFFERS,
    HttpStream,
    TcpReassembler,
    percent_decode,
    reassemble_packets,
)
from repro.proto.reassembly import _seq_delta
from repro.rulesets.generator import generate_snort_like_ruleset
from repro.rulesets.parser import STICKY_BUFFERS, RuleParseError, parse_rule
from repro.traffic.generator import MANGLE_MODES, TrafficGenerator
from repro.traffic.packet import FiveTuple, Packet

FIN, SYN, RST, ACK = 0x01, 0x02, 0x04, 0x10


def tcp_header(src_port: int = 40000) -> FiveTuple:
    return FiveTuple("10.0.0.1", "10.0.0.2", src_port, 80, "tcp")


def seg(
    payload: bytes,
    seq: int | None,
    flags: int | None = ACK,
    header: FiveTuple | None = None,
    packet_id: int = 0,
) -> Packet:
    return Packet(
        payload=payload,
        header=header or tcp_header(),
        packet_id=packet_id,
        tcp_seq=seq,
        tcp_flags=flags,
    )


def stream_of(packets) -> bytes:
    return b"".join(p.payload for p in packets)


def wire_flow(stream: bytes, isn: int, chunk: int, header=None):
    """SYN plus in-order data segments of ``chunk`` bytes each."""
    header = header or tcp_header()
    packets = [seg(b"", isn, SYN, header)]
    for offset in range(0, len(stream), chunk):
        packets.append(
            seg(stream[offset:offset + chunk], (isn + 1 + offset) % 2**32, ACK, header)
        )
    return packets


# ----------------------------------------------------------------------
# sequence arithmetic
# ----------------------------------------------------------------------
class TestSeqDelta:
    def test_plain_distances(self):
        assert _seq_delta(105, 100) == 5
        assert _seq_delta(100, 105) == -5
        assert _seq_delta(7, 7) == 0

    def test_wraparound_is_shortest_path(self):
        assert _seq_delta(3, 2**32 - 2) == 5
        assert _seq_delta(2**32 - 2, 3) == -5


# ----------------------------------------------------------------------
# the reassembler proper
# ----------------------------------------------------------------------
class TestInOrderFlows:
    def test_in_order_flow_passes_through_with_boundaries(self):
        r = TcpReassembler()
        out = r.process(wire_flow(b"aaabbbccc", isn=500, chunk=3))
        assert [p.payload for p in out] == [b"aaa", b"bbb", b"ccc"]
        assert [p.packet_id for p in out] == [0, 1, 2]
        assert r.stats.reordered == 0
        assert r.stats.retransmits == 0

    def test_non_tcp_packets_pass_through(self):
        r = TcpReassembler()
        udp = FiveTuple("10.0.0.1", "10.0.0.2", 53, 53, "udp")
        out = r.process([Packet(b"query", udp, 7), Packet(b"noheader")])
        assert [p.payload for p in out] == [b"query", b"noheader"]
        assert r.stats.passthrough == 2

    def test_emission_ids_are_sequential_across_flows(self):
        r = TcpReassembler(first_packet_id=10)
        a = wire_flow(b"xxxx", isn=1, chunk=2, header=tcp_header(1111))
        b = wire_flow(b"yyyy", isn=900, chunk=2, header=tcp_header(2222))
        out = r.process([a[0], b[0], a[1], b[1], a[2], b[2]])
        assert [p.packet_id for p in out] == [10, 11, 12, 13]


class TestReordering:
    @pytest.mark.parametrize("trial", range(10))
    def test_shuffled_data_segments_reassemble(self, trial):
        rng = random.Random(400 + trial)
        stream = bytes(rng.randrange(256) for _ in range(200))
        packets = wire_flow(stream, isn=rng.randrange(1, 2**32), chunk=17)
        data = packets[1:]
        rng.shuffle(data)
        out, stats = reassemble_packets([packets[0]] + data)
        assert stream_of(out) == stream
        assert stats.packets_out == len(out)

    def test_wraparound_at_2_32(self):
        isn = 2**32 - 8  # data crosses the seq horizon mid-flow
        packets = wire_flow(b"0123456789abcdef", isn=isn, chunk=4)
        data = packets[1:]
        data.reverse()
        out, _ = reassemble_packets([packets[0]] + data)
        assert stream_of(out) == b"0123456789abcdef"

    def test_synless_flow_anchors_at_first_arrival(self):
        r = TcpReassembler()
        out = r.process([seg(b"head", 1000), seg(b"tail", 1004)])
        assert stream_of(out) == b"headtail"

    def test_synless_out_of_order_start_is_best_effort(self):
        # without a SYN the first data segment anchors (and is scanned
        # immediately); earlier bytes arriving later are behind the final
        # stream start and are dropped, not re-ordered in front of it
        r = TcpReassembler()
        out = r.process([seg(b"tail", 1004), seg(b"head", 1000)])
        out += r.flush_all()
        assert stream_of(out) == b"tail"
        assert r.stats.retransmits == 1

    def test_anchor_moves_backward_before_first_delivery(self):
        # a keepalive anchors the flow high; data below arrives before any
        # byte reached the scanner, so the stream start migrates back
        r = TcpReassembler()
        assert r.process([seg(b"", 1010)]) == []  # keepalive creates the flow
        out = r.process([seg(b"head", 1000), seg(b"tail", 1004)])
        assert stream_of(out) == b"headtail"

    def test_backward_reanchor_stops_once_delivered(self):
        r = TcpReassembler()
        out = r.process([seg(b"mid", 1000)])  # anchors and delivers at 1000
        assert stream_of(out) == b"mid"
        # earlier bytes arrive late: the anchor is final, they are history
        out = r.process([seg(b"early", 995)])
        assert out == []
        assert r.stats.retransmits == 1

    def test_seqless_segment_inside_seq_flow_delivers_at_point(self):
        r = TcpReassembler()
        out = r.process(wire_flow(b"ab", isn=50, chunk=2))
        out += r.process([seg(b"cd", None)])
        assert stream_of(out) == b"abcd"


class TestRetransmitsAndOverlap:
    def test_exact_retransmit_is_dropped(self):
        r = TcpReassembler()
        packets = wire_flow(b"abcdef", isn=30, chunk=3)
        out = r.process(packets + [packets[1]])
        assert stream_of(out) == b"abcdef"
        assert r.stats.retransmits == 1

    @pytest.mark.parametrize(
        "policy,expected", [("first", b"PRE EVILxxx"), ("last", b"PRE EVILSIG")]
    )
    def test_overlap_policy_on_buffered_bytes(self, policy, expected):
        # both overlapping segments wait behind a hole, so the policy (not
        # delivery finality) decides; "last" rewrites the tail into EVILSIG
        r = TcpReassembler(overlap_policy=policy)
        out = r.process(
            [
                seg(b"", 100, SYN),
                seg(b"EVILxxx", 105),   # stream [4, 11)
                seg(b"SIG", 109),       # stream [8, 11), overlaps
                seg(b"PRE ", 101),      # fills the hole, drains everything
            ]
        )
        assert stream_of(out) == expected
        assert r.stats.overlap_bytes == 3

    def test_retransmit_with_different_payload(self):
        first = TcpReassembler(overlap_policy="first")
        last = TcpReassembler(overlap_policy="last")
        arrivals = [
            seg(b"", 10, SYN),
            seg(b"attack", 15),    # buffered behind the hole at [0, 4)
            seg(b"ATTACK", 15),    # same range, different bytes
            seg(b"head", 11),
        ]
        assert stream_of(first.process(arrivals)) == b"headattack"
        assert stream_of(last.process(arrivals)) == b"headATTACK"

    def test_delivered_bytes_are_final_under_both_policies(self):
        for policy in ("first", "last"):
            r = TcpReassembler(overlap_policy=policy)
            out = r.process(wire_flow(b"good", isn=60, chunk=4))
            out += r.process([seg(b"EVIL", 61)])  # rewrite attempt, post-scan
            assert stream_of(out) == b"good", policy


class TestFlagsAndLifecycle:
    def test_keepalive_segments_vanish(self):
        r = TcpReassembler()
        r.process(wire_flow(b"data", isn=70, chunk=4))
        assert r.process([seg(b"", 71)]) == []
        assert r.stats.keepalives == 1

    def test_fin_retires_the_flow(self):
        r = TcpReassembler()
        packets = wire_flow(b"bye", isn=80, chunk=3)
        packets[-1].tcp_flags = ACK | FIN
        r.process(packets)
        assert r.active_flows == 0

    def test_fin_waits_for_the_hole_to_fill(self):
        r = TcpReassembler()
        out = r.process([seg(b"", 90, SYN), seg(b"late", 95, ACK | FIN)])
        assert out == [] and r.active_flows == 1
        out = r.process([seg(b"earl", 91)])
        assert stream_of(out) == b"earllate"
        assert r.active_flows == 0

    def test_rst_discards_buffered_data(self):
        r = TcpReassembler()
        r.process([seg(b"", 10, SYN), seg(b"parked", 20)])
        assert r.buffered_bytes == 6
        assert r.process([seg(b"", 25, RST)]) == []
        assert r.active_flows == 0
        assert r.stats.reset_flows == 1

    def test_zero_seq_without_syn_falls_back_to_arrival_order(self):
        r = TcpReassembler()
        out = r.process([seg(b"one", 0, None), seg(b"two", 0, None)])
        assert [p.payload for p in out] == [b"one", b"two"]
        assert r.stats.fallback_flows == 1
        assert r.stats.passthrough == 2


class TestBoundedBuffers:
    def test_byte_cap_flushes_the_flow_skipping_gaps(self):
        r = TcpReassembler(max_flow_bytes=8)
        out = r.process(
            [
                seg(b"", 0, SYN),
                seg(b"bbbb", 11),   # hole at [0, 10)
                seg(b"cccccc", 21),  # second hole; 10 buffered bytes > 8
            ]
        )
        assert stream_of(out) == b"bbbbcccccc"
        assert r.stats.hole_flushes == 1
        # the flow keeps going from its new delivery point
        out = r.process([seg(b"dd", 27)])
        assert stream_of(out) == b"dd"

    def test_segment_cap_flushes_the_flow(self):
        r = TcpReassembler(max_flow_segments=2)
        out = r.process(
            [seg(b"", 0, SYN), seg(b"x", 5), seg(b"y", 9), seg(b"z", 13)]
        )
        assert stream_of(out) == b"xyz"
        assert r.stats.hole_flushes == 1

    def test_lru_eviction_flushes_the_oldest_flow(self):
        r = TcpReassembler(max_flows=1)
        first = tcp_header(1111)
        second = tcp_header(2222)
        r.process([seg(b"", 10, SYN, first), seg(b"parked", 20, ACK, first)])
        out = r.process([seg(b"", 50, SYN, second)])
        assert stream_of(out) == b"parked"  # evicted flow flushed on the way out
        assert r.stats.evicted_flows == 1
        assert r.active_flows == 1

    def test_flush_all_delivers_everything_parked(self):
        r = TcpReassembler()
        assert r.process([seg(b"", 10, SYN), seg(b"wait", 16)]) == []
        assert stream_of(r.flush_all()) == b"wait"
        assert r.buffered_bytes == 0


class TestCheckpointRestore:
    def test_round_trip_mid_hole_equals_uninterrupted(self):
        rng = random.Random(77)
        stream = bytes(rng.randrange(256) for _ in range(120))
        packets = wire_flow(stream, isn=1_000_000, chunk=10)
        arrivals = [packets[0]] + packets[1:]
        rng.shuffle(arrivals)
        cut = len(arrivals) // 2

        plain = TcpReassembler()
        expected = plain.process(arrivals) + plain.flush_all()

        r = TcpReassembler()
        head = r.process(arrivals[:cut])
        data = json.loads(json.dumps(r.checkpoint()))  # full JSON round trip
        restored = TcpReassembler.restore(data)
        tail = restored.process(arrivals[cut:]) + restored.flush_all()
        got = head + tail
        assert [(p.packet_id, p.payload) for p in got] == [
            (p.packet_id, p.payload) for p in expected
        ]

    def test_restore_into_smaller_capacity_drops_lru_head(self):
        r = TcpReassembler()
        for port in (1111, 2222, 3333):
            r.process([seg(b"", 10, SYN, tcp_header(port)),
                       seg(b"hole", 20, ACK, tcp_header(port))])
        restored = TcpReassembler.restore(r.checkpoint(), max_flows=2)
        assert restored.active_flows == 2
        assert restored.stats.restore_dropped == 1

    def test_restore_can_override_overlap_policy(self):
        r = TcpReassembler(overlap_policy="first")
        restored = TcpReassembler.restore(r.checkpoint(), overlap_policy="last")
        assert restored.overlap_policy == "last"

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TcpReassembler(overlap_policy="newest")
        with pytest.raises(ValueError):
            TcpReassembler(max_flows=0)
        with pytest.raises(ValueError):
            TcpReassembler(max_flow_bytes=0)


# ----------------------------------------------------------------------
# adversarial wire rendering
# ----------------------------------------------------------------------
class TestMangle:
    @pytest.mark.parametrize("mode", MANGLE_MODES)
    def test_mangled_flow_reassembles_to_the_original_stream(self, mode):
        ruleset = generate_snort_like_ruleset(40, seed=2010)
        gen = TrafficGenerator(ruleset, seed=9)
        for _ in range(10):
            flow = gen.flow(num_packets=4, split_patterns=1, segment_bytes=80)
            mangled = gen.mangle(flow, mode=mode)
            out, _ = reassemble_packets(mangled.packets)
            assert stream_of(out) == flow.payload
            assert all(p.header.protocol == "tcp" for p in mangled.packets)
            assert mangled.packets[0].tcp_flags == SYN
            assert mangled.split_sids == flow.split_sids

    def test_reorder_and_retransmit_preserve_segment_boundaries(self):
        ruleset = generate_snort_like_ruleset(30, seed=3)
        gen = TrafficGenerator(ruleset, seed=4)
        for mode in ("reorder", "retransmit"):
            flow = gen.flow(num_packets=4, split_patterns=1, segment_bytes=64)
            out, _ = reassemble_packets(gen.mangle(flow, mode=mode).packets)
            assert [p.payload for p in out] == [
                p.payload for p in flow.packets if p.payload
            ]

    def test_mangle_rejects_unknown_mode_and_bad_overlap(self):
        gen = TrafficGenerator(generate_snort_like_ruleset(10, seed=1), seed=2)
        flow = gen.flow(num_packets=2, split_patterns=0)
        with pytest.raises(ValueError):
            gen.mangle(flow, mode="teleport")
        with pytest.raises(ValueError):
            gen.mangle(flow, mode="overlap-split", overlap_bytes=0)


# ----------------------------------------------------------------------
# capture round trip of sequence state
# ----------------------------------------------------------------------
class TestCaptureSeqRoundTrip:
    def test_explicit_seq_and_flags_survive_pcap(self):
        packets = [
            seg(b"", 7000, SYN),
            seg(b"late", 7005, ACK | FIN),
            seg(b"earl", 7001, ACK),
        ]
        buffer = io.BytesIO()
        write_packets(buffer, packets)
        buffer.seek(0)
        replayed, _ = load_packets(buffer)
        assert [(p.tcp_seq, p.tcp_flags & (SYN | FIN)) for p in replayed] == [
            (7000, SYN), (7005, FIN), (7001, 0)
        ]
        out, _ = reassemble_packets(replayed)
        assert stream_of(out) == b"earllate"

    def test_autoseq_captures_are_valid_reassembler_input(self):
        header = tcp_header()
        packets = [Packet(b"abc", header, 0), Packet(b"def", header, 1)]
        buffer = io.BytesIO()
        write_packets(buffer, packets)
        buffer.seek(0)
        replayed, _ = load_packets(buffer)
        assert [p.tcp_seq for p in replayed] == [1, 4]  # monotone per flow
        out, stats = reassemble_packets(replayed)
        assert stream_of(out) == b"abcdef"
        assert stats.fallback_flows == 0


# ----------------------------------------------------------------------
# differential equivalence on mangled workloads
# ----------------------------------------------------------------------
class TestMangledEquivalence:
    @pytest.mark.parametrize("mode", MANGLE_MODES)
    def test_reassembled_mangled_flows_scan_identically_everywhere(self, mode):
        ruleset = generate_snort_like_ruleset(40, seed=5)
        gen = TrafficGenerator(ruleset, seed=6)
        flows = gen.flows(4, num_packets=3, split_patterns=1, segment_bytes=60)
        wire = TrafficGenerator.interleave(
            [gen.mangle(flow, mode=mode) for flow in flows]
        )
        reassembled, stats = reassemble_packets(wire)
        assert b"".join(sorted(p.payload for p in reassembled)) is not None
        reference = assert_equivalent_events(ruleset, reassembled)
        found = {
            ruleset[event.string_number].sid for event in reference.events
        }
        for flow in flows:
            for sid in flow.split_sids:
                assert sid in found, f"{mode}: split sid {sid} lost"
        assert stats.segments_in == len(wire)

    def test_reordered_flow_evades_per_packet_and_no_reassembly_scans(self):
        ruleset, _ = equivalence_workload()
        gen = TrafficGenerator(ruleset, seed=8)
        flow = gen.flow(num_packets=3, split_patterns=1, segment_bytes=50)
        mangled = gen.mangle(flow, mode="reorder")
        from tests.conftest import build_program
        from repro.streaming import ScanService

        program = build_program(ruleset, "dtp")
        sid_of = {i: rule.sid for i, rule in enumerate(ruleset)}
        # stateful scan of the mangled wire order, without reassembly
        with ScanService(program, num_shards=1) as service:
            raw_events = service.scan(renumbered(mangled.packets)).events
        raw_sids = {sid_of[e.string_number] for e in raw_events}
        # with reassembly the split pattern is back
        reassembled, _ = reassemble_packets(mangled.packets)
        with ScanService(program, num_shards=1) as service:
            fixed_events = service.scan(reassembled).events
        fixed_sids = {sid_of[e.string_number] for e in fixed_events}
        for sid in flow.split_sids:
            assert sid in fixed_sids
        assert set(flow.split_sids) - raw_sids, (
            "the mangled wire order should hide at least one split pattern"
        )


class TestSessionIntegration:
    def _pcap_of(self, packets, tmp_path):
        path = tmp_path / "wire.pcap"
        write_packets(str(path), packets)
        return str(path)

    def _config(self, path, **engine_kwargs):
        from repro.api import EngineSpec, PipelineConfig, RulesSpec, SourceSpec

        return PipelineConfig(
            mode="stream",
            source=SourceSpec(kind="pcap", path=path),
            rules=RulesSpec(kind="synthetic", size=40, seed=5),
            engine=EngineSpec(backend="dtp", **engine_kwargs),
        )

    def test_session_run_reassembles_pcap_sources(self, tmp_path):
        from repro.api import Session

        ruleset = generate_snort_like_ruleset(40, seed=5)
        gen = TrafficGenerator(ruleset, seed=6)
        flows = gen.flows(3, num_packets=3, split_patterns=1, segment_bytes=60)
        wire = TrafficGenerator.interleave(
            [gen.mangle(flow, mode="reorder") for flow in flows]
        )
        path = self._pcap_of(wire, tmp_path)

        with Session(self._config(path, reassemble=True)) as session:
            run = session.run()
            stats = session.stats()["reassembly"]
        sid_of = {i: rule.sid for i, rule in enumerate(ruleset)}
        found = {sid_of[e.string_number] for e in run.events}
        for flow in flows:
            for sid in flow.split_sids:
                assert sid in found
        assert stats["segments_in"] == len(wire)

        with Session(self._config(path)) as session:  # reassembly off
            baseline = session.run()
            assert "reassembly" not in session.stats()
        lost = {
            sid for flow in flows for sid in flow.split_sids
        } - {sid_of[e.string_number] for e in baseline.events}
        assert lost, "mangled wire should hide split patterns without reassembly"

    def test_session_checkpoint_envelope_carries_reassembly(self, tmp_path):
        from repro.api import Session

        gen = TrafficGenerator(generate_snort_like_ruleset(10, seed=5), seed=6)
        flow = gen.mangle(gen.flow(num_packets=3, split_patterns=0), fin=False)
        path = self._pcap_of(flow.packets, tmp_path)
        with Session(self._config(path, reassemble=True)) as session:
            session.scan(flow.packets[:2])
            data = json.loads(json.dumps(session.checkpoint()))
            assert set(data) == {"service", "reassembly"}
        with Session(self._config(path, reassemble=True)) as session:
            session.restore(data)
            assert session.reassembler.active_flows <= 1
        # plain sessions keep the bare envelope
        with Session(self._config(path)) as session:
            assert "reassembly" not in session.checkpoint()

    def test_overlap_policy_decides_detection(self, tmp_path):
        from repro.api import (
            ContentRule,
            EngineSpec,
            PipelineConfig,
            RulesSpec,
            Session,
            SourceSpec,
        )

        wire = [
            seg(b"", 100, SYN),
            seg(b"EVILxxx", 105),
            seg(b"SIG", 109),
            seg(b"PRE ", 101),
        ]
        path = self._pcap_of(wire, tmp_path)
        rules = RulesSpec(kind="specs", rules=(ContentRule(content="EVILSIG"),))

        def events(**engine_kwargs):
            config = PipelineConfig(
                mode="stream",
                source=SourceSpec(kind="pcap", path=path),
                rules=rules,
                engine=EngineSpec(backend="dtp", **engine_kwargs),
            )
            with Session(config) as session:
                return session.run().events

        assert events(reassemble=True, overlap_policy="last")
        assert not events(reassemble=True, overlap_policy="first")
        assert not events()  # no reassembly: never contiguous


# ----------------------------------------------------------------------
# HTTP normalization
# ----------------------------------------------------------------------
REQUEST = (
    b"GET /%63%6d%64.exe?x=1 HTTP/1.1\r\n"
    b"Host:   example.com\r\n"
    b"User-Agent: bad  actor\r\n"
    b"\r\n"
)


class TestHttpStream:
    def test_uri_is_percent_decoded(self):
        stream = HttpStream()
        stream.feed(REQUEST)
        assert stream.uri == b"/cmd.exe?x=1\n"
        assert stream.is_http

    def test_headers_are_normalized(self):
        stream = HttpStream()
        stream.feed(REQUEST)
        assert b"Host: example.com\r\n" in stream.headers
        assert b"User-Agent: bad actor\r\n" in stream.headers

    def test_byte_at_a_time_equals_one_shot(self):
        whole = HttpStream()
        whole.feed(REQUEST)
        dribble = HttpStream()
        for index in range(len(REQUEST)):
            dribble.feed(REQUEST[index:index + 1])
        assert dribble.uri == whole.uri
        assert dribble.headers == whole.headers

    def test_non_http_flow_freezes_empty(self):
        stream = HttpStream()
        assert stream.feed(b"\x16\x03\x01 TLS client hello") is False
        assert not stream.is_http
        assert stream.uri == b"" and stream.headers == b""
        stream.feed(REQUEST)  # opaque is terminal
        assert stream.uri == b""

    def test_content_length_body_is_skipped_between_requests(self):
        stream = HttpStream()
        stream.feed(
            b"POST /a HTTP/1.1\r\nContent-Length: 6\r\n\r\n"
            b"GET /*"  # body bytes that must not be parsed
            b"GET /b HTTP/1.1\r\n\r\n"
        )
        assert stream.uri == b"/a\n/b\n"
        assert stream.requests == 2

    def test_chunked_body_ends_parsing_conservatively(self):
        stream = HttpStream()
        stream.feed(
            b"POST /up HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"5\r\nhello\r\n0\r\n\r\n"
            b"GET /after HTTP/1.1\r\n\r\n"
        )
        assert stream.uri == b"/up\n"  # nothing after the unframeable body

    def test_oversized_line_freezes_the_flow(self):
        stream = HttpStream()
        stream.feed(b"GET /" + b"a" * 5000)
        assert stream.feed(b" HTTP/1.1\r\n\r\n") is False
        assert not stream.is_http

    def test_checkpoint_round_trips_mid_request(self):
        cut = len(REQUEST) // 2
        stream = HttpStream()
        stream.feed(REQUEST[:cut])
        restored = HttpStream.from_dict(json.loads(json.dumps(stream.as_dict())))
        restored.feed(REQUEST[cut:])
        whole = HttpStream()
        whole.feed(REQUEST)
        assert restored.uri == whole.uri
        assert restored.headers == whole.headers

    def test_buffer_name_validation(self):
        stream = HttpStream()
        stream.feed(REQUEST)
        assert stream.buffer("http_uri") == stream.uri
        assert stream.buffer("http_header") == stream.headers
        with pytest.raises(ValueError):
            stream.buffer("http_cookie")

    def test_percent_decode_keeps_malformed_escapes(self):
        assert percent_decode(b"/%41%zz%4") == b"/A%zz%4"
        assert percent_decode(b"plain") == b"plain"


# ----------------------------------------------------------------------
# sticky-buffer grammar and evaluation
# ----------------------------------------------------------------------
class TestStickyGrammar:
    def test_parser_and_http_agree_on_buffer_names(self):
        # the parser keeps a local copy to avoid a circular import; this
        # test is the contract that the two stay identical
        assert STICKY_BUFFERS == HTTP_BUFFERS

    def test_sticky_contents_leave_the_prefilter(self):
        spec = parse_rule(
            'alert tcp any any -> any 80 (content:"GET"; '
            'content:"/cmd.exe"; http_uri; sid:1;)'
        )
        assert [c.pattern for c in spec.contents] == [b"GET", b"/cmd.exe"]
        assert spec.contents[1].buffer == "http_uri"
        assert spec.predicate.scan_patterns() == [b"GET"]

    @pytest.mark.parametrize(
        "options,fragment",
        [
            ('content:"a"; http_uri:1', "takes no value"),
            ("http_uri", "before any content"),
            ('content:"a"; http_uri; http_uri', "duplicate"),
            ('content:"a"; http_uri; http_header', "one buffer"),
            ('content:"a"; offset:2; http_uri', "raw-stream offsets"),
            ('content:"a"; http_uri; depth:5', "raw-stream offsets"),
            ('content:"a"; http_uri; content:"b"; distance:1', "cannot cross"),
        ],
    )
    def test_grammar_rejections(self, options, fragment):
        with pytest.raises(RuleParseError, match=fragment):
            parse_rule(f"alert ip any any -> any any ({options}; sid:9;)")

    def test_lint_classifies_sticky_errors(self, tmp_path):
        from repro.check import lint_rule_file

        path = tmp_path / "sticky.rules"
        path.write_text(
            'alert ip any any -> any any (content:"a"; offset:2; http_uri; sid:1;)\n'
            'alert ip any any -> any any '
            '(content:"a"; http_uri; content:"b"; within:4; sid:2;)\n'
            'alert ip any any -> any any (content:"ok"; content:"u"; http_uri; sid:3;)\n'
        )
        report = lint_rule_file(str(path))
        codes = sorted(d.code for d in report.diagnostics)
        assert codes == ["RS011", "RS012"]

    def test_lint_does_not_dedupe_sticky_against_raw(self, tmp_path):
        from repro.check import lint_rule_file

        path = tmp_path / "dup.rules"
        path.write_text(
            'alert ip any any -> any any (content:"same"; sid:1;)\n'
            'alert ip any any -> any any (content:"x"; content:"same"; http_uri; sid:2;)\n'
        )
        report = lint_rule_file(str(path))
        assert not [d for d in report.diagnostics if d.code == "RS001"]


HTTP_FLOW = (
    b"GET /%63%6d%64.exe HTTP/1.1\r\n"
    b"Host: evil.example\r\n"
    b"\r\n"
)


def sticky_ids(lines, **kwargs):
    from repro.ids import IntrusionDetectionSystem
    from repro.rulesets import parse_rules

    return IntrusionDetectionSystem.from_specs(parse_rules(lines), **kwargs)


def http_packets(payloads, header=None):
    header = header or tcp_header()
    return [
        Packet(payload, header, index) for index, payload in enumerate(payloads)
    ]


class TestStickyEvaluation:
    def test_http_uri_matches_the_decoded_target(self):
        ids = sticky_ids(
            ['alert tcp any any -> any any (content:"GET"; '
             'content:"/cmd.exe"; http_uri; sid:10;)']
        )
        alerts = ids.scan_flow(http_packets([HTTP_FLOW])) + ids.finish()
        assert [a.sid for a in alerts] == [10]

    def test_raw_scan_misses_the_encoded_uri(self):
        ids = sticky_ids(
            ['alert tcp any any -> any any (content:"/cmd.exe"; sid:11;)']
        )
        assert ids.scan_flow(http_packets([HTTP_FLOW])) + ids.finish() == []

    def test_http_header_matches_normalized_lines(self):
        ids = sticky_ids(
            ['alert tcp any any -> any any (content:"GET"; '
             'content:"Host: evil.example"; http_header; sid:12;)']
        )
        alerts = ids.scan_flow(http_packets([HTTP_FLOW])) + ids.finish()
        assert [a.sid for a in alerts] == [12]

    def test_sticky_survives_segment_splits(self):
        # the URI is cut mid-escape across TCP segments: only stream-order
        # incremental normalization can put %63 back together
        cut = HTTP_FLOW.index(b"%6d") + 1
        ids = sticky_ids(
            ['alert tcp any any -> any any (content:"GET"; '
             'content:"/cmd.exe"; http_uri; sid:13;)']
        )
        alerts = ids.scan_flow(
            http_packets([HTTP_FLOW[:cut], HTTP_FLOW[cut:]])
        ) + ids.finish()
        assert [a.sid for a in alerts] == [13]

    def test_pure_sticky_rule_fires_without_raw_contents(self):
        ids = sticky_ids(
            ['alert tcp any any -> any any (content:"/cmd.exe"; http_uri; sid:14;)']
        )
        alerts = ids.scan_flow(http_packets([HTTP_FLOW])) + ids.finish()
        assert [a.sid for a in alerts] == [14]

    def test_positive_sticky_fails_on_non_http_flows(self):
        ids = sticky_ids(
            ['alert tcp any any -> any any (content:"GET"; '
             'content:"/x"; http_uri; sid:15;)']
        )
        packets = http_packets([b"GET not actually http"])
        assert ids.scan_flow(packets) + ids.finish() == []

    def test_negated_sticky_decided_at_flow_end(self):
        lines = ['alert tcp any any -> any any (content:"GET"; '
                 'content:!"/safe"; http_uri; sid:16;)']
        hit = sticky_ids(lines)
        alerts = hit.scan_flow(http_packets([HTTP_FLOW])) + hit.finish()
        assert [a.sid for a in alerts] == [16]

        safe = sticky_ids(lines)
        flow = b"GET /safe HTTP/1.1\r\nHost: a\r\n\r\n"
        assert safe.scan_flow(http_packets([flow])) + safe.finish() == []

    def test_nocase_sticky_lowercases_both_sides(self):
        ids = sticky_ids(
            ['alert tcp any any -> any any (content:"GET"; '
             'content:"/CMD.EXE"; http_uri; nocase; sid:17;)']
        )
        alerts = ids.scan_flow(http_packets([HTTP_FLOW])) + ids.finish()
        assert [a.sid for a in alerts] == [17]

    def test_sticky_state_survives_ids_checkpoint(self):
        lines = ['alert tcp any any -> any any (content:"GET"; '
                 'content:"/cmd.exe"; http_uri; sid:18;)']
        cut = HTTP_FLOW.index(b"%6d") + 1
        packets = http_packets([HTTP_FLOW[:cut], HTTP_FLOW[cut:]])

        ids = sticky_ids(lines)
        ids.scan_flow(packets[:1])
        data = json.loads(json.dumps(ids.checkpoint()))
        resumed = sticky_ids(lines)
        resumed.restore(data)
        alerts = resumed.scan_flow(packets[1:]) + resumed.finish()
        assert [a.sid for a in alerts] == [18]

    def test_sticky_and_reassembly_compose_end_to_end(self, tmp_path):
        # the full tentpole: mangled wire order + an escaped URI; only
        # reassembly feeding normalization catches the rule
        from repro.api import EngineSpec, PipelineConfig, RulesSpec, Session, SourceSpec

        rules = tmp_path / "http.rules"
        rules.write_text(
            'alert tcp any any -> any any (content:"GET"; '
            'content:"/cmd.exe"; http_uri; sid:20;)\n'
        )
        cut = HTTP_FLOW.index(b"%6d") + 1
        isn = 9000
        wire = [
            seg(b"", isn, SYN),
            seg(HTTP_FLOW[cut:], (isn + 1 + cut) % 2**32, ACK | FIN),  # tail first
            seg(HTTP_FLOW[:cut], isn + 1, ACK),
        ]
        path = tmp_path / "http.pcap"
        write_packets(str(path), wire)

        def alerts(reassemble):
            config = PipelineConfig(
                mode="ids",
                source=SourceSpec(kind="pcap", path=str(path)),
                rules=RulesSpec(kind="file", path=str(rules)),
                engine=EngineSpec(backend="dtp", reassemble=reassemble),
            )
            with Session(config) as session:
                return [a.sid for a in session.run().alerts]

        assert alerts(True) == [20]
        assert alerts(False) == []
