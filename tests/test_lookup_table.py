"""Tests for the 256 x 49-bit lookup-table encoding."""

import pytest

from repro.automata import AhoCorasickDFA
from repro.automata.trie import ROOT
from repro.core import (
    LOOKUP_TABLE_WORDS,
    LOOKUP_WORD_BITS,
    build_default_transition_table,
    encode_lookup_table,
)


def test_geometry_matches_paper(example_dfa):
    table = build_default_transition_table(example_dfa)
    encoded = encode_lookup_table(table)
    assert LOOKUP_TABLE_WORDS == 256
    assert LOOKUP_WORD_BITS == 49
    assert len(encoded.words) == 256
    assert encoded.memory_bits() == 256 * 49
    assert encoded.memory_bytes() == (256 * 49 + 7) // 8
    assert all(word < (1 << 49) for word in encoded.words)


def test_word_fields_roundtrip(example_dfa):
    table = build_default_transition_table(example_dfa)
    encoded = encode_lookup_table(table)
    for byte in range(256):
        fields = encoded.decode_word(byte)
        assert fields["d1_valid"] == (int(table.d1[byte]) != ROOT)
        entries = table.d2.get(byte, [])
        for slot, entry in enumerate(entries):
            assert fields["d2_preceding"][slot] == entry.preceding_byte
            assert encoded.d2_valid[byte][slot]
        entry3 = table.d3.get(byte)
        if entry3 is not None:
            assert fields["d3_preceding"] == entry3.preceding_bytes
            assert encoded.d3_valid[byte]
        else:
            assert not encoded.d3_valid[byte]


def test_encoded_resolution_matches_logical_resolution(small_ruleset, rng):
    dfa = AhoCorasickDFA.from_patterns(small_ruleset.patterns[:80])
    table = build_default_transition_table(dfa)
    encoded = encode_lookup_table(table)
    history = [None, None]
    for _ in range(3000):
        byte = rng.randrange(0, 256)
        assert encoded.resolve(byte, history[0], history[1]) == table.resolve(
            byte, history[0], history[1]
        )
        history = [byte, history[0]]


def test_rejects_oversized_slot_count(example_dfa):
    table = build_default_transition_table(example_dfa, d2_slots=6)
    if table.d2_slots > 4:
        with pytest.raises(ValueError):
            encode_lookup_table(table)


def test_total_defaults_counted(small_ruleset):
    dfa = AhoCorasickDFA.from_patterns(small_ruleset.patterns)
    table = build_default_transition_table(dfa)
    encoded = encode_lookup_table(table)
    valid_d2 = sum(sum(1 for flag in flags if flag) for flags in encoded.d2_valid)
    valid_d3 = sum(1 for flag in encoded.d3_valid if flag)
    assert valid_d2 == table.num_d2
    assert valid_d3 == table.num_d3
