"""Tests for the FPGA device, resource, power and throughput models."""

import pytest

from repro.fpga import (
    CYCLONE_III,
    STRATIX_III,
    M9K,
    MemorySpec,
    PowerModel,
    ThroughputPoint,
    accelerator_throughput_gbps,
    block_rams_for_memory,
    block_throughput_gbps,
    device_throughput,
    engine_throughput_gbps,
    estimate_resources,
    get_device,
    line_rates_met,
    max_blocks_that_fit,
    scan_time_seconds,
)
from repro.analysis.metrics import PAPER_TABLE1_REFERENCE, PAPER_PEAK_POWER_WATTS


class TestDevices:
    def test_lookup_by_name(self):
        assert get_device("stratix3") is STRATIX_III
        assert get_device("Cyclone3") is CYCLONE_III
        assert get_device("EP3SE260H780C2") is STRATIX_III
        with pytest.raises(KeyError):
            get_device("virtex5")

    def test_paper_configuration(self):
        assert STRATIX_III.num_matching_blocks == 6
        assert CYCLONE_III.num_matching_blocks == 4
        assert STRATIX_III.state_machine_words == 3584
        assert CYCLONE_III.state_machine_words == 2560
        assert STRATIX_III.memory_fmax_mhz == pytest.approx(460.19)
        assert CYCLONE_III.memory_fmax_mhz == pytest.approx(233.15)
        assert STRATIX_III.engines_per_block == 6
        assert STRATIX_III.engine_fmax_mhz == pytest.approx(460.19 / 3)


class TestResources:
    def test_m9k_tiling_simple_cases(self):
        # 512x18 tiles: a 36-bit x 512-word true dual-port memory needs 2
        assert block_rams_for_memory(MemorySpec("m", 36, 512), M9K) == 2
        # one tile suffices for a tiny memory
        assert block_rams_for_memory(MemorySpec("m", 9, 256), M9K) == 1
        # simple dual port can use the 256x36 aspect ratio
        assert block_rams_for_memory(MemorySpec("m", 36, 256, true_dual_port=False), M9K) == 1

    def test_tiling_validation(self):
        with pytest.raises(ValueError):
            block_rams_for_memory(MemorySpec("m", 0, 10), M9K)

    def test_table1_m9k_counts_match_paper_exactly(self):
        for device, expected in ((CYCLONE_III, 404), (STRATIX_III, 822)):
            estimate = estimate_resources(device)
            assert estimate.m9k_blocks == expected
            assert estimate.fits()

    def test_table1_logic_within_two_percent(self):
        for device in (CYCLONE_III, STRATIX_III):
            estimate = estimate_resources(device)
            reference = PAPER_TABLE1_REFERENCE[device.family]["logic_used"]
            assert abs(estimate.logic_cells - reference) / reference < 0.02

    def test_resources_scale_with_blocks(self):
        one = estimate_resources(STRATIX_III, num_blocks=1)
        six = estimate_resources(STRATIX_III, num_blocks=6)
        assert six.m9k_blocks == 6 * one.m9k_blocks
        assert six.logic_cells > one.logic_cells
        with pytest.raises(ValueError):
            estimate_resources(STRATIX_III, num_blocks=0)

    def test_max_blocks_that_fit_matches_paper_choice(self):
        # the paper instantiates exactly as many blocks as the device holds
        assert max_blocks_that_fit(CYCLONE_III) == CYCLONE_III.num_matching_blocks
        assert max_blocks_that_fit(STRATIX_III) >= STRATIX_III.num_matching_blocks

    def test_utilisation_fractions(self):
        estimate = estimate_resources(STRATIX_III)
        assert 0 < estimate.logic_utilisation < 1
        assert 0 < estimate.m9k_utilisation < 1
        row = estimate.as_table_row()
        assert row["device"] == "Stratix III"


class TestThroughput:
    def test_sixteen_times_fmax_law(self):
        assert block_throughput_gbps(460.19) == pytest.approx(7.363, abs=0.001)
        assert block_throughput_gbps(233.15) == pytest.approx(3.73, abs=0.01)

    def test_paper_throughput_ladder_stratix(self):
        fmax, blocks = STRATIX_III.memory_fmax_mhz, STRATIX_III.num_matching_blocks
        assert accelerator_throughput_gbps(fmax, blocks, 1) == pytest.approx(44.2, abs=0.1)
        assert accelerator_throughput_gbps(fmax, blocks, 2) == pytest.approx(22.1, abs=0.1)
        assert accelerator_throughput_gbps(fmax, blocks, 3) == pytest.approx(14.7, abs=0.1)
        assert accelerator_throughput_gbps(fmax, blocks, 6) == pytest.approx(7.4, abs=0.1)

    def test_paper_throughput_ladder_cyclone(self):
        fmax, blocks = CYCLONE_III.memory_fmax_mhz, CYCLONE_III.num_matching_blocks
        assert accelerator_throughput_gbps(fmax, blocks, 1) == pytest.approx(14.9, abs=0.1)
        assert accelerator_throughput_gbps(fmax, blocks, 2) == pytest.approx(7.5, abs=0.1)
        assert accelerator_throughput_gbps(fmax, blocks, 4) == pytest.approx(3.7, abs=0.1)

    def test_engine_throughput_is_one_byte_per_engine_cycle(self):
        assert engine_throughput_gbps(300.0) == pytest.approx(0.8, abs=0.001)

    def test_line_rates(self):
        stratix_point = device_throughput(STRATIX_III, blocks_per_group=1)
        cyclone_point = device_throughput(CYCLONE_III, blocks_per_group=1)
        assert line_rates_met(stratix_point) == ["OC-192", "OC-768"]
        assert line_rates_met(cyclone_point) == ["OC-192"]

    def test_scan_time(self):
        point = ThroughputPoint(memory_clock_mhz=300.0, blocks_per_group=1, total_blocks=6)
        assert scan_time_seconds(0, point) == 0.0
        assert scan_time_seconds(point.bytes_per_second, point) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            scan_time_seconds(-1, point)

    def test_validation(self):
        with pytest.raises(ValueError):
            block_throughput_gbps(0)
        with pytest.raises(ValueError):
            accelerator_throughput_gbps(100, 2, 3)
        with pytest.raises(ValueError):
            accelerator_throughput_gbps(100, 0, 1)


class TestPower:
    def test_peak_power_matches_paper(self):
        for device in (CYCLONE_III, STRATIX_III):
            model = PowerModel(device)
            assert model.peak_power_watts() == pytest.approx(
                PAPER_PEAK_POWER_WATTS[device.family], rel=0.05
            )

    def test_power_monotonic_in_frequency(self):
        model = PowerModel(STRATIX_III)
        powers = [model.power_watts(f) for f in (0, 100, 200, 300, 460)]
        assert powers == sorted(powers)
        assert powers[0] == pytest.approx(STRATIX_III.static_power_watts)

    def test_sweep_endpoints_and_throughput(self):
        model = PowerModel(CYCLONE_III)
        sweep = model.sweep(blocks_per_group=1, num_points=6)
        assert len(sweep) == 6
        assert sweep[0].memory_clock_mhz == 0.0
        assert sweep[0].throughput_gbps == 0.0
        assert sweep[-1].memory_clock_mhz == pytest.approx(CYCLONE_III.memory_fmax_mhz)
        assert sweep[-1].throughput_gbps == pytest.approx(14.9, abs=0.1)

    def test_more_blocks_per_group_lowers_throughput_not_power(self):
        model = PowerModel(STRATIX_III)
        single = model.sweep(blocks_per_group=1, num_points=4)[-1]
        six = model.sweep(blocks_per_group=6, num_points=4)[-1]
        assert single.power_watts == pytest.approx(six.power_watts)
        assert single.throughput_gbps == pytest.approx(6 * six.throughput_gbps, rel=0.01)

    def test_energy_per_bit(self):
        model = PowerModel(STRATIX_III)
        assert model.energy_per_bit_nanojoules(1) < model.energy_per_bit_nanojoules(6)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(STRATIX_III, static_watts=-1)
        model = PowerModel(STRATIX_III)
        with pytest.raises(ValueError):
            model.power_watts(-5)
        with pytest.raises(ValueError):
            model.power_watts(100, active_blocks=99)
        with pytest.raises(ValueError):
            model.sweep(blocks_per_group=1, num_points=1)
